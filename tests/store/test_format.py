"""Tests for the store's binary index format (repro.store.format)."""

from __future__ import annotations

import os
import struct

import pytest

from repro.store.format import (
    INDEX_MAGIC,
    INDEX_VERSION,
    INDEX_VERSION_HALO,
    IndexRecord,
    StoreCorruptionError,
    StoreFormatError,
    halo_flags,
    pack_index,
    unpack_index,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "index_golden.bin")
GOLDEN_V2_PATH = os.path.join(
    os.path.dirname(__file__), "data", "index_v2_golden.bin"
)

#: The records behind the golden file.  Regenerate the golden bytes with
#: ``pack_index(GOLDEN_RECORDS)`` ONLY alongside an INDEX_VERSION bump —
#: the whole point of the golden file is pinning the v1 layout.
GOLDEN_RECORDS = [
    IndexRecord(offset=0, length=1234, codec="sz", checksum=0xDEADBEEF),
    IndexRecord(offset=1234, length=77, codec="zfp", checksum=0),
    IndexRecord(offset=1311, length=4096, codec="mgard", checksum=0xFFFFFFFF),
    # Dedup: shares the byte range of the first record.
    IndexRecord(offset=0, length=1234, codec="sz", checksum=0xDEADBEEF),
]

#: Records behind the version-2 golden file: same 32-byte record layout,
#: but halo flags occupy the formerly-reserved trailing u32 (which is what
#: flips ``pack_index`` to version 2).  Regeneration policy as above —
#: only alongside an INDEX_VERSION_HALO bump.  Regenerate with
#: ``PYTHONPATH=src python tests/store/test_format.py --regenerate``.
GOLDEN_RECORDS_V2 = [
    IndexRecord(offset=0, length=512, codec="zfp", checksum=0x12345678),
    IndexRecord(
        offset=512,
        length=900,
        codec="zfp",
        checksum=0xCAFEF00D,
        flags=halo_flags(0b011, 1),
    ),
    IndexRecord(
        offset=1412,
        length=64,
        codec="sz",
        checksum=7,
        flags=halo_flags(0b001, None),
    ),
]


class TestRoundTrip:
    def test_empty_index(self):
        assert unpack_index(pack_index([])) == []

    def test_records_round_trip(self):
        blob = pack_index(GOLDEN_RECORDS)
        assert unpack_index(blob) == GOLDEN_RECORDS

    def test_header_layout(self):
        blob = pack_index(GOLDEN_RECORDS)
        magic, version, flags, n_chunks = struct.unpack_from("<4sHHQ", blob, 0)
        assert magic == INDEX_MAGIC
        assert version == INDEX_VERSION
        assert flags == 0
        assert n_chunks == len(GOLDEN_RECORDS)
        assert len(blob) == 16 + 32 * len(GOLDEN_RECORDS)


class TestGoldenFile:
    """Pin the on-disk v1 layout bit-for-bit."""

    def test_pack_matches_golden(self):
        with open(GOLDEN_PATH, "rb") as handle:
            golden = handle.read()
        assert pack_index(GOLDEN_RECORDS) == golden

    def test_unpack_golden(self):
        with open(GOLDEN_PATH, "rb") as handle:
            golden = handle.read()
        assert unpack_index(golden) == GOLDEN_RECORDS


class TestErrorPaths:
    def test_truncated_header(self):
        with pytest.raises(StoreFormatError):
            unpack_index(b"RPST")

    def test_bad_magic(self):
        blob = bytearray(pack_index(GOLDEN_RECORDS))
        blob[:4] = b"NOPE"
        with pytest.raises(StoreFormatError, match="magic"):
            unpack_index(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(pack_index([]))
        blob[4:6] = struct.pack("<H", 99)
        with pytest.raises(StoreFormatError, match="version"):
            unpack_index(bytes(blob))

    def test_truncated_records(self):
        blob = pack_index(GOLDEN_RECORDS)
        with pytest.raises(StoreCorruptionError, match="length"):
            unpack_index(blob[:-8])

    def test_trailing_garbage(self):
        blob = pack_index(GOLDEN_RECORDS)
        with pytest.raises(StoreCorruptionError):
            unpack_index(blob + b"\0" * 8)

    def test_codec_name_too_long(self):
        with pytest.raises(StoreFormatError, match="codec"):
            pack_index([IndexRecord(offset=0, length=1, codec="x" * 9, checksum=0)])

    def test_empty_codec_name(self):
        with pytest.raises(StoreFormatError, match="codec"):
            pack_index([IndexRecord(offset=0, length=1, codec="", checksum=0)])


class TestHaloFlags:
    def test_pack_and_parse(self):
        from repro.store.format import halo_flags, parse_halo_flags

        flags = halo_flags(0b101, 2)
        assert parse_halo_flags(flags) == (True, 0b101, 2)
        flags = halo_flags(0b001, None)
        assert parse_halo_flags(flags) == (True, 0b001, None)
        assert parse_halo_flags(0) == (False, 0, None)

    def test_out_of_range_rejected(self):
        from repro.store.format import halo_flags

        with pytest.raises(StoreFormatError):
            halo_flags(0b1000, None)
        with pytest.raises(StoreFormatError):
            halo_flags(0b1, 3)

    def test_flagged_records_round_trip_as_v2(self):
        from repro.store.format import INDEX_VERSION_HALO, halo_flags

        records = [
            IndexRecord(offset=0, length=10, codec="sz", checksum=1),
            IndexRecord(
                offset=10,
                length=20,
                codec="zfp",
                checksum=2,
                flags=halo_flags(0b011, 1),
            ),
        ]
        blob = pack_index(records)
        version = struct.unpack_from("<H", blob, 4)[0]
        assert version == INDEX_VERSION_HALO
        assert unpack_index(blob) == records

    def test_flag_free_records_stay_v1(self):
        blob = pack_index(GOLDEN_RECORDS)
        version = struct.unpack_from("<H", blob, 4)[0]
        assert version == INDEX_VERSION

    def test_v1_with_nonzero_flags_rejected(self):
        records = [IndexRecord(offset=0, length=10, codec="sz", checksum=1)]
        blob = bytearray(pack_index(records))
        # Force flags into the reserved field while keeping version 1.
        struct.pack_into("<I", blob, 16 + 28, 7)
        with pytest.raises(StoreFormatError, match="version-1"):
            unpack_index(bytes(blob))


class TestGoldenFileV2:
    """Pin the on-disk v2 (halo-flagged) layout bit-for-bit."""

    def test_pack_matches_golden(self):
        with open(GOLDEN_V2_PATH, "rb") as handle:
            golden = handle.read()
        assert pack_index(GOLDEN_RECORDS_V2) == golden

    def test_unpack_golden(self):
        with open(GOLDEN_V2_PATH, "rb") as handle:
            golden = handle.read()
        assert unpack_index(golden) == GOLDEN_RECORDS_V2

    def test_golden_header_carries_version_2(self):
        with open(GOLDEN_V2_PATH, "rb") as handle:
            golden = handle.read()
        magic, version, _flags, n_chunks = struct.unpack_from("<4sHHQ", golden, 0)
        assert magic == INDEX_MAGIC
        assert version == INDEX_VERSION_HALO
        assert n_chunks == len(GOLDEN_RECORDS_V2)


if __name__ == "__main__":  # pragma: no cover — golden regeneration
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python test_format.py --regenerate")
    with open(GOLDEN_V2_PATH, "wb") as handle:
        handle.write(pack_index(GOLDEN_RECORDS_V2))
    print(f"wrote {GOLDEN_V2_PATH}")
