"""Tests for the chunked compressed array store (repro.store.array_store)."""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.core.pipeline import ExperimentCache
from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.miranda import generate_miranda_like_volume
from repro.store import ArrayStore, StoreCorruptionError, StoreFormatError
from repro.store.array_store import DATA_NAME, INDEX_NAME, META_NAME

BOUND = 1e-3
TOL = BOUND * (1.0 + 1e-9)


@pytest.fixture(scope="module")
def field_2d():
    return generate_gaussian_field((96, 80), correlation_range=12.0, seed=5)


@pytest.fixture(scope="module")
def volume_3d():
    return generate_miranda_like_volume((40, 40, 40), seed=6)


def make_store(path, array, *, chunk=32, codec="sz", **kwargs):
    store = ArrayStore.create(path, chunk_shape=chunk, codec=codec, **kwargs)
    store.write(array, cache=False)
    return store


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    def test_2d_full_round_trip(self, tmp_path, field_2d, codec):
        store = make_store(tmp_path / "s", field_2d, codec=codec)
        reopened = ArrayStore.open(tmp_path / "s")
        values = reopened.read()
        assert values.shape == field_2d.shape
        assert np.abs(values - field_2d).max() <= TOL

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    def test_3d_full_round_trip(self, tmp_path, volume_3d, codec):
        store = make_store(tmp_path / "s", volume_3d, chunk=16, codec=codec)
        values = ArrayStore.open(tmp_path / "s").read()
        assert values.shape == volume_3d.shape
        assert np.abs(values - volume_3d).max() <= TOL

    def test_partial_reads_match_random_regions(self, tmp_path, field_2d, volume_3d):
        """Property test: random step-1 regions agree with the full read."""

        rng = np.random.default_rng(99)
        for name, array, chunk in (("f2", field_2d, 32), ("v3", volume_3d, 16)):
            store = make_store(tmp_path / name, array, chunk=chunk)
            full = store.read()
            for _ in range(12):
                region = []
                for length in array.shape:
                    lo = int(rng.integers(0, length - 1))
                    hi = int(rng.integers(lo + 1, length + 1))
                    region.append(slice(lo, hi))
                region = tuple(region)
                got = store.read(region)
                np.testing.assert_array_equal(got, full[region])

    def test_int_indexing_drops_axis(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d, chunk=16)
        full = store.read()
        plane = store.read((3,))
        assert plane.shape == volume_3d.shape[1:]
        np.testing.assert_array_equal(plane, full[3])
        line = store.read((3, slice(2, 10), 7))
        np.testing.assert_array_equal(line, full[3, 2:10, 7])

    def test_negative_and_open_slices(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        full = store.read()
        np.testing.assert_array_equal(
            store.read((slice(None), slice(-16, None))), full[:, -16:]
        )

    def test_write_replaces_content(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        other = np.ascontiguousarray(field_2d[::-1, :])
        store.write(other, cache=False)
        values = ArrayStore.open(tmp_path / "s").read()
        assert np.abs(values - other).max() <= TOL


class TestPartialDecoding:
    def test_only_intersecting_chunks_decoded(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d, chunk=16)
        assert store.n_chunks == 27  # ceil(40/16) = 3 chunks per axis
        store.read((slice(0, 10), slice(0, 10), slice(0, 10)))
        assert store.last_read.chunks_intersecting == 1
        assert store.last_read.chunks_decoded == 1
        store.read((slice(0, 20), slice(0, 10), slice(0, 10)))
        assert store.last_read.chunks_intersecting == 2
        store.read()
        assert store.last_read.chunks_intersecting == store.n_chunks

    def test_identical_chunks_decode_once(self, tmp_path):
        array = np.zeros((64, 64))
        store = make_store(tmp_path / "s", array, chunk=16)
        assert store.n_chunks == 16
        store.read()
        # All 16 chunks share one deduplicated payload.
        assert store.last_read.chunks_decoded == 1
        assert store.stored_nbytes < store.compressed_nbytes


class TestDedupAndCache:
    def test_constant_array_dedups_payloads(self, tmp_path):
        array = np.full((64, 64), 3.25)
        store = make_store(tmp_path / "s", array, chunk=16)
        meta = json.loads((tmp_path / "s" / META_NAME).read_text())
        digests = {c["payload_sha1"] for c in meta["chunks"]}
        assert len(digests) == 1
        data_size = os.path.getsize(tmp_path / "s" / DATA_NAME)
        assert data_size == store.stored_nbytes

    def test_chunk_cache_hits_across_writes(self, tmp_path, field_2d):
        cache = ExperimentCache(max_entries=64)
        store = ArrayStore.create(tmp_path / "a", chunk_shape=32)
        store.write(field_2d, cache=cache)
        first = dict(store.last_write_cache_counters)
        assert first["misses"] == store.n_chunks
        other = ArrayStore.create(tmp_path / "b", chunk_shape=32)
        other.write(field_2d, cache=cache)
        second = dict(other.last_write_cache_counters)
        assert second["hits"] == other.n_chunks
        assert second["misses"] == 0

    def test_different_adaptive_parameters_do_not_share_cache(self, tmp_path, field_2d):
        from repro.store.policy import adaptive

        cache = ExperimentCache(max_entries=64)
        a = ArrayStore.create(tmp_path / "a", chunk_shape=64, codec=adaptive(seed=0))
        a.write(field_2d, cache=cache)
        b = ArrayStore.create(
            tmp_path / "b", chunk_shape=64, codec=adaptive(seed=99, n_blocks=3)
        )
        b.write(field_2d, cache=cache)
        # A differently-parameterised policy must recompute, not hit.
        assert b.last_write_cache_counters["hits"] == 0
        assert b.last_write_cache_counters["misses"] == b.n_chunks

    def test_cache_disabled(self, tmp_path, field_2d):
        store = ArrayStore.create(tmp_path / "s", chunk_shape=32)
        store.write(field_2d, cache=False)
        assert store.last_write_cache_counters is None


class TestParallel:
    def test_parallel_workers_match_serial(self, tmp_path, volume_3d):
        from repro.utils.parallel import ParallelConfig

        serial = make_store(tmp_path / "serial", volume_3d, chunk=16)
        parallel = ArrayStore.create(tmp_path / "parallel", chunk_shape=16)
        parallel.write(
            volume_3d,
            cache=False,
            parallel=ParallelConfig(workers=2, use_processes=False),
        )
        assert (tmp_path / "serial" / DATA_NAME).read_bytes() == (
            tmp_path / "parallel" / DATA_NAME
        ).read_bytes()
        assert [r.codec for r in serial.chunk_records()] == [
            r.codec for r in parallel.chunk_records()
        ]


class TestAppend:
    def test_append_aligned(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d[:32], chunk=16)
        store.append(volume_3d[32:], cache=False)
        values = ArrayStore.open(tmp_path / "s").read()
        assert values.shape == volume_3d.shape
        assert np.abs(values - volume_3d).max() <= TOL
        # Aligned appends rewrite nothing, so no payload bytes are orphaned.
        assert store.orphaned_nbytes == 0
        assert store.info()["orphaned_nbytes"] == 0

    def test_append_unaligned_rewrites_partial_chunks(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d[:24], chunk=16)
        live_before = store.live_payload_nbytes
        assert store.orphaned_nbytes == 0
        store.append(volume_3d[24:], cache=False)
        values = ArrayStore.open(tmp_path / "s").read()
        assert values.shape == volume_3d.shape
        assert np.abs(values - volume_3d).max() <= TOL
        # The rewritten trailing-slab payloads stay behind as dead bytes;
        # info() surfaces them so compaction need is visible.
        info = store.info()
        assert info["orphaned_nbytes"] == store.orphaned_nbytes > 0
        assert (
            info["data_file_nbytes"]
            == store.live_payload_nbytes + store.orphaned_nbytes
        )
        assert store.orphaned_nbytes <= live_before

    def test_append_to_empty_store_writes(self, tmp_path, field_2d):
        store = ArrayStore.create(tmp_path / "s", chunk_shape=32)
        store.append(field_2d, cache=False)
        assert store.shape == field_2d.shape

    def test_repeated_small_appends(self, tmp_path, field_2d):
        store = ArrayStore.create(tmp_path / "s", chunk_shape=32)
        for start in range(0, field_2d.shape[0], 24):
            store.append(field_2d[start : start + 24], cache=False)
        values = ArrayStore.open(tmp_path / "s").read()
        assert values.shape == field_2d.shape
        assert np.abs(values - field_2d).max() <= TOL

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    def test_unaligned_appends_never_drift_past_bound(
        self, tmp_path, volume_3d, codec
    ):
        """Rewritten chunks must not add a second lossy pass.

        The bound is relative to the data as first written: the decoded
        tail merged with new rows is re-compressed, and codec blocks
        spanning the seam cannot reproduce the old rows exactly — those
        chunks must fall back to the exact raw codec instead of letting
        the error reach 2x the bound (and Nx over repeated appends).
        """

        store = ArrayStore.create(tmp_path / codec, chunk_shape=16, codec=codec)
        store.write(volume_3d[:24], cache=False)
        store.append(volume_3d[24:34], cache=False)
        store.append(volume_3d[34:], cache=False)
        values = ArrayStore.open(tmp_path / codec).read()
        assert values.shape == volume_3d.shape
        assert np.abs(values - volume_3d).max() <= TOL

    def test_rewritten_chunks_preserve_stored_rows_exactly(self, tmp_path, volume_3d):
        store = ArrayStore.create(tmp_path / "s", chunk_shape=16, codec="zfp")
        store.write(volume_3d[:24], cache=False)
        before = store.read((slice(16, 24),))
        store.append(volume_3d[24:], cache=False)
        after = store.read((slice(16, 24),))
        # The once-lossy rows of the rewritten slab are bit-identical.
        np.testing.assert_array_equal(before, after)

    def test_append_shape_mismatch_rejected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        with pytest.raises(ValueError, match="append"):
            store.append(np.zeros((4, field_2d.shape[1] + 1)))


class TestPolicies:
    def test_adaptive_records_estimates(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d, chunk=16, codec="adaptive:sz+zfp")
        records = store.chunk_records()
        assert all(np.isfinite(r.estimated_cr) for r in records)
        assert all(r.codec in ("sz", "zfp") for r in records)
        info = store.info()
        assert "estimate_rel_error_mean" in info
        # The persisted per-chunk log keeps every candidate's estimate.
        meta = json.loads((tmp_path / "s" / META_NAME).read_text())
        assert set(meta["chunks"][0]["estimated_crs"]) == {"sz", "zfp"}

    def test_best_policy_not_larger_than_any_fixed(self, tmp_path, field_2d):
        best_store = make_store(tmp_path / "best", field_2d, codec="best")
        for codec in ("sz", "zfp", "mgard"):
            fixed_store = make_store(tmp_path / codec, field_2d, codec=codec)
            assert best_store.compressed_nbytes <= fixed_store.compressed_nbytes

    def test_chunk_stats_recorded(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        record = store.chunk_records()[0]
        window = field_2d[: record.shape[0], : record.shape[1]]
        assert record.stats["mean"] == pytest.approx(float(window.mean()))
        assert np.isfinite(record.stats["variogram_range"])
        assert record.stats["max_abs_error"] <= TOL

    def test_chunk_stats_can_be_disabled(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d, chunk_stats=False)
        stats = store.chunk_records()[0].stats
        assert "variogram_range" not in stats
        assert "max_abs_error" in stats

    def test_meta_is_strict_json_even_with_nan_stats(self, tmp_path):
        """Constant chunks give NaN variogram ranges; meta.json must stay
        valid for strict parsers (no bare NaN tokens)."""

        make_store(tmp_path / "s", np.zeros((64, 64)), chunk=32)
        text = (tmp_path / "s" / META_NAME).read_text()

        def reject(constant):
            raise AssertionError(f"non-standard JSON token {constant!r}")

        meta = json.loads(text, parse_constant=reject)
        assert meta["chunks"][0]["stats"]["variogram_range"] is None
        # And the sanitized values round-trip to NaN on the read side.
        reopened = ArrayStore.open(tmp_path / "s")
        assert np.isnan(reopened.chunk_records()[0].stats["variogram_range"])


class TestErrorPaths:
    def test_create_refuses_nonempty_dir(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        (target / "junk").write_text("x")
        with pytest.raises(StoreFormatError, match="not empty"):
            ArrayStore.create(target)
        ArrayStore.create(target, overwrite=True)  # explicit overwrite is fine

    def test_open_missing_meta(self, tmp_path):
        with pytest.raises(StoreFormatError, match="missing"):
            ArrayStore.open(tmp_path)

    def test_read_before_write_rejected(self, tmp_path):
        store = ArrayStore.create(tmp_path / "s")
        with pytest.raises(StoreFormatError, match="no data"):
            store.read()

    def test_corrupt_chunk_payload_detected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        data_path = tmp_path / "s" / DATA_NAME
        blob = bytearray(data_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        data_path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            ArrayStore.open(tmp_path / "s").read()

    def test_truncated_chunk_file_detected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        data_path = tmp_path / "s" / DATA_NAME
        data_path.write_bytes(data_path.read_bytes()[:-10])
        with pytest.raises(StoreCorruptionError, match="truncated"):
            ArrayStore.open(tmp_path / "s").read()

    def test_corrupt_index_detected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        index_path = tmp_path / "s" / INDEX_NAME
        index_path.write_bytes(index_path.read_bytes()[:-4])
        with pytest.raises(StoreFormatError):
            ArrayStore.open(tmp_path / "s")

    def test_index_chunk_grid_mismatch_detected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        meta_path = tmp_path / "s" / META_NAME
        meta = json.loads(meta_path.read_text())
        meta["shape"] = [s * 2 for s in meta["shape"]]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreCorruptionError, match="grid"):
            ArrayStore.open(tmp_path / "s")

    def test_bad_region_specs_rejected(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d)
        with pytest.raises(ValueError, match="step-1"):
            store.read((slice(0, 10, 2),))
        with pytest.raises(IndexError):
            store.read((field_2d.shape[0],))
        with pytest.raises(ValueError, match="axes"):
            store.read((slice(0, 1),) * 3)
        with pytest.raises(TypeError):
            store.read(("nope",))

    def test_non_finite_arrays_rejected(self, tmp_path):
        store = ArrayStore.create(tmp_path / "s")
        bad = np.zeros((8, 8))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            store.write(bad)


class TestHaloStore:
    """Halo-aware chunking: odd-parity chunks borrow their even-parity
    anchor neighbours' reconstructed planes and entropy context."""

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    def test_round_trip_and_bound_3d(self, tmp_path, volume_3d, codec):
        store = make_store(
            tmp_path / codec, volume_3d, chunk=16, codec=codec, halo=True
        )
        values = store.read()
        assert np.abs(values - volume_3d).max() <= TOL
        # Reopened stores decode through the persisted flags alone.
        values = ArrayStore.open(tmp_path / codec).read()
        assert np.abs(values - volume_3d).max() <= TOL

    def test_round_trip_2d(self, tmp_path, field_2d):
        store = make_store(tmp_path / "s", field_2d, chunk=32, halo=True)
        values = ArrayStore.open(tmp_path / "s").read()
        assert np.abs(values - field_2d).max() <= TOL

    def test_halo_lifts_compression_ratio(self, tmp_path, volume_3d):
        plain = make_store(tmp_path / "off", volume_3d, chunk=16, codec="sz")
        halo = make_store(
            tmp_path / "on", volume_3d, chunk=16, codec="sz", halo=True
        )
        assert halo.compression_ratio >= plain.compression_ratio
        assert halo.info()["halo_chunks"] > 0
        assert plain.info()["halo_chunks"] == 0

    def test_partial_read_decodes_bounded_neighbours(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d, chunk=16, halo=True)
        ndim = volume_3d.ndim
        # Region inside the odd-parity chunk at grid (1, 0, 0): the read
        # must decode that chunk plus at most one anchor per axis — not
        # the whole store.
        values = store.read((slice(20, 28), slice(4, 12), slice(4, 12)))
        assert np.abs(values - volume_3d[20:28, 4:12, 4:12]).max() <= TOL
        report = store.last_read
        assert report.chunks_intersecting == 1
        assert report.chunks_decoded <= 1 + ndim
        assert report.chunks_decoded < report.chunks_total

    def test_anchor_chunks_decode_standalone(self, tmp_path, volume_3d):
        store = make_store(tmp_path / "s", volume_3d, chunk=16, halo=True)
        values = store.read((slice(0, 8), slice(0, 8), slice(0, 8)))
        assert np.abs(values - volume_3d[:8, :8, :8]).max() <= TOL
        assert store.last_read.chunks_decoded == 1

    def test_index_flags_present_and_v1_for_plain(self, tmp_path, volume_3d):
        from repro.store.format import parse_halo_flags, unpack_index

        halo_store = make_store(tmp_path / "on", volume_3d, chunk=16, halo=True)
        blob = (tmp_path / "on" / INDEX_NAME).read_bytes()
        records = unpack_index(blob)
        flagged = [r for r in records if r.flags]
        assert flagged
        for record in flagged:
            is_halo, axes_mask, ref_axis = parse_halo_flags(record.flags)
            assert is_halo and axes_mask and ref_axis is not None
        plain_store = make_store(tmp_path / "off", volume_3d, chunk=16)
        blob = (tmp_path / "off" / INDEX_NAME).read_bytes()
        import struct

        version = struct.unpack_from("<H", blob, 4)[0]
        assert version == 1

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    def test_append_halo_store(self, tmp_path, volume_3d, codec):
        store = ArrayStore.create(
            tmp_path / codec, chunk_shape=16, codec=codec, halo=True
        )
        store.write(volume_3d[:24], cache=False)
        before = store.read((slice(0, 24),)).copy()
        store.append(volume_3d[24:34], cache=False)
        store.append(volume_3d[34:], cache=False)
        reopened = ArrayStore.open(tmp_path / codec)
        values = reopened.read()
        assert values.shape == volume_3d.shape
        assert np.abs(values - volume_3d).max() <= TOL
        # First-written rows above the rewritten slab stay bit-identical.
        np.testing.assert_array_equal(
            reopened.read((slice(0, 16),)), before[:16]
        )
        assert store.orphaned_nbytes > 0

    def test_parallel_workers_match_serial(self, tmp_path, volume_3d):
        from repro.utils.parallel import ParallelConfig

        serial = make_store(tmp_path / "serial", volume_3d, chunk=16, halo=True)
        parallel = ArrayStore.create(tmp_path / "par", chunk_shape=16, halo=True)
        parallel.write(
            volume_3d, parallel=ParallelConfig(workers=2), cache=False
        )
        a = (tmp_path / "serial" / DATA_NAME).read_bytes()
        b = (tmp_path / "par" / DATA_NAME).read_bytes()
        assert a == b

    def test_adaptive_policy_with_halo(self, tmp_path, volume_3d):
        store = make_store(
            tmp_path / "s", volume_3d, chunk=16, codec="adaptive", halo=True
        )
        values = ArrayStore.open(tmp_path / "s").read()
        assert np.abs(values - volume_3d).max() <= TOL

    def test_halo_reference_to_flagged_chunk_detected(self, tmp_path, volume_3d):
        from repro.store.format import IndexRecord, pack_index, unpack_index

        store = make_store(tmp_path / "s", volume_3d, chunk=16, halo=True)
        index_path = tmp_path / "s" / INDEX_NAME
        records = unpack_index(index_path.read_bytes())
        flagged = next(i for i, r in enumerate(records) if r.flags)
        anchor = next(i for i, r in enumerate(records) if not r.flags)
        # Corrupt an anchor into a halo chunk: reads through it must fail
        # loudly instead of cascading.
        bad = records[anchor]
        records[anchor] = IndexRecord(
            offset=bad.offset,
            length=bad.length,
            codec=bad.codec,
            checksum=bad.checksum,
            flags=records[flagged].flags,
        )
        blob = pack_index(records)
        index_path.write_bytes(blob)
        # Re-sign the tampered index so the open-time digest check passes
        # and the read-path anchor guard is what fires.
        meta_path = tmp_path / "s" / META_NAME
        meta = json.loads(meta_path.read_text())
        meta["index_sha1"] = hashlib.sha1(blob).hexdigest()
        meta_path.write_text(json.dumps(meta))
        reopened = ArrayStore.open(tmp_path / "s")
        with pytest.raises(StoreCorruptionError):
            reopened.read()
