"""Atomic snapshot opens: torn meta/index states are detected, not read.

Regression suite for the stale-index bug (ISSUE 6 satellite): before
``index_sha1`` landed in ``meta.json``, a reader racing a cross-process
append could pair a fresh ``index.bin`` with a stale ``meta.json`` (or
vice versa) and decode garbage shapes.  Now every flush signs the index
bytes into meta, the writer replaces index before meta, and
:func:`load_store_state` retries digest mismatches — so a reader either
sees a fully consistent generation or raises ``StoreCorruptionError``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.serve.cache import HotChunkCache
from repro.store import ArrayStore, StoreSnapshot, load_store_state
from repro.store.format import StoreCorruptionError, StoreFormatError

BOUND = 1e-3


@pytest.fixture()
def store_dir(tmp_path):
    field = generate_gaussian_field((64, 48), correlation_range=9.0, seed=21)
    store = ArrayStore.create(
        tmp_path / "s", chunk_shape=16, codec="sz", error_bound=BOUND
    )
    store.write(field, cache=False)
    store.append(
        generate_gaussian_field((9, 48), correlation_range=9.0, seed=22),
        cache=False,
    )
    return tmp_path / "s"


def _freeze(path):
    with open(path / "meta.json", "rb") as handle:
        meta = handle.read()
    with open(path / "index.bin", "rb") as handle:
        index = handle.read()
    return meta, index


class TestTornStates:
    def test_stale_meta_with_new_index_detected(self, store_dir):
        """The exact shape of the original bug: index replaced, meta not
        yet — digest mismatch, never a silently wrong shape."""

        old_meta, _ = _freeze(store_dir)
        store = ArrayStore.open(str(store_dir))
        store.append(np.zeros((7, 48)), cache=False)
        with open(store_dir / "meta.json", "wb") as handle:
            handle.write(old_meta)
        with pytest.raises(StoreCorruptionError):
            load_store_state(str(store_dir), retries=2, retry_wait_s=0.001)
        with pytest.raises(StoreCorruptionError):
            ArrayStore.open(str(store_dir))  # same protection at open()

    def test_new_meta_with_stale_index_detected(self, store_dir):
        _, old_index = _freeze(store_dir)
        store = ArrayStore.open(str(store_dir))
        store.append(np.zeros((7, 48)), cache=False)
        with open(store_dir / "index.bin", "wb") as handle:
            handle.write(old_index)
        with pytest.raises(StoreCorruptionError):
            StoreSnapshot.open(str(store_dir), retries=2, retry_wait_s=0.001)

    def test_torn_state_heals_within_retry_budget(self, store_dir):
        """A mismatch that a concurrent writer resolves mid-retry is
        invisible to the caller."""

        good_meta, _ = _freeze(store_dir)
        old_meta = json.loads(good_meta)
        old_meta["index_sha1"] = "0" * 40
        with open(store_dir / "meta.json", "w") as handle:
            json.dump(old_meta, handle)

        def heal() -> None:
            time.sleep(0.05)
            with open(store_dir / "meta.json", "wb") as handle:
                handle.write(good_meta)

        healer = threading.Thread(target=heal)
        healer.start()
        try:
            meta, index = load_store_state(
                str(store_dir), retries=40, retry_wait_s=0.01
            )
        finally:
            healer.join()
        assert meta["index_sha1"] == hashlib.sha1(
            _freeze(store_dir)[1]
        ).hexdigest()
        assert len(index) > 0

    def test_corrupt_index_with_matching_digest_raises_immediately(
        self, store_dir
    ):
        """A digest that *matches* garbage bytes is real corruption, not
        a race — no retry loop, the error carries the real cause."""

        junk = b"RPST" + os.urandom(60)
        with open(store_dir / "index.bin", "wb") as handle:
            handle.write(junk)
        meta = json.loads(_freeze(store_dir)[0])
        meta["index_sha1"] = hashlib.sha1(junk).hexdigest()
        with open(store_dir / "meta.json", "w") as handle:
            json.dump(meta, handle)
        started = time.monotonic()
        with pytest.raises((StoreCorruptionError, StoreFormatError)):
            load_store_state(str(store_dir), retries=6, retry_wait_s=0.05)
        assert time.monotonic() - started < 0.25, "corruption was retried"


class TestFlushDiscipline:
    def test_every_flush_signs_the_index(self, store_dir):
        meta_bytes, index_bytes = _freeze(store_dir)
        meta = json.loads(meta_bytes)
        assert meta["index_sha1"] == hashlib.sha1(index_bytes).hexdigest()

    def test_generation_strictly_increases(self, tmp_path):
        store = ArrayStore.create(
            tmp_path / "g", chunk_shape=16, codec="sz", error_bound=BOUND
        )
        seen = [store.generation]
        store.write(np.ones((20, 20)), cache=False)
        seen.append(store.generation)
        store.append(np.ones((5, 20)), cache=False)
        seen.append(store.generation)
        store.compact()
        seen.append(store.generation)
        assert seen == sorted(set(seen)), f"generation not monotonic: {seen}"
        assert ArrayStore.open(str(tmp_path / "g")).generation == seen[-1]

    def test_legacy_store_without_digest_still_opens(self, store_dir):
        """Pre-PR6 stores have no ``index_sha1`` — structural checks
        only, no hard failure."""

        meta = json.loads(_freeze(store_dir)[0])
        del meta["index_sha1"]
        meta.pop("generation", None)
        with open(store_dir / "meta.json", "w") as handle:
            json.dump(meta, handle)
        store = ArrayStore.open(str(store_dir))
        assert store.read().shape == (73, 48)


class TestSnapshotReads:
    def test_snapshot_read_matches_store_read(self, store_dir):
        store = ArrayStore.open(str(store_dir))
        snapshot = StoreSnapshot.open(str(store_dir))
        for region in [None, (slice(3, 41), slice(7, 30)), (40,)]:
            np.testing.assert_array_equal(
                snapshot.read(region)[0], store.read(region)
            )

    def test_snapshot_read_matches_store_read_with_halo(self, tmp_path):
        field = generate_gaussian_field(
            (64, 64), correlation_range=9.0, seed=23
        )
        store = ArrayStore.create(
            tmp_path / "h",
            chunk_shape=16,
            codec="sz",
            error_bound=BOUND,
            halo=True,
        )
        store.write(field, cache=False)
        snapshot = StoreSnapshot.open(str(tmp_path / "h"))
        region = (slice(18, 30), slice(18, 30))  # inside a halo chunk
        np.testing.assert_array_equal(
            snapshot.read(region)[0], store.read(region)
        )

    def test_read_report_counts_cache_traffic(self, store_dir):
        snapshot = StoreSnapshot.open(str(store_dir))
        cache = HotChunkCache(max_nbytes=64 * 1024 * 1024)
        _, cold = snapshot.read(chunk_cache=cache)
        assert cold.chunks_decoded == snapshot.n_chunks
        assert cold.cache_hits == 0
        _, warm = snapshot.read(chunk_cache=cache)
        assert warm.chunks_decoded == 0
        assert warm.cache_hits == snapshot.n_chunks
        # Without a cache the report never claims hits.
        _, plain = snapshot.read()
        assert plain.cache_hits == 0

    def test_snapshot_is_immutable_under_append(self, store_dir):
        snapshot = StoreSnapshot.open(str(store_dir))
        before, _ = snapshot.read()
        ArrayStore.open(str(store_dir)).append(
            np.zeros((6, 48)), cache=False
        )
        after, _ = snapshot.read()
        np.testing.assert_array_equal(after, before)
