"""Tests for the per-chunk codec policies (repro.store.policy)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.store.policy import (
    AdaptivePolicy,
    BestPolicy,
    FixedPolicy,
    adaptive,
    best,
    fixed,
    make_policy,
)


class TestSpecParsing:
    @pytest.mark.parametrize("spec", ["sz", "zfp", "mgard", "fixed:sz"])
    def test_fixed_specs(self, spec):
        policy = make_policy(spec)
        assert isinstance(policy, FixedPolicy)
        assert policy.codec == spec.split(":")[-1]

    def test_adaptive_default_candidates(self):
        policy = make_policy("adaptive")
        assert isinstance(policy, AdaptivePolicy)
        assert policy.candidates == ("sz", "zfp", "mgard")

    def test_adaptive_explicit_candidates(self):
        policy = make_policy("adaptive:sz+zfp")
        assert policy.candidates == ("sz", "zfp")

    def test_best_spec(self):
        policy = make_policy("best:sz+mgard")
        assert isinstance(policy, BestPolicy)
        assert policy.candidates == ("sz", "mgard")

    def test_spec_round_trips(self):
        for policy in (fixed("zfp"), adaptive(("sz", "zfp")), best()):
            rebuilt = make_policy(policy.spec)
            assert rebuilt.spec == policy.spec

    def test_adaptive_spec_round_trips_sampling_parameters(self):
        """n_blocks/seed must survive persistence: a reopened store has to
        reproduce the exact same per-chunk decisions."""

        policy = adaptive(("sz", "zfp"), n_blocks=3, seed=99)
        assert policy.spec == "adaptive:sz+zfp:n3:s99"
        rebuilt = make_policy(policy.spec)
        assert rebuilt == policy

    def test_adaptive_policies_with_different_parameters_key_differently(self):
        assert adaptive(seed=0).spec != adaptive(seed=1).spec
        assert adaptive(n_blocks=8).spec != adaptive(n_blocks=4).spec

    def test_policy_objects_pass_through(self):
        policy = adaptive()
        assert make_policy(policy) is policy

    @pytest.mark.parametrize("spec", ["", "fixed:", "nope", "adaptive:nope"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises((ValueError, KeyError)):
            make_policy(spec)

    def test_policies_pickle(self):
        for policy in (fixed("sz"), adaptive(), best()):
            clone = pickle.loads(pickle.dumps(policy))
            assert clone.spec == policy.spec


class TestChoices:
    def test_fixed_always_returns_its_codec(self, smooth_field):
        choice = fixed("mgard").choose(smooth_field, 1e-3)
        assert choice.candidates == ("mgard",)
        assert choice.estimated_crs == {}

    def test_adaptive_chooses_one_candidate_with_estimates(self, smooth_field):
        policy = adaptive(("sz", "zfp"))
        choice = policy.choose(smooth_field, 1e-3)
        assert len(choice.candidates) == 1
        assert choice.candidates[0] in ("sz", "zfp")
        assert set(choice.estimated_crs) == {"sz", "zfp"}
        assert all(v > 0 for v in choice.estimated_crs.values())
        # The winner is the estimate argmax.
        assert choice.candidates[0] == max(
            choice.estimated_crs, key=choice.estimated_crs.get
        )

    def test_adaptive_deterministic(self, smooth_field):
        policy = adaptive(("sz", "zfp"))
        a = policy.choose(smooth_field, 1e-3)
        b = policy.choose(smooth_field, 1e-3)
        assert a == b

    def test_adaptive_handles_tiny_chunks(self):
        chunk = np.random.default_rng(0).normal(size=(6, 6))
        choice = adaptive(("sz", "zfp")).choose(chunk, 1e-3)
        assert len(choice.candidates) == 1

    def test_adaptive_3d_chunk(self):
        chunk = np.random.default_rng(1).normal(size=(20, 20, 20))
        choice = adaptive(("sz", "zfp")).choose(chunk, 1e-2)
        assert choice.candidates[0] in ("sz", "zfp")

    def test_best_returns_all_candidates(self, smooth_field):
        choice = best(("sz", "zfp", "mgard")).choose(smooth_field, 1e-3)
        assert choice.candidates == ("sz", "zfp", "mgard")

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            adaptive(())
