"""Two-wave parallel store decode: identical to the serial reader.

The shared-memory read path decodes anchors in wave 0 and halo chunks
(planes + contexts read back out of the scratch segment) in wave 1; the
results, the halo dependency closure and the payload-dedup accounting
must match the serial ``decode_at`` recursion exactly."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.miranda import generate_miranda_like_volume
from repro.serve.cache import HotChunkCache
from repro.store import ArrayStore
from repro.utils.parallel import (
    ParallelConfig,
    SEGMENT_PREFIX,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)

BOUND = 1e-3
PARALLEL = ParallelConfig(workers=2)


def _no_leaks() -> bool:
    shm = pathlib.Path("/dev/shm")
    return not shm.is_dir() or not list(shm.glob(f"{SEGMENT_PREFIX}-*"))


@pytest.fixture(scope="module", params=[False, True], ids=["grid", "halo"])
def store(request, tmp_path_factory):
    volume = generate_miranda_like_volume((40, 40, 24), seed=5)
    store = ArrayStore.create(
        tmp_path_factory.mktemp("pstore") / "s",
        chunk_shape=16,
        codec="sz",
        error_bound=BOUND,
        halo=request.param,
    )
    store.write(volume, cache=False)
    return store


class TestParity:
    def test_full_read(self, store):
        serial = store.read()
        parallel = store.read(parallel=PARALLEL)
        np.testing.assert_array_equal(parallel, serial)
        assert _no_leaks()

    def test_region_read_with_dropped_axis(self, store):
        region = (slice(5, 30), slice(10, 40), 7)
        serial = store.read(region)
        serial_report = store.last_read
        parallel = store.read(region, parallel=PARALLEL)
        parallel_report = store.last_read
        np.testing.assert_array_equal(parallel, serial)
        assert parallel_report.chunks_total == serial_report.chunks_total
        assert (
            parallel_report.chunks_intersecting
            == serial_report.chunks_intersecting
        )
        assert parallel_report.chunks_decoded == serial_report.chunks_decoded
        assert _no_leaks()

    def test_serial_config_is_the_serial_path(self, store):
        np.testing.assert_array_equal(
            store.read(parallel=ParallelConfig(workers=1)), store.read()
        )


class TestPayloadDedup:
    def test_identical_chunks_decode_once(self, tmp_path):
        # A constant array dedups to one stored payload per chunk shape;
        # the parallel reader must decode one slot, not one per chunk.
        store = ArrayStore.create(
            tmp_path / "flat", chunk_shape=16, codec="sz", error_bound=BOUND
        )
        store.write(np.ones((32, 32, 32)), cache=False)
        serial = store.read()
        serial_decodes = store.last_read.chunks_decoded
        parallel = store.read(parallel=PARALLEL)
        parallel_report = store.last_read
        np.testing.assert_array_equal(parallel, serial)
        assert parallel_report.chunks_decoded == serial_decodes
        assert parallel_report.chunks_decoded < parallel_report.chunks_intersecting


class TestCacheInteraction:
    def test_hot_cache_keeps_serial_decoder(self, tmp_path):
        # The serve hot path owns its cache accounting; a parallel config
        # combined with a chunk cache falls back to the serial decoder.
        field = generate_gaussian_field((64, 64), correlation_range=9.0, seed=3)
        store = ArrayStore.create(
            tmp_path / "hot", chunk_shape=16, codec="sz", error_bound=BOUND
        )
        store.write(field, cache=False)
        cache = HotChunkCache(max_nbytes=1 << 20)
        first = store.read(chunk_cache=cache, parallel=PARALLEL)
        second = store.read(chunk_cache=cache, parallel=PARALLEL)
        np.testing.assert_array_equal(first, second)
        assert store.last_read.cache_hits > 0


class TestAppendedStore:
    def test_partial_trailing_chunks(self, tmp_path):
        store = ArrayStore.create(
            tmp_path / "grown", chunk_shape=16, codec="sz", error_bound=BOUND
        )
        store.write(
            generate_miranda_like_volume((32, 24, 24), seed=9), cache=False
        )
        store.append(
            generate_miranda_like_volume((9, 24, 24), seed=10), cache=False
        )
        np.testing.assert_array_equal(
            store.read(parallel=PARALLEL), store.read()
        )
        assert _no_leaks()
