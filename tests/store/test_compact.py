"""Compaction: reclaim orphaned payload bytes without moving the data.

Unaligned appends rewrite trailing chunks and orphan their old payloads;
:meth:`ArrayStore.compact` copies exactly the live ranges into a fresh
``chunks.bin`` and rebuilds the index.  These tests pin the observable
contract — zero orphaned bytes, bit-identical reads, valid halo anchors,
appendability — plus the exact post-compaction index bytes of a
deterministic build (golden file), so an accidental change to range
ordering or dedup shows up as a byte diff, not a silent relayout.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.gaussian import generate_gaussian_field
from repro.store import ArrayStore
from repro.store.format import parse_halo_flags

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "index_golden_compacted.bin"
)

BOUND = 1e-3


def _churned_store(path, *, halo=False) -> ArrayStore:
    """Deterministic build with unaligned appends → guaranteed orphans."""

    field = generate_gaussian_field((96, 64), correlation_range=10.0, seed=11)
    store = ArrayStore.create(
        path, chunk_shape=32, codec="sz", error_bound=BOUND, halo=halo
    )
    store.write(np.ascontiguousarray(field[:40]), cache=False)
    store.append(np.ascontiguousarray(field[40:57]), cache=False)
    store.append(np.ascontiguousarray(field[57:96]), cache=False)
    return store


class TestCompact:
    def test_reclaims_all_orphaned_bytes(self, tmp_path):
        store = _churned_store(tmp_path / "s")
        assert store.orphaned_nbytes > 0, "churn fixture produced no orphans"
        before = store.read()
        report = store.compact()
        assert report["reclaimed_nbytes"] > 0
        assert store.orphaned_nbytes == 0
        assert store.data_file_nbytes == store.live_payload_nbytes
        assert report["data_file_nbytes"] == store.data_file_nbytes
        np.testing.assert_array_equal(store.read(), before)

    def test_reopen_after_compact(self, tmp_path):
        store = _churned_store(tmp_path / "s")
        before = store.read()
        store.compact()
        reopened = ArrayStore.open(str(tmp_path / "s"))
        assert reopened.orphaned_nbytes == 0
        np.testing.assert_array_equal(reopened.read(), before)

    def test_compact_is_idempotent(self, tmp_path):
        store = _churned_store(tmp_path / "s")
        store.compact()
        report = store.compact()
        assert report["reclaimed_nbytes"] == 0
        assert store.orphaned_nbytes == 0

    def test_append_after_compact(self, tmp_path):
        field = generate_gaussian_field(
            (96, 64), correlation_range=10.0, seed=11
        )
        store = _churned_store(tmp_path / "s")
        store.compact()
        extra = generate_gaussian_field(
            (13, 64), correlation_range=10.0, seed=12
        )
        store.append(extra, cache=False)
        got = store.read()
        assert got.shape == (109, 64)
        assert np.abs(got[:96] - field).max() <= BOUND * (1 + 1e-9)
        assert np.abs(got[96:] - extra).max() <= BOUND * (1 + 1e-9)

    def test_halo_anchors_survive_compaction(self, tmp_path):
        store = _churned_store(tmp_path / "h", halo=True)
        before = store.read()
        store.compact()
        snapshot = store.snapshot()
        for linear, record in enumerate(snapshot.index):
            is_halo, _, _ = parse_halo_flags(record.flags)
            if not is_halo:
                continue
            for anchor in snapshot.halo_dependencies(
                np.unravel_index(linear, snapshot.grid_shape)
            ):
                anchor_record = snapshot.index[
                    snapshot.linear_index(anchor)
                ]
                anchor_is_halo, _, _ = parse_halo_flags(anchor_record.flags)
                assert not anchor_is_halo, (
                    f"halo chunk {linear} anchored on another halo chunk"
                )
        np.testing.assert_array_equal(store.read(), before)

    def test_empty_store_compact_is_a_noop(self, tmp_path):
        store = ArrayStore.create(
            tmp_path / "e", chunk_shape=32, codec="sz", error_bound=BOUND
        )
        report = store.compact()
        assert report == {
            "reclaimed_nbytes": 0,
            "data_file_nbytes": 0,
            "n_ranges": 0,
        }

    def test_generation_advances_on_compact(self, tmp_path):
        store = _churned_store(tmp_path / "s")
        generation = store.generation
        store.compact()
        assert store.generation == generation + 1


class TestGoldenCompactedIndex:
    """Byte-level pin of the post-compaction index for the deterministic
    churn build above.  Regenerate GOLDEN_PATH ONLY alongside a deliberate
    layout change (see tests/store/test_format.py for the policy)."""

    def test_compacted_index_bytes_match_golden(self, tmp_path):
        store = _churned_store(tmp_path / "s")
        store.compact()
        with open(os.path.join(store.path, "index.bin"), "rb") as handle:
            produced = handle.read()
        with open(GOLDEN_PATH, "rb") as handle:
            golden = handle.read()
        assert produced == golden, (
            "compacted index layout drifted from the pinned golden bytes"
        )

    def test_golden_offsets_are_dense_and_first_reference_ordered(self):
        from repro.store.format import unpack_index

        with open(GOLDEN_PATH, "rb") as handle:
            records = unpack_index(handle.read())
        assert records, "golden index is empty"
        seen = {}
        cursor = 0
        for record in records:
            key = (record.offset, record.length)
            if record.offset in seen:
                assert seen[record.offset] == record.length
                continue
            assert record.offset == cursor, "gap or reordering in layout"
            seen[record.offset] = record.length
            cursor += record.length


if __name__ == "__main__":  # pragma: no cover — golden regeneration
    import sys
    import tempfile

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python test_compact.py --regenerate")
    with tempfile.TemporaryDirectory() as scratch:
        store = _churned_store(os.path.join(scratch, "s"))
        store.compact()
        with open(os.path.join(store.path, "index.bin"), "rb") as handle:
            blob = handle.read()
    with open(GOLDEN_PATH, "wb") as handle:
        handle.write(blob)
    print(f"wrote {len(blob)} bytes to {GOLDEN_PATH}")
