"""3D (volume) round-trip tests for the sz/zfp/mgard volume modes.

Covers the new-subsystem acceptance surface: property round-trips under
the error bound, degenerate volumes (constant, tiny, negligible), NaN
handling, container dispatch, and two golden pins — a 3D golden npz for
the new volume containers and a 2D golden-equivalence set proving the
N-d engine refactor left the existing 2D formats bit-identical.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.base import CompressorError
from repro.compressors.mgard import MGARDCompressor
from repro.compressors.registry import make_compressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.datasets.miranda import generate_miranda_like_volume

_DATA = pathlib.Path(__file__).parent / "data"

_COMPRESSORS = ("sz", "zfp", "mgard")


def _roundtrip(name: str, volume: np.ndarray, bound: float) -> np.ndarray:
    codec = make_compressor(name, bound)
    compressed = codec.compress(volume)
    decompressed = codec.decompress(compressed)
    assert decompressed.shape == volume.shape
    assert np.abs(decompressed - volume).max() <= bound * (1 + 1e-9)
    return decompressed


class TestVolumeRoundTrips:
    @pytest.mark.parametrize("name", _COMPRESSORS)
    @pytest.mark.parametrize("bound", [1e-5, 1e-3, 1e-1])
    def test_miranda_volume_within_bound(self, name, bound):
        volume = generate_miranda_like_volume((16, 20, 24), seed=1)
        _roundtrip(name, volume, bound)

    @pytest.mark.parametrize("name", _COMPRESSORS)
    def test_non_multiple_shape(self, name):
        volume = np.random.default_rng(0).normal(size=(13, 22, 9))
        _roundtrip(name, volume, 1e-3)

    @pytest.mark.parametrize("name", _COMPRESSORS)
    def test_constant_volume(self, name):
        volume = np.full((12, 12, 12), -3.25)
        decompressed = _roundtrip(name, volume, 1e-4)
        np.testing.assert_allclose(decompressed, volume, atol=1e-4)

    @pytest.mark.parametrize("name", _COMPRESSORS)
    def test_tiny_volume(self, name):
        volume = np.random.default_rng(1).normal(size=(2, 3, 2))
        _roundtrip(name, volume, 1e-3)

    @pytest.mark.parametrize("name", _COMPRESSORS)
    def test_negligible_magnitude_volume(self, name):
        volume = np.random.default_rng(2).normal(size=(8, 8, 8)) * 1e-9
        codec = make_compressor(name, 1e-3)
        compressed = codec.compress(volume)
        _ = codec.decompress(compressed)
        assert compressed.compression_ratio > 10

    @pytest.mark.parametrize("name", _COMPRESSORS)
    def test_reconstruction_byproduct_matches_decompress(self, name):
        volume = generate_miranda_like_volume((12, 16, 12), seed=3)
        codec = make_compressor(name, 1e-3)
        compressed = codec.compress(volume)
        if compressed.reconstruction is not None:
            np.testing.assert_allclose(
                codec.decompress(compressed), compressed.reconstruction, atol=1e-12
            )

    @given(
        nz=st.integers(min_value=2, max_value=12),
        ny=st.integers(min_value=2, max_value=12),
        nx=st.integers(min_value=2, max_value=12),
        bound_exp=st.integers(min_value=-5, max_value=-1),
        name=st.sampled_from(_COMPRESSORS),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, nz, ny, nx, bound_exp, name):
        volume = np.random.default_rng(nz * 289 + ny * 17 + nx).normal(
            size=(nz, ny, nx)
        )
        _roundtrip(name, volume, 10.0**bound_exp)


class TestVolumeEdgeCases:
    def test_sz_nan_routes_to_raw_fallback(self):
        volume = np.ones((6, 6, 6))
        volume[1, 2, 3] = np.nan
        codec = SZCompressor(1e-3)
        compressed = codec.compress(volume)
        assert compressed.extras.get("raw_fallback") == 1.0
        out = codec.decompress(compressed)
        np.testing.assert_array_equal(np.isnan(out), np.isnan(volume))

    def test_zfp_rejects_non_finite(self):
        volume = np.ones((6, 6, 6))
        volume[0, 0, 0] = np.inf
        with pytest.raises(CompressorError):
            ZFPCompressor(1e-3).compress(volume)

    def test_mgard_rejects_non_finite(self):
        volume = np.ones((6, 6, 6))
        volume[5, 5, 5] = np.nan
        with pytest.raises(CompressorError):
            MGARDCompressor(1e-3).compress(volume)

    def test_sz_extreme_magnitude_falls_back(self):
        volume = np.random.default_rng(3).normal(size=(6, 6, 6)) * 1e300
        codec = SZCompressor(1e-12)
        compressed = codec.compress(volume)
        np.testing.assert_array_equal(codec.decompress(compressed), volume)

    def test_zfp_extreme_magnitude_within_bound(self):
        volume = np.random.default_rng(4).normal(size=(8, 8, 8)) * 1e300
        codec = ZFPCompressor(1.0)
        compressed = codec.compress(volume)
        assert np.abs(codec.decompress(compressed) - volume).max() <= 1.0 * (1 + 1e-9)

    def test_containers_are_cross_rejected(self):
        volume = np.random.default_rng(5).normal(size=(6, 6, 6))
        sz_blob = SZCompressor(1e-3).compress(volume)
        with pytest.raises(CompressorError):
            ZFPCompressor(1e-3).decompress(sz_blob)
        with pytest.raises(CompressorError):
            MGARDCompressor(1e-3).decompress(sz_blob)

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-3).compress(np.zeros((2, 2, 2, 2)))

    def test_sz_3d_block_size_option(self):
        volume = generate_miranda_like_volume((12, 12, 12), seed=6)
        codec = SZCompressor(1e-3, block_size_3d=4)
        assert codec.block_size_3d == 4
        _ = codec.decompress(codec.compress(volume))

    @pytest.mark.parametrize("ndim", [2, 3])
    def test_zfp_container_is_self_describing_for_block_size(self, ndim):
        """A default-configured decoder must honour the block size stored
        in the container (the dequantization step depends on it)."""

        shape = (24, 24) if ndim == 2 else (16, 16, 16)
        field = np.random.default_rng(8).normal(size=shape)
        bound = 1e-3
        compressed = ZFPCompressor(bound, block_size=8).compress(field)
        decompressed = ZFPCompressor(bound).decompress(compressed)
        assert np.abs(decompressed - field).max() <= bound * (1 + 1e-9)


class TestVolumeGolden:
    """Pin the 3D containers (bytes and reconstructions) so future
    refactors of the volume path are provably behaviour-preserving."""

    @pytest.fixture(scope="class")
    def golden(self):
        with np.load(_DATA / "volume_golden.npz") as data:
            return {key: data[key] for key in data.files}

    @pytest.mark.parametrize("name", _COMPRESSORS)
    @pytest.mark.parametrize("bound", [1e-4, 1e-2])
    def test_bytes_and_reconstruction_match(self, golden, name, bound):
        codec = make_compressor(name, bound)
        compressed = codec.compress(golden["volume"])
        np.testing.assert_array_equal(
            np.frombuffer(compressed.data, dtype=np.uint8),
            golden[f"{name}_bytes_{bound:.0e}"],
        )
        np.testing.assert_array_equal(
            codec.decompress(compressed), golden[f"{name}_recon_{bound:.0e}"]
        )


class TestNdRefactorGolden2D:
    """The N-d engine refactor must leave the existing 2D formats
    bit-identical: SZ container bytes and SZ/MGARD reconstructions were
    recorded with the pre-refactor (2D-only) implementation."""

    @pytest.fixture(scope="class")
    def golden(self):
        with np.load(_DATA / "nd_refactor_golden.npz") as data:
            return {key: data[key] for key in data.files}

    @pytest.mark.parametrize("bound", [1e-4, 1e-2])
    @pytest.mark.parametrize("prefix", ["", "rough_"])
    def test_sz_container_bytes_unchanged(self, golden, bound, prefix):
        field = golden["field"] if prefix == "" else golden["rough"]
        compressed = SZCompressor(bound).compress(field)
        np.testing.assert_array_equal(
            np.frombuffer(compressed.data, dtype=np.uint8),
            golden[f"sz_{prefix}bytes_{bound:.0e}"],
        )

    @pytest.mark.parametrize("bound", [1e-4, 1e-2])
    @pytest.mark.parametrize("prefix", ["", "rough_"])
    def test_sz_reconstruction_unchanged(self, golden, bound, prefix):
        field = golden["field"] if prefix == "" else golden["rough"]
        codec = SZCompressor(bound)
        np.testing.assert_array_equal(
            codec.decompress(codec.compress(field)),
            golden[f"sz_{prefix}recon_{bound:.0e}"],
        )

    @pytest.mark.parametrize("bound", [1e-4, 1e-2])
    @pytest.mark.parametrize("prefix", ["", "rough_"])
    def test_mgard_reconstruction_unchanged(self, golden, bound, prefix):
        field = golden["field"] if prefix == "" else golden["rough"]
        codec = MGARDCompressor(bound)
        np.testing.assert_array_equal(
            codec.decompress(codec.compress(field)),
            golden[f"mgard_{prefix}recon_{bound:.0e}"],
        )
