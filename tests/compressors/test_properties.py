"""Property-based tests shared by every compressor.

These are the library's headline invariants:

* the point-wise absolute error bound is respected for arbitrary fields,
* decompress(compress(x)) equals the reconstruction reported by compress,
* the compression ratio is monotone (non-strictly) in the error bound for
  fixed data.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.mgard import MGARDCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor

COMPRESSOR_CLASSES = [SZCompressor, ZFPCompressor, MGARDCompressor]

field_strategy = hnp.arrays(
    np.float64,
    st.tuples(st.integers(min_value=9, max_value=40), st.integers(min_value=9, max_value=40)),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
)

bound_strategy = st.sampled_from([1e-4, 1e-3, 1e-2, 1e-1, 1.0])


@pytest.mark.parametrize("compressor_cls", COMPRESSOR_CLASSES, ids=lambda c: c.name)
class TestCompressorProperties:
    @given(field=field_strategy, bound=bound_strategy)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_error_bound_holds_for_arbitrary_fields(self, compressor_cls, field, bound):
        compressor = compressor_cls(bound)
        compressed = compressor.compress(field)
        assert np.abs(compressed.reconstruction - field).max(initial=0.0) <= bound * (1 + 1e-9)

    @given(field=field_strategy, bound=bound_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_decompress_matches_reported_reconstruction(self, compressor_cls, field, bound):
        compressor = compressor_cls(bound)
        compressed = compressor.compress(field)
        decompressed = compressor.decompress(compressed)
        np.testing.assert_allclose(decompressed, compressed.reconstruction, atol=1e-12)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_cr_monotone_in_error_bound(self, compressor_cls, seed):
        field = np.random.default_rng(seed).normal(size=(48, 48))
        bounds = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
        crs = [compressor_cls(b).compression_ratio(field) for b in bounds]
        for tighter, looser in zip(crs, crs[1:]):
            assert looser >= tighter * 0.999  # allow tiny header-noise inversions

    @given(
        field=hnp.arrays(
            np.float64,
            (20, 20),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_compressed_blob_is_self_contained(self, compressor_cls, field):
        bound = 1e-3
        producer = compressor_cls(bound)
        compressed = producer.compress(field)
        consumer = compressor_cls(1.0)  # differently configured instance
        decompressed = consumer.decompress(compressed)
        assert np.abs(decompressed - field).max(initial=0.0) <= bound * (1 + 1e-9)
