"""Tests for repro.compressors.zfp."""

from __future__ import annotations

import pathlib
import warnings

import numpy as np
import pytest

from repro.compressors.base import CompressorError
from repro.compressors.zfp import ZFPCompressor

_GOLDEN = pathlib.Path(__file__).parent / "data" / "zfp_golden.npz"


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZFPCompressor(error_bound=-1.0)
        with pytest.raises(ValueError):
            ZFPCompressor(block_size=1)
        with pytest.raises(ValueError):
            ZFPCompressor(backend="bzip2")


class TestRoundTrip:
    @pytest.mark.parametrize("bound", [1e-5, 1e-3, 1e-1])
    def test_error_bound_and_decompression_consistency(self, smooth_field, bound):
        compressor = ZFPCompressor(bound)
        compressed = compressor.compress(smooth_field)
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= bound * (1 + 1e-9)
        np.testing.assert_allclose(decompressed, compressed.reconstruction, atol=1e-12)

    def test_non_multiple_shapes(self):
        field = np.random.default_rng(0).normal(size=(30, 45))
        compressor = ZFPCompressor(1e-3)
        decompressed = compressor.decompress(compressor.compress(field))
        assert decompressed.shape == (30, 45)
        assert np.abs(decompressed - field).max() <= 1e-3 * (1 + 1e-9)

    def test_constant_and_zero_fields(self):
        compressor = ZFPCompressor(1e-4)
        zero = np.zeros((32, 32))
        compressed = compressor.compress(zero)
        np.testing.assert_allclose(compressor.decompress(compressed), zero, atol=1e-4)
        assert compressed.compression_ratio > 20

        constant = np.full((32, 32), -5.75)
        compressed_const = compressor.compress(constant)
        np.testing.assert_allclose(
            compressor.decompress(compressed_const), constant, atol=1e-4
        )

    def test_miranda_slice(self, miranda_slice):
        compressor = ZFPCompressor(1e-3)
        decompressed = compressor.decompress(compressor.compress(miranda_slice))
        assert np.abs(decompressed - miranda_slice).max() <= 1e-3 * (1 + 1e-9)

    def test_large_magnitude_values(self):
        field = np.random.default_rng(1).normal(size=(32, 32)) * 1e6 + 1e7
        compressor = ZFPCompressor(1.0)
        decompressed = compressor.decompress(compressor.compress(field))
        assert np.abs(decompressed - field).max() <= 1.0 * (1 + 1e-9)

    def test_non_finite_rejected(self):
        field = np.ones((8, 8))
        field[0, 0] = np.nan
        with pytest.raises(CompressorError):
            ZFPCompressor(1e-3).compress(field)


class TestCompressionBehaviour:
    def test_cr_increases_with_error_bound(self, smooth_field):
        crs = [ZFPCompressor(b).compression_ratio(smooth_field) for b in (1e-5, 1e-3, 1e-1)]
        assert crs[0] < crs[1] < crs[2]

    def test_smoother_data_compresses_better(self, smooth_field, rough_field):
        bound = 1e-3
        assert ZFPCompressor(bound).compression_ratio(smooth_field) > ZFPCompressor(
            bound
        ).compression_ratio(rough_field)

    def test_negligible_blocks_detected_for_tiny_data(self):
        field = np.random.default_rng(2).normal(size=(32, 32)) * 1e-6
        compressed = ZFPCompressor(1e-3).compress(field)
        assert compressed.extras["negligible_block_fraction"] == 1.0
        assert compressed.compression_ratio > 20

    def test_extras_reported(self, smooth_field):
        compressed = ZFPCompressor(1e-3).compress(smooth_field)
        assert compressed.extras["n_blocks"] == (64 // 4) ** 2
        assert 0.0 <= compressed.extras["exact_block_fraction"] <= 1.0

    def test_block_size_option(self, smooth_field):
        compressor = ZFPCompressor(1e-3, block_size=8)
        decompressed = compressor.decompress(compressor.compress(smooth_field))
        assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_extreme_ratio_casts_are_guarded(self):
        """Regression: coefficient/step ratios at extreme magnitude/bound
        combinations used to hit an undefined non-finite -> int64 cast
        (RuntimeWarning from NumPy) before the overflow guard ran; the mask
        must now be applied on the float ratios, pre-cast."""

        rng = np.random.default_rng(7)
        cases = [
            rng.normal(size=(16, 16)) * 1e300,  # step underflows -> inf ratios
            rng.normal(size=(16, 16)) * 1e18,  # ratios beyond the code radius
            np.full((8, 8), 1e250),
        ]
        for field in cases:
            for bound in (1e-12, 1e-3):
                compressor = ZFPCompressor(bound)
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    compressed = compressor.compress(field)
                decompressed = compressor.decompress(compressed)
                assert np.abs(decompressed - field).max() <= bound * (1 + 1e-9)

    def test_int64_min_sign_trap_does_not_leak_garbage(self):
        """np.abs(np.int64.min) is still negative, so a post-cast magnitude
        check can pass garbage codes; the pre-cast guard must route such
        blocks to exact storage with an exact round trip."""

        field = np.full((4, 4), 2.0**300)
        field[0, 0] = -(2.0**300)
        compressor = ZFPCompressor(1e-6)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compressed = compressor.compress(field)
        assert compressed.extras["exact_block_fraction"] == 1.0
        np.testing.assert_array_equal(compressor.decompress(compressed), field)

    def test_decompress_does_not_mutate_error_bound(self, smooth_field):
        """The decoded bound must be threaded explicitly, never installed on
        the instance (reentrancy/thread safety)."""

        producer = ZFPCompressor(1e-2)
        compressed = producer.compress(smooth_field)
        consumer = ZFPCompressor(1e-5)
        decompressed = consumer.decompress(compressed)
        assert consumer.error_bound == 1e-5
        assert producer.error_bound == 1e-2
        assert np.abs(decompressed - smooth_field).max() <= 1e-2 * (1 + 1e-9)

    def test_wrong_container_rejected(self, smooth_field):
        compressor = ZFPCompressor(1e-3)
        compressed = compressor.compress(smooth_field)
        corrupted = type(compressed)(
            data=b"YYYY" + compressed.data[4:],
            original_shape=compressed.original_shape,
            original_dtype=compressed.original_dtype,
            compressor="zfp",
            error_bound=compressed.error_bound,
        )
        with pytest.raises(CompressorError):
            compressor.decompress(corrupted)


class TestGoldenStream:
    """Pin the sequency-partitioned stream against the pre-refactor
    reconstruction: the container format changed, but the quantization math
    (exponents, steps, rounding, exact/negligible routing) must reproduce
    the recorded reconstructions bit for bit."""

    @pytest.fixture(scope="class")
    def golden(self):
        with np.load(_GOLDEN) as data:
            return {key: data[key] for key in data.files}

    @pytest.mark.parametrize("bound", [1e-4, 1e-2])
    def test_reconstruction_matches_golden(self, golden, bound):
        compressor = ZFPCompressor(bound)
        reconstruction = compressor.decompress(compressor.compress(golden["field"]))
        np.testing.assert_array_equal(reconstruction, golden[f"recon_{bound:.0e}"])

    def test_extreme_field_matches_golden(self, golden):
        compressor = ZFPCompressor(1e-4)
        reconstruction = compressor.decompress(compressor.compress(golden["extreme_field"]))
        np.testing.assert_array_equal(reconstruction, golden["extreme_recon_1e-04"])

    def test_stream_group_extras_reported(self, golden):
        compressed = ZFPCompressor(1e-4).compress(golden["field"])
        assert compressed.extras["coefficient_stream_groups"] >= 1.0
