"""Tests for repro.compressors.registry and base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.base import (
    CompressedField,
    Compressor,
    ErrorBoundExceededError,
    LosslessBackend,
)
from repro.compressors.mgard import MGARDCompressor
from repro.compressors.registry import available_compressors, make_compressor, register_compressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor


class TestRegistry:
    def test_paper_compressors_available(self):
        assert {"sz", "zfp", "mgard"} <= set(available_compressors())

    def test_make_compressor_types(self):
        assert isinstance(make_compressor("sz", 1e-3), SZCompressor)
        assert isinstance(make_compressor("zfp", 1e-3), ZFPCompressor)
        assert isinstance(make_compressor("mgard", 1e-3), MGARDCompressor)

    def test_make_compressor_forwards_options(self):
        compressor = make_compressor("sz", 1e-3, block_size=8)
        assert compressor.block_size == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            make_compressor("fpzip", 1e-3)

    def test_register_custom_compressor(self):
        class IdentityCompressor(Compressor):
            name = "identity-test"

            def compress(self, field):
                data = np.asarray(field, dtype="<f8").tobytes()
                return CompressedField(
                    data=data,
                    original_shape=field.shape,
                    original_dtype=np.asarray(field).dtype,
                    compressor=self.name,
                    error_bound=self.error_bound,
                    reconstruction=np.asarray(field, dtype=np.float64),
                )

            def decompress(self, compressed):
                return np.frombuffer(compressed.data, dtype="<f8").reshape(
                    compressed.original_shape
                )

        register_compressor("identity-test", IdentityCompressor, overwrite=True)
        assert "identity-test" in available_compressors()
        codec = make_compressor("identity-test", 1e-3)
        field = np.random.default_rng(0).normal(size=(4, 4))
        np.testing.assert_array_equal(codec.decompress(codec.compress(field)), field)

    def test_duplicate_registration_requires_overwrite(self):
        with pytest.raises(KeyError):
            register_compressor("sz", SZCompressor)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_compressor("", SZCompressor)


class TestCompressedField:
    def test_ratio_definition(self):
        compressed = CompressedField(
            data=b"0" * 100,
            original_shape=(10, 10),
            original_dtype=np.dtype(np.float64),
            compressor="sz",
            error_bound=1e-3,
        )
        assert compressed.original_nbytes == 800
        assert compressed.compression_ratio == pytest.approx(8.0)

    def test_empty_blob_gives_infinite_ratio(self):
        compressed = CompressedField(
            data=b"",
            original_shape=(4, 4),
            original_dtype=np.dtype(np.float32),
            compressor="x",
            error_bound=1.0,
        )
        assert compressed.compression_ratio == float("inf")


class TestLosslessBackend:
    @pytest.mark.parametrize("name", ["huffman", "zstd", "raw"])
    def test_roundtrip(self, name):
        backend = LosslessBackend(name)
        symbols = np.random.default_rng(0).integers(0, 50, size=500)
        np.testing.assert_array_equal(backend.decode_symbols(backend.encode_symbols(symbols)), symbols)

    def test_decoding_is_backend_agnostic(self):
        # The tag byte makes the stream self-describing.
        symbols = np.arange(100)
        blob = LosslessBackend("raw").encode_symbols(symbols)
        np.testing.assert_array_equal(LosslessBackend("huffman").decode_symbols(blob), symbols)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            LosslessBackend().encode_symbols(np.array([-1]))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            LosslessBackend("gzip")

    def test_huffman_smaller_than_raw_on_skewed_streams(self):
        symbols = np.zeros(5000, dtype=np.int64)
        symbols[::100] = 7
        raw = LosslessBackend("raw").encode_symbols(symbols)
        huffman = LosslessBackend("huffman").encode_symbols(symbols)
        assert len(huffman) < len(raw) / 20

    def test_empty_stream(self):
        backend = LosslessBackend()
        assert backend.decode_symbols(backend.encode_symbols(np.array([], dtype=np.int64))).size == 0


class TestErrorBoundCheck:
    def test_check_error_bound_raises_on_violation(self, smooth_field):
        compressor = SZCompressor(1e-3)
        with pytest.raises(ErrorBoundExceededError):
            compressor.check_error_bound(smooth_field, smooth_field + 1.0)

    def test_check_error_bound_returns_max_error(self, smooth_field):
        compressor = SZCompressor(1e-3)
        value = compressor.check_error_bound(smooth_field, smooth_field + 5e-4)
        assert value == pytest.approx(5e-4)
