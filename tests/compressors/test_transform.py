"""Tests for repro.compressors.transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.transform import (
    forward_block_transform,
    inverse_block_transform,
    orthonormal_dct_matrix,
    sequency_order,
)


class TestDCTMatrix:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_orthonormality(self, size):
        basis = orthonormal_dct_matrix(size)
        np.testing.assert_allclose(basis @ basis.T, np.eye(size), atol=1e-12)

    def test_first_row_is_constant(self):
        basis = orthonormal_dct_matrix(4)
        np.testing.assert_allclose(basis[0], np.full(4, 0.5))


class TestBlockTransform:
    def test_roundtrip(self):
        blocks = np.random.default_rng(0).normal(size=(10, 4, 4))
        coeffs = forward_block_transform(blocks)
        np.testing.assert_allclose(inverse_block_transform(coeffs), blocks, atol=1e-12)

    def test_energy_preservation(self):
        blocks = np.random.default_rng(1).normal(size=(5, 4, 4))
        coeffs = forward_block_transform(blocks)
        np.testing.assert_allclose(
            (blocks**2).sum(axis=(1, 2)), (coeffs**2).sum(axis=(1, 2)), rtol=1e-12
        )

    def test_constant_block_energy_in_dc_only(self):
        blocks = np.full((1, 4, 4), 2.0)
        coeffs = forward_block_transform(blocks)
        assert abs(coeffs[0, 0, 0] - 8.0) < 1e-12  # 2.0 * 4 (norm of separable DC)
        assert np.abs(coeffs[0]).sum() == pytest.approx(8.0, abs=1e-10)

    def test_smooth_block_concentrates_energy_in_low_frequencies(self, smooth_field):
        from repro.utils.blocking import block_view

        blocks = block_view(smooth_field[:32, :32], 4).reshape(-1, 4, 4)
        coeffs = forward_block_transform(blocks)
        rows, cols = sequency_order(4)
        ordered = coeffs[:, rows, cols]
        low = np.abs(ordered[:, :4]).sum()
        high = np.abs(ordered[:, 8:]).sum()
        assert low > 5 * high

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            forward_block_transform(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_block_transform(np.zeros((2, 4, 5)))

    @given(
        blocks=hnp.arrays(
            np.float64,
            (3, 4, 4),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, blocks):
        recon = inverse_block_transform(forward_block_transform(blocks))
        np.testing.assert_allclose(recon, blocks, atol=1e-9)


class TestSequencyOrder:
    def test_is_a_permutation(self):
        rows, cols = sequency_order(4)
        flat = rows * 4 + cols
        assert sorted(flat.tolist()) == list(range(16))

    def test_starts_at_dc_and_ends_at_highest_frequency(self):
        rows, cols = sequency_order(4)
        assert (rows[0], cols[0]) == (0, 0)
        assert (rows[-1], cols[-1]) == (3, 3)

    def test_total_frequency_is_nondecreasing(self):
        rows, cols = sequency_order(8)
        totals = rows + cols
        assert np.all(np.diff(totals) >= 0)
