"""Tests for repro.compressors.transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.transform import (
    block_exponents,
    forward_block_transform,
    group_planes_by_width,
    inverse_block_transform,
    orthonormal_dct_matrix,
    quantize_block_coefficients,
    sequency_order,
    sequency_plane_widths,
)


class TestDCTMatrix:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_orthonormality(self, size):
        basis = orthonormal_dct_matrix(size)
        np.testing.assert_allclose(basis @ basis.T, np.eye(size), atol=1e-12)

    def test_first_row_is_constant(self):
        basis = orthonormal_dct_matrix(4)
        np.testing.assert_allclose(basis[0], np.full(4, 0.5))


class TestBlockTransform:
    def test_roundtrip(self):
        blocks = np.random.default_rng(0).normal(size=(10, 4, 4))
        coeffs = forward_block_transform(blocks)
        np.testing.assert_allclose(inverse_block_transform(coeffs), blocks, atol=1e-12)

    def test_energy_preservation(self):
        blocks = np.random.default_rng(1).normal(size=(5, 4, 4))
        coeffs = forward_block_transform(blocks)
        np.testing.assert_allclose(
            (blocks**2).sum(axis=(1, 2)), (coeffs**2).sum(axis=(1, 2)), rtol=1e-12
        )

    def test_constant_block_energy_in_dc_only(self):
        blocks = np.full((1, 4, 4), 2.0)
        coeffs = forward_block_transform(blocks)
        assert abs(coeffs[0, 0, 0] - 8.0) < 1e-12  # 2.0 * 4 (norm of separable DC)
        assert np.abs(coeffs[0]).sum() == pytest.approx(8.0, abs=1e-10)

    def test_smooth_block_concentrates_energy_in_low_frequencies(self, smooth_field):
        from repro.utils.blocking import block_view

        blocks = block_view(smooth_field[:32, :32], 4).reshape(-1, 4, 4)
        coeffs = forward_block_transform(blocks)
        rows, cols = sequency_order(4)
        ordered = coeffs[:, rows, cols]
        low = np.abs(ordered[:, :4]).sum()
        high = np.abs(ordered[:, 8:]).sum()
        assert low > 5 * high

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            forward_block_transform(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_block_transform(np.zeros((2, 4, 5)))

    @given(
        blocks=hnp.arrays(
            np.float64,
            (3, 4, 4),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, blocks):
        recon = inverse_block_transform(forward_block_transform(blocks))
        np.testing.assert_allclose(recon, blocks, atol=1e-9)


class TestSequencyOrder:
    def test_is_a_permutation(self):
        rows, cols = sequency_order(4)
        flat = rows * 4 + cols
        assert sorted(flat.tolist()) == list(range(16))

    def test_starts_at_dc_and_ends_at_highest_frequency(self):
        rows, cols = sequency_order(4)
        assert (rows[0], cols[0]) == (0, 0)
        assert (rows[-1], cols[-1]) == (3, 3)

    def test_total_frequency_is_nondecreasing(self):
        rows, cols = sequency_order(8)
        totals = rows + cols
        assert np.all(np.diff(totals) >= 0)


class TestBlockExponents:
    def test_normalised_blocks_on_unit_scale(self):
        blocks = np.random.default_rng(0).normal(size=(12, 4, 4)) * 100
        emax, negligible, normalised = block_exponents(blocks, 1e-3)
        assert not negligible.any()
        assert np.abs(normalised).max() <= 1.0 + 1e-12
        np.testing.assert_allclose(
            normalised * np.exp2(emax.astype(np.float64))[:, None, None], blocks
        )

    def test_negligible_blocks_flagged_and_zeroed(self):
        blocks = np.stack([np.full((4, 4), 1e-8), np.full((4, 4), 5.0)])
        emax, negligible, normalised = block_exponents(blocks, 1e-3)
        np.testing.assert_array_equal(negligible, [True, False])
        assert np.all(normalised[0] == 0.0)

    def test_zero_block_has_zero_exponent(self):
        emax, negligible, _ = block_exponents(np.zeros((1, 4, 4)), 1e-3)
        assert emax[0] == 0
        assert negligible[0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            block_exponents(np.zeros((4, 4)), 1e-3)


class TestQuantizeBlockCoefficients:
    def test_plain_quantization(self):
        coeffs = np.array([[[0.5, -1.2], [0.0, 2.0]]])
        codes, overflow = quantize_block_coefficients(
            coeffs, np.array([0.5]), np.array([True]), 1 << 30
        )
        np.testing.assert_array_equal(codes, [[[1, -2], [0, 4]]])
        assert not overflow.any()

    def test_inactive_blocks_stay_zero(self):
        coeffs = np.ones((2, 2, 2))
        codes, overflow = quantize_block_coefficients(
            coeffs, np.array([1.0, 1.0]), np.array([False, True]), 1 << 30
        )
        assert np.all(codes[0] == 0)
        assert np.all(codes[1] == 1)
        assert not overflow.any()

    def test_non_finite_ratio_flags_overflow_without_warning(self):
        import warnings

        coeffs = np.ones((1, 2, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            codes, overflow = quantize_block_coefficients(
                coeffs, np.array([0.0]), np.array([True]), 1 << 30
            )
        assert overflow[0]
        assert np.all(codes == 0)

    def test_beyond_radius_flags_overflow(self):
        coeffs = np.full((1, 2, 2), 1e18)
        codes, overflow = quantize_block_coefficients(
            coeffs, np.array([1.0]), np.array([True]), 1 << 30
        )
        assert overflow[0]
        assert np.all(codes == 0)


class TestPlaneGrouping:
    def test_widths_of_known_planes(self):
        zig = np.array([[0, 1, 3, 4, 0], [0, 1, 2, 7, 0]], dtype=np.int64)
        np.testing.assert_array_equal(sequency_plane_widths(zig), [0, 1, 2, 3, 0])

    def test_groups_cover_all_planes_in_order(self):
        widths = np.array([5, 5, 3, 3, 3, 0, 0])
        groups = group_planes_by_width(widths)
        assert groups == [(0, 2, 5), (2, 5, 3), (5, 7, 0)]

    def test_empty_and_single(self):
        assert group_planes_by_width(np.empty(0, dtype=np.int64)) == []
        assert group_planes_by_width(np.array([4])) == [(0, 1, 4)]

    def test_widths_roundtrip_with_grouping(self):
        rng = np.random.default_rng(2)
        zig = np.abs(rng.integers(0, 1 << 12, size=(64, 16))) >> rng.integers(
            0, 12, size=16
        )
        widths = sequency_plane_widths(zig)
        groups = group_planes_by_width(widths)
        assert groups[0][0] == 0
        assert groups[-1][1] == 16
        for start, end, width in groups:
            assert np.all(widths[start:end] == width)
            if width == 0:
                assert np.all(zig[:, start:end] == 0)
            else:
                assert int(zig[:, start:end].max()) < (1 << width)
