"""Tests for repro.compressors.regression_predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.regression_predictor import (
    coefficient_precisions,
    dequantize_plane_coefficients,
    fit_block_planes,
    plane_design_matrix,
    plane_predictions,
    quantize_plane_coefficients,
)


class TestDesignMatrix:
    def test_shape_and_columns(self):
        design = plane_design_matrix(4)
        assert design.shape == (16, 3)
        np.testing.assert_array_equal(design[:, 0], np.ones(16))
        assert design[:, 1].max() == 3
        assert design[:, 2].max() == 3


class TestFitBlockPlanes:
    def test_exact_plane_recovered(self):
        ii, jj = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        block = 2.0 + 0.5 * ii - 0.25 * jj
        coeffs = fit_block_planes(block[None, None])
        np.testing.assert_allclose(coeffs[0, 0], [2.0, 0.5, -0.25], atol=1e-10)

    def test_constant_block(self):
        block = np.full((1, 1, 16, 16), 7.0)
        coeffs = fit_block_planes(block)
        np.testing.assert_allclose(coeffs[0, 0], [7.0, 0.0, 0.0], atol=1e-10)

    def test_multiple_blocks_fitted_independently(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(3, 5, 8, 8))
        coeffs = fit_block_planes(blocks)
        assert coeffs.shape == (3, 5, 3)
        # Spot check one block against lstsq.
        design = plane_design_matrix(8)
        expected, *_ = np.linalg.lstsq(design, blocks[1, 2].ravel(), rcond=None)
        np.testing.assert_allclose(coeffs[1, 2], expected, atol=1e-10)

    def test_least_squares_is_optimal(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(1, 1, 8, 8))
        coeffs = fit_block_planes(block)
        pred = plane_predictions(coeffs, 8)
        residual = float(((block - pred) ** 2).sum())
        perturbed = coeffs + np.array([0.01, 0.0, 0.0])
        residual_perturbed = float(((block - plane_predictions(perturbed, 8)) ** 2).sum())
        assert residual <= residual_perturbed

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            fit_block_planes(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            fit_block_planes(np.zeros((1, 1, 4, 5)))


class TestCoefficientQuantization:
    def test_precision_scaling_with_block_size(self):
        precisions = coefficient_precisions(1e-3, 16)
        assert precisions[0] == pytest.approx(1e-3)
        assert precisions[1] == pytest.approx(1e-3 / 16)
        assert precisions[2] == pytest.approx(1e-3 / 16)

    def test_quantize_dequantize_error_within_half_precision(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(size=(4, 4, 3))
        codes = quantize_plane_coefficients(coeffs, 1e-3, 16)
        recovered = dequantize_plane_coefficients(codes, 1e-3, 16)
        precisions = coefficient_precisions(1e-3, 16)
        assert np.all(np.abs(recovered - coeffs) <= precisions / 2 + 1e-15)

    def test_plane_prediction_error_bounded_after_coefficient_quantization(self):
        # The quantized plane must stay within ~error_bound of the exact
        # plane anywhere in the block (this is what makes the SZ regression
        # predictor safe).
        rng = np.random.default_rng(3)
        bs, bound = 16, 1e-3
        blocks = rng.normal(size=(2, 2, bs, bs))
        coeffs = fit_block_planes(blocks)
        codes = quantize_plane_coefficients(coeffs, bound, bs)
        quantized = dequantize_plane_coefficients(codes, bound, bs)
        exact_pred = plane_predictions(coeffs, bs)
        quant_pred = plane_predictions(quantized, bs)
        max_dev = np.abs(exact_pred - quant_pred).max()
        assert max_dev <= bound * 1.6  # 0.5 + 2 * (bs-1)/(2*bs) ~ 1.5


class TestPlanePredictions:
    def test_prediction_matches_plane_equation(self):
        coeffs = np.array([[[1.0, 2.0, -1.0]]])
        pred = plane_predictions(coeffs, 4)
        ii, jj = np.meshgrid(np.arange(4), np.arange(4), indexing="ij")
        np.testing.assert_allclose(pred[0, 0], 1.0 + 2.0 * ii - 1.0 * jj)

    def test_rejects_bad_coefficient_shape(self):
        # A trailing axis below 2 cannot hold (intercept, slope...) for any
        # dimensionality; a flat (n, 3) batch is now valid (N-d engine).
        with pytest.raises(ValueError):
            plane_predictions(np.zeros((2, 2, 1)), 4)
