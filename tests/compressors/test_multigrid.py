"""Tests for repro.compressors.multigrid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.multigrid import (
    coarsen_shape,
    decompose,
    detail_mask,
    max_levels,
    prolong,
    reconstruct,
    restrict,
)


class TestHierarchyHelpers:
    def test_coarsen_shape(self):
        assert coarsen_shape((64, 64)) == (32, 32)
        assert coarsen_shape((65, 33)) == (33, 17)

    def test_max_levels_respects_min_size(self):
        assert max_levels((64, 64), min_size=4) >= 3
        # 7 -> 4 is allowed (coarse grid still >= min_size), 5 -> 3 is not.
        assert max_levels((7, 7), min_size=4) == 1
        assert max_levels((5, 5), min_size=4) == 0

    def test_restrict_takes_even_indices(self):
        field = np.arange(36, dtype=float).reshape(6, 6)
        coarse = restrict(field)
        np.testing.assert_array_equal(coarse, field[::2, ::2])

    def test_detail_mask_excludes_coarse_points(self):
        mask = detail_mask((6, 6))
        assert not mask[::2, ::2].any()
        assert mask.sum() == 36 - 9


class TestProlong:
    def test_exact_at_coarse_points(self):
        coarse = np.random.default_rng(0).normal(size=(5, 5))
        fine = prolong(coarse, (9, 9))
        np.testing.assert_allclose(fine[::2, ::2], coarse, atol=1e-12)

    def test_linear_function_reproduced_exactly(self):
        ii, jj = np.meshgrid(np.arange(9), np.arange(9), indexing="ij")
        fine_truth = 2.0 + 0.5 * ii - 0.3 * jj
        coarse = fine_truth[::2, ::2]
        np.testing.assert_allclose(prolong(coarse, (9, 9)), fine_truth, atol=1e-12)

    def test_max_principle(self):
        coarse = np.random.default_rng(1).normal(size=(4, 6))
        fine = prolong(coarse, (8, 12))
        assert fine.max() <= coarse.max() + 1e-12
        assert fine.min() >= coarse.min() - 1e-12

    def test_odd_and_even_fine_shapes(self):
        coarse = np.random.default_rng(2).normal(size=(5, 4))
        assert prolong(coarse, (9, 7)).shape == (9, 7)
        assert prolong(coarse, (10, 8)).shape == (10, 8)


class TestDecomposeReconstruct:
    @pytest.mark.parametrize("shape", [(32, 32), (33, 47), (64, 40)])
    def test_roundtrip_exact(self, shape):
        field = np.random.default_rng(3).normal(size=shape)
        decomposition = decompose(field, levels=3)
        np.testing.assert_allclose(reconstruct(decomposition), field, atol=1e-10)

    def test_smooth_field_has_small_details(self, smooth_field, rough_field):
        smooth_details = decompose(smooth_field, 2).details[0]
        rough_details = decompose(rough_field, 2).details[0]
        assert np.abs(smooth_details).mean() < np.abs(rough_details).mean()

    def test_levels_clamped_to_available(self):
        field = np.random.default_rng(4).normal(size=(16, 16))
        decomposition = decompose(field, levels=10)
        assert decomposition.n_levels == max_levels((16, 16))

    def test_zero_levels_is_identity(self):
        field = np.random.default_rng(5).normal(size=(8, 8))
        decomposition = decompose(field, levels=0)
        assert decomposition.n_levels == 0
        np.testing.assert_array_equal(reconstruct(decomposition), field)

    def test_shapes_list_is_consistent(self):
        field = np.zeros((40, 24))
        decomposition = decompose(field, levels=2)
        assert decomposition.shapes[0] == (40, 24)
        assert decomposition.shapes[1] == (20, 12)
        assert decomposition.shapes[2] == (10, 6)

    @given(
        rows=st.integers(min_value=9, max_value=40),
        cols=st.integers(min_value=9, max_value=40),
        levels=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows, cols, levels):
        field = np.random.default_rng(rows * 100 + cols).normal(size=(rows, cols))
        np.testing.assert_allclose(reconstruct(decompose(field, levels)), field, atol=1e-9)
