"""Halo-aware compression tests: the shell-corrected Lorenzo predictor,
the TileHalo carrier, and the halo container paths of all three
compressors (error bound, round trips, halo-off bit-identity)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.compressors.blocks import (
    BlockCodec,
    halo_lorenzo_correction,
    lorenzo_residuals,
)
from repro.compressors.halo import TileHalo
from repro.compressors.registry import make_compressor
from repro.encoding.context import EntropyContext
from repro.utils.blocking import block_view, reassemble_blocks

COMPRESSORS = ("sz", "zfp", "mgard")


def correlated_field(shape, seed=0, noise=0.01):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*(np.linspace(0, 3, s) for s in shape), indexing="ij")
    field = sum(np.sin(2.1 * g + i) for i, g in enumerate(grids))
    return field + noise * rng.normal(size=shape)


def neighbour_planes(field, offset=0.02):
    """Plausible reconstructed neighbour planes: the low faces, shifted."""

    return [
        np.ascontiguousarray(np.take(field, 0, axis=axis)) - offset
        for axis in range(field.ndim)
    ]


def brute_extended_lorenzo(codes, halo_codes, bs):
    """Reference per-block inclusion-exclusion over the extended block."""

    ndim = codes.ndim
    n_blocks = tuple(s // bs for s in codes.shape)

    def shell_value(block_idx, local):
        zero_set = [a for a in range(ndim) if local[a] == -1]
        if not zero_set:
            pos = tuple(block_idx[a] * bs + local[a] for a in range(ndim))
            return codes[pos]
        for axis in zero_set:
            if halo_codes[axis] is None or block_idx[axis] != 0:
                return 0
        lead = zero_set[0]
        coords = []
        for axis in range(ndim):
            if axis == lead:
                continue
            local_pos = 0 if axis in zero_set else local[axis]
            coords.append(block_idx[axis] * bs + local_pos)
        return halo_codes[lead][tuple(coords)]

    out = np.zeros_like(codes)
    for block_idx in product(*(range(n) for n in n_blocks)):
        for local in product(*(range(bs) for _ in range(ndim))):
            residual = 0
            for signs in product((0, 1), repeat=ndim):
                shifted = tuple(local[a] - signs[a] for a in range(ndim))
                residual += (-1) ** sum(signs) * shell_value(block_idx, shifted)
            pos = tuple(block_idx[a] * bs + local[a] for a in range(ndim))
            out[pos] = residual
    return out


class TestHaloLorenzoCorrection:
    @pytest.mark.parametrize(
        "shape,bs,halo_axes",
        [
            ((8, 12), 4, (0, 1)),
            ((8, 8), 4, (1,)),
            ((4, 6, 4), 2, (0, 1, 2)),
            ((4, 4, 6), 2, (0, 2)),
        ],
    )
    def test_matches_brute_force_extended_lorenzo(self, shape, bs, halo_axes):
        rng = np.random.default_rng(7)
        codes = rng.integers(-50, 50, shape).astype(np.int64)
        halo_codes = [
            rng.integers(-50, 50, tuple(s for i, s in enumerate(shape) if i != a))
            .astype(np.int64)
            if a in halo_axes
            else None
            for a in range(len(shape))
        ]
        n_blocks = tuple(s // bs for s in shape)
        standard = lorenzo_residuals(block_view(codes.copy(), bs), block_ndim=len(shape))
        corrected = standard + halo_lorenzo_correction(halo_codes, n_blocks, bs)
        got = reassemble_blocks(corrected, shape)
        want = brute_extended_lorenzo(codes, halo_codes, bs)
        assert np.array_equal(got, want)

    def test_no_halo_axes_is_zero(self):
        correction = halo_lorenzo_correction([None, None], (2, 2), 4)
        assert not correction.any()


class TestTileHalo:
    def test_build_none_when_empty(self):
        assert TileHalo.build([None, None, None]) is None
        assert TileHalo.build([None], context=EntropyContext({})) is None

    def test_axes_mask_and_digest(self):
        plane = np.arange(6.0).reshape(2, 3)
        halo = TileHalo.build([None, plane, None])
        assert halo.axes_mask == 0b010
        assert halo.plane(1) is not None and halo.plane(0) is None
        other = TileHalo.build([None, plane + 1, None])
        assert halo.digest() != other.digest()
        assert halo.digest() == TileHalo.build([None, plane, None]).digest()

    def test_context_changes_digest(self):
        plane = np.arange(6.0).reshape(2, 3)
        context = EntropyContext.from_streams([np.array([1, 2, 3])])
        with_ctx = TileHalo.build([plane, None], context=context)
        without = TileHalo.build([plane, None])
        assert with_ctx.digest() != without.digest()


class TestBlockCodecHalo:
    @pytest.mark.parametrize("shape,bs", [((33, 30), 16), ((20, 24, 18), 8)])
    def test_round_trip_and_bound(self, shape, bs):
        field = correlated_field(shape, seed=1)
        planes = neighbour_planes(field)
        codec = BlockCodec(1e-3, block_size=bs)
        encoding = codec.encode(field, halo_planes=planes)
        decoded = codec.decode(
            encoding.modes,
            encoding.symbols,
            encoding.outliers,
            encoding.coeff_codes,
            encoding.original_shape,
            halo_planes=planes,
        )
        assert np.array_equal(decoded, encoding.reconstruction)
        assert np.abs(decoded - field).max() <= 1e-3 * (1 + 1e-9)

    def test_halo_off_unchanged(self):
        field = correlated_field((32, 32), seed=2)
        codec = BlockCodec(1e-3)
        plain = codec.encode(field)
        again = codec.encode(field, halo_planes=None)
        assert np.array_equal(plain.symbols, again.symbols)
        assert np.array_equal(plain.modes, again.modes)

    def test_bad_plane_shape_rejected(self):
        field = correlated_field((32, 32), seed=3)
        codec = BlockCodec(1e-3)
        with pytest.raises(ValueError, match="halo plane"):
            codec.encode(field, halo_planes=[np.zeros(7), None])


class TestContainerHalo:
    @pytest.mark.parametrize("name", COMPRESSORS)
    @pytest.mark.parametrize("shape", [(48, 40), (24, 24, 24)])
    def test_round_trip_bound_and_context_chain(self, name, shape):
        field = correlated_field(shape, seed=4)
        compressor = make_compressor(name, 1e-3)
        reference = compressor.compress(field + 0.05, collect_context=True)
        halo = TileHalo.build(
            neighbour_planes(field), context=reference.entropy_context
        )
        compressed = compressor.compress(field, halo=halo, collect_context=True)
        values, context = compressor.decompress_with_context(compressed, halo=halo)
        assert np.abs(values - field).max() <= 1e-3 * (1 + 1e-9)
        assert np.array_equal(values, compressed.reconstruction)
        # The decode-side context must equal the encode-side one — that is
        # what lets halos chain through a pure decode pass.
        assert context.digest() == compressed.entropy_context.digest()

    @pytest.mark.parametrize("name", COMPRESSORS)
    def test_rough_field_round_trip(self, name):
        rng = np.random.default_rng(5)
        field = rng.normal(size=(20, 20, 20))
        planes = [rng.normal(size=(20, 20)) for _ in range(3)]
        reference = make_compressor(name, 1e-4).compress(
            rng.normal(size=(20, 20, 20)), collect_context=True
        )
        halo = TileHalo.build(planes, context=reference.entropy_context)
        compressor = make_compressor(name, 1e-4)
        compressed = compressor.compress(field, halo=halo)
        values = compressor.decompress(compressed, halo=halo)
        assert np.abs(values - field).max() <= 1e-4 * (1 + 1e-9)

    @pytest.mark.parametrize("name", COMPRESSORS)
    def test_halo_off_bytes_unchanged_by_halo_machinery(self, name):
        field = correlated_field((40, 40), seed=6)
        compressor = make_compressor(name, 1e-3)
        plain = compressor.compress(field)
        again = make_compressor(name, 1e-3).compress(field, halo=None)
        assert plain.data == again.data

    @pytest.mark.parametrize("name", COMPRESSORS)
    def test_halo_container_requires_halo_to_decode(self, name):
        field = correlated_field((24, 24, 24), seed=7)
        compressor = make_compressor(name, 1e-3)
        reference = compressor.compress(field + 0.05, collect_context=True)
        halo = TileHalo.build(
            neighbour_planes(field), context=reference.entropy_context
        )
        compressed = compressor.compress(field, halo=halo)
        if not compressed.extras.get("halo_coded"):
            pytest.skip("halo candidate never engaged on this field")
        with pytest.raises(Exception, match="halo"):
            compressor.decompress(compressed)

    def test_sz_halo_decode_needs_matching_planes(self):
        field = correlated_field((24, 24, 24), seed=8)
        compressor = make_compressor("sz", 1e-3)
        halo = TileHalo.build(neighbour_planes(field))
        compressed = compressor.compress(field, halo=halo)
        wrong = TileHalo.build([neighbour_planes(field)[0], None, None])
        with pytest.raises(Exception, match="plane"):
            compressor.decompress(compressed, halo=wrong)
