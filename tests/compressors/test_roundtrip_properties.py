"""Property-based round-trip tests for every registered compressor.

The one invariant every error-bounded compressor must satisfy:
``max |field - decompress(compress(field))| <= error_bound`` — across
dtypes, shapes (non-square, single-row, constant, tiny), error bounds, and
data roughness.  Each case exercises the full container path (compress to
bytes, decompress from bytes alone), not the reconstruction by-product.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.registry import available_compressors, make_compressor

TOL = 1 + 1e-9

BOUNDS = (1e-5, 1e-3, 1e-1)

SHAPES = [
    (1, 7),
    (7, 1),
    (2, 2),
    (5, 5),
    (16, 16),
    (17, 31),
    (33, 12),
    (64, 64),
]


def _fields(shape, seed):
    """A bundle of qualitatively different fields of one shape."""

    rng = np.random.default_rng(seed)
    rows, cols = shape
    smooth = np.cumsum(np.cumsum(rng.normal(size=shape), axis=0), axis=1) / 50.0
    fields = {
        "rough": rng.normal(size=shape),
        "smooth": smooth,
        "constant": np.full(shape, 3.25),
        "zeros": np.zeros(shape),
        "ramp": np.outer(np.linspace(-1, 1, rows), np.linspace(0, 2, cols))
        if min(shape) > 1
        else np.linspace(-1, 1, rows * cols).reshape(shape),
        "large_scale": rng.normal(size=shape) * 1e6,
    }
    return fields


@pytest.mark.parametrize("name", available_compressors())
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("bound", BOUNDS)
def test_roundtrip_error_bound(name, shape, bound):
    seed = zlib.crc32(repr((name, shape, bound)).encode())
    for label, field in _fields(shape, seed=seed).items():
        compressor = make_compressor(name, bound)
        compressed = compressor.compress(field)
        decompressed = compressor.decompress(compressed)
        assert decompressed.shape == field.shape, (name, label)
        max_err = np.abs(decompressed - field).max()
        assert max_err <= bound * TOL, (
            f"{name} on {label}{shape} @ {bound}: max error {max_err:.3e}"
        )


@pytest.mark.parametrize("name", available_compressors())
@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int32])
def test_roundtrip_dtypes(name, dtype):
    rng = np.random.default_rng(99)
    field = (rng.normal(size=(24, 24)) * 100).astype(dtype)
    compressor = make_compressor(name, 1e-2)
    decompressed = compressor.decompress(compressor.compress(field))
    assert np.abs(decompressed - field.astype(np.float64)).max() <= 1e-2 * TOL


@pytest.mark.parametrize("name", available_compressors())
def test_reconstruction_byproduct_matches_decompress(name):
    """compress() exposes the decoder's reconstruction; they must agree."""

    rng = np.random.default_rng(7)
    field = rng.normal(size=(32, 48))
    compressor = make_compressor(name, 1e-3)
    compressed = compressor.compress(field)
    decompressed = compressor.decompress(compressed)
    np.testing.assert_allclose(decompressed, compressed.reconstruction, atol=1e-12)


@pytest.mark.parametrize("name", available_compressors())
def test_raw_fallback_on_extreme_magnitude(name):
    """Bound tiny vs data huge: every compressor must stay within bound
    (typically via its verbatim fallback), never crash or violate."""

    field = np.full((8, 8), 1e18)
    field[3, 3] = -1e18
    compressor = make_compressor(name, 1e-10)
    decompressed = compressor.decompress(compressor.compress(field))
    assert np.abs(decompressed - field).max() <= 1e-10 * TOL


@pytest.mark.parametrize("name", available_compressors())
@given(
    field=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
        elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    ),
    bound=st.sampled_from([1e-4, 1e-2, 1.0]),
)
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(name, field, bound):
    compressor = make_compressor(name, bound)
    decompressed = compressor.decompress(compressor.compress(field))
    assert decompressed.shape == field.shape
    assert np.abs(decompressed - field).max(initial=0.0) <= bound * TOL


@pytest.mark.parametrize("name", available_compressors())
def test_compression_ratio_sane_on_smooth_data(name, smooth_field):
    compressed = make_compressor(name, 1e-3).compress(smooth_field)
    assert compressed.compression_ratio > 1.0
    assert compressed.compressed_nbytes == len(compressed.data)
