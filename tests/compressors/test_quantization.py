"""Tests for repro.compressors.quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.quantization import (
    DEFAULT_CODE_RADIUS,
    dequantize_codes,
    quantize_residuals,
)


class TestQuantizeResiduals:
    def test_perfect_prediction_gives_zero_codes(self):
        values = np.random.default_rng(0).normal(size=(8, 8))
        result = quantize_residuals(values, values, 1e-3)
        np.testing.assert_array_equal(result.codes, 0)
        assert result.unpredictable_fraction == 0.0
        np.testing.assert_allclose(result.reconstruction, values, atol=1e-3)

    def test_error_bound_respected(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(16, 16))
        predictions = values + rng.normal(scale=0.1, size=(16, 16))
        for bound in (1e-4, 1e-2, 1e-1):
            result = quantize_residuals(values, predictions, bound)
            assert np.abs(result.reconstruction - values).max() <= bound * (1 + 1e-12)

    def test_large_residuals_marked_unpredictable(self):
        values = np.array([[0.0, 1e9]])
        predictions = np.zeros((1, 2))
        result = quantize_residuals(values, predictions, 1e-6, code_radius=100)
        assert result.unpredictable_mask[0, 1]
        assert not result.unpredictable_mask[0, 0]
        # Unpredictable entries reconstruct exactly.
        assert result.reconstruction[0, 1] == 1e9

    def test_codes_are_integers_with_expected_values(self):
        values = np.array([[0.25, -0.25, 0.5]])
        predictions = np.zeros((1, 3))
        result = quantize_residuals(values, predictions, 0.125)
        np.testing.assert_array_equal(result.codes, [[1, -1, 2]])

    def test_non_finite_codes_handled(self):
        values = np.array([[np.inf, 1.0]])
        predictions = np.zeros((1, 2))
        result = quantize_residuals(values, predictions, 1e-3)
        assert result.unpredictable_mask[0, 0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            quantize_residuals(np.zeros((2, 2)), np.zeros((3, 3)), 1e-3)

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            quantize_residuals(np.zeros((2, 2)), np.zeros((2, 2)), 0.0)

    @given(
        values=hnp.arrays(
            np.float64,
            (6, 7),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        bound=st.floats(min_value=1e-6, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_bound_property(self, values, bound):
        predictions = np.zeros_like(values)
        result = quantize_residuals(values, predictions, bound)
        assert np.abs(result.reconstruction - values).max(initial=0.0) <= bound * (1 + 1e-9)


class TestDequantizeCodes:
    def test_inverse_of_quantization_for_predictable_values(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(8, 8))
        predictions = rng.normal(size=(8, 8))
        bound = 1e-2
        result = quantize_residuals(values, predictions, bound)
        recon = dequantize_codes(result.codes, predictions, bound)
        predictable = ~result.unpredictable_mask
        np.testing.assert_allclose(
            recon[predictable], result.reconstruction[predictable]
        )

    def test_default_radius_matches_sz(self):
        assert DEFAULT_CODE_RADIUS == 2**15
