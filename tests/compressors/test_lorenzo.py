"""Tests for repro.compressors.lorenzo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.lorenzo import (
    block_lorenzo_reconstruct,
    block_lorenzo_residuals,
    lorenzo_predict_feedback,
)
from repro.utils.blocking import block_view


class TestBlockLorenzo:
    def test_roundtrip_exact(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(-1000, 1000, size=(3, 4, 8, 8))
        residuals = block_lorenzo_residuals(codes)
        np.testing.assert_array_equal(block_lorenzo_reconstruct(residuals), codes)

    def test_constant_block_residuals_are_sparse(self):
        codes = np.full((1, 1, 8, 8), 5, dtype=np.int64)
        residuals = block_lorenzo_residuals(codes)
        # Only the corner carries the value; first row/col carry zero deltas.
        assert residuals[0, 0, 0, 0] == 5
        assert np.count_nonzero(residuals) == 1

    def test_linear_ramp_residuals_vanish_in_interior(self):
        ii, jj = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        codes = (3 * ii + 2 * jj).astype(np.int64)[None, None]
        residuals = block_lorenzo_residuals(codes)
        # A plane is reproduced exactly by the first-order Lorenzo predictor.
        assert np.count_nonzero(residuals[0, 0, 1:, 1:]) == 0

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            block_lorenzo_residuals(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            block_lorenzo_reconstruct(np.zeros((4, 4)))

    def test_smooth_field_produces_smaller_residuals_than_rough(
        self, smooth_field, rough_field
    ):
        step = 2e-3
        smooth_codes = block_view(np.rint(smooth_field / step).astype(np.int64), 16)
        rough_codes = block_view(np.rint(rough_field / step).astype(np.int64), 16)
        smooth_abs = np.abs(block_lorenzo_residuals(smooth_codes)).mean()
        rough_abs = np.abs(block_lorenzo_residuals(rough_codes)).mean()
        assert smooth_abs < rough_abs

    @given(
        codes=hnp.arrays(
            np.int64, (2, 2, 4, 4), elements=st.integers(min_value=-(2**30), max_value=2**30)
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, codes):
        np.testing.assert_array_equal(
            block_lorenzo_reconstruct(block_lorenzo_residuals(codes)), codes
        )


class TestFeedbackLorenzo:
    def test_error_bound_holds(self, smooth_field):
        field = smooth_field[:24, :24]
        for bound in (1e-4, 1e-2):
            _, _, recon = lorenzo_predict_feedback(field, bound)
            assert np.abs(recon - field).max() <= bound * (1 + 1e-12)

    def test_unpredictable_values_exact(self):
        field = np.zeros((4, 4))
        field[2, 2] = 1e12
        codes, unpredictable, recon = lorenzo_predict_feedback(field, 1e-6, code_radius=10)
        assert unpredictable[2, 2]
        assert recon[2, 2] == 1e12

    def test_smooth_data_mostly_predictable(self, smooth_field):
        field = smooth_field[:32, :32]
        codes, unpredictable, _ = lorenzo_predict_feedback(field, 1e-3)
        assert unpredictable.mean() < 0.05

    def test_agrees_with_block_formulation_on_code_statistics(self, smooth_field):
        # Both formulations should find smooth data highly predictable: the
        # overwhelming majority of codes near zero.
        field = smooth_field[:32, :32]
        bound = 1e-3
        codes_feedback, _, _ = lorenzo_predict_feedback(field, bound)
        q = np.rint(field / (2 * bound)).astype(np.int64)
        codes_block = block_lorenzo_residuals(block_view(q, 16))
        frac_small_feedback = float(np.mean(np.abs(codes_feedback) <= 16))
        frac_small_block = float(np.mean(np.abs(codes_block) <= 16))
        assert frac_small_feedback > 0.9
        assert frac_small_block > 0.9
        assert abs(frac_small_feedback - frac_small_block) < 0.1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lorenzo_predict_feedback(np.ones(5), 1e-3)
        with pytest.raises(ValueError):
            lorenzo_predict_feedback(np.ones((4, 4)), -1.0)
