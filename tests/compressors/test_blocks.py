"""Tests for the shared block-codec engine (repro.compressors.blocks).

Includes equivalence regression tests that pin the vectorized engine
against straightforward scalar reference implementations (per-element
Python loops), plus literal golden arrays for a small deterministic input,
so future refactors of the hot paths are provably behavior-preserving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.blocks import (
    DEFAULT_CODE_RADIUS,
    MODE_LORENZO,
    MODE_REGRESSION,
    BlockCodec,
    fit_block_planes,
    linear_quantize,
    lorenzo_reconstruct,
    lorenzo_residuals,
    merge_field,
    merge_unpredictable,
    partition_field,
    plane_predictions,
    quantize_to_grid,
    select_block_modes,
    split_unpredictable,
)


# ----------------------------------------------------------------------
# scalar reference implementations (deliberately naive loops)
# ----------------------------------------------------------------------
def scalar_lorenzo_residuals(code_blocks: np.ndarray) -> np.ndarray:
    nbi, nbj, bs, _ = code_blocks.shape
    out = np.zeros_like(code_blocks)
    for a in range(nbi):
        for b in range(nbj):
            for i in range(bs):
                for j in range(bs):
                    up = code_blocks[a, b, i - 1, j] if i > 0 else 0
                    left = code_blocks[a, b, i, j - 1] if j > 0 else 0
                    diag = code_blocks[a, b, i - 1, j - 1] if i > 0 and j > 0 else 0
                    out[a, b, i, j] = code_blocks[a, b, i, j] - up - left + diag
    return out


def scalar_linear_quantize(values, predictions, error_bound, code_radius):
    step = 2.0 * error_bound
    codes = np.zeros(values.shape, dtype=np.int64)
    unpredictable = np.zeros(values.shape, dtype=bool)
    recon = np.zeros(values.shape, dtype=np.float64)
    for idx in np.ndindex(values.shape):
        residual = values[idx] - predictions[idx]
        code = np.rint(residual / step)
        candidate = predictions[idx] + step * code
        if (
            not np.isfinite(code)
            or abs(code) > code_radius
            or abs(candidate - values[idx]) > error_bound
        ):
            unpredictable[idx] = True
            recon[idx] = values[idx]
        else:
            codes[idx] = int(code)
            recon[idx] = candidate
    return codes, unpredictable, recon


class TestPartitionMerge:
    def test_roundtrip_multiple(self):
        field = np.arange(64, dtype=np.float64).reshape(8, 8)
        blocks_, shape = partition_field(field, 4)
        assert blocks_.shape == (2, 2, 4, 4)
        np.testing.assert_array_equal(merge_field(blocks_, shape), field)

    def test_roundtrip_non_multiple(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(10, 13))
        blocks_, shape = partition_field(field, 4)
        assert blocks_.shape == (3, 4, 4, 4)
        assert shape == (10, 13)
        np.testing.assert_array_equal(merge_field(blocks_, shape), field)

    def test_padding_replicates_edges(self):
        field = np.ones((3, 3))
        blocks_, _ = partition_field(field, 4)
        np.testing.assert_array_equal(blocks_[0, 0], np.ones((4, 4)))


class TestLorenzoEquivalence:
    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(-500, 500, size=(3, 2, 6, 6))
        np.testing.assert_array_equal(
            lorenzo_residuals(codes), scalar_lorenzo_residuals(codes)
        )

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(-(2**40), 2**40, size=(2, 3, 8, 8))
        np.testing.assert_array_equal(
            lorenzo_reconstruct(lorenzo_residuals(codes)), codes
        )

    def test_golden_residuals(self):
        codes = np.array([[[[3, 5], [7, 11]]]], dtype=np.int64)
        expected = np.array([[[[3, 2], [4, 2]]]], dtype=np.int64)
        np.testing.assert_array_equal(lorenzo_residuals(codes), expected)


class TestQuantizeToGrid:
    def test_roundtrip_within_half_step(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(16, 16))
        step = 2e-3
        codes = quantize_to_grid(values, step)
        assert codes is not None
        assert np.abs(codes * step - values).max() <= step / 2 * (1 + 1e-12)

    def test_overflow_returns_none(self):
        assert quantize_to_grid(np.array([[1e30]]), 1e-9) is None

    def test_non_finite_returns_none(self):
        assert quantize_to_grid(np.array([[np.inf, 1.0]]), 1e-3) is None
        assert quantize_to_grid(np.array([[np.nan]]), 1e-3) is None

    def test_golden_codes(self):
        values = np.array([[0.25, -0.25, 0.5, 0.124]])
        codes = quantize_to_grid(values, 0.25)
        np.testing.assert_array_equal(codes, [[1, -1, 2, 0]])


class TestLinearQuantizeEquivalence:
    @pytest.mark.parametrize("bound", [1e-4, 1e-2, 0.5])
    def test_matches_scalar_reference(self, bound):
        rng = np.random.default_rng(4)
        values = rng.normal(size=(9, 7))
        predictions = values + rng.normal(scale=5 * bound, size=(9, 7))
        codes, mask, recon = linear_quantize(values, predictions, bound, code_radius=4)
        ref_codes, ref_mask, ref_recon = scalar_linear_quantize(
            values, predictions, bound, 4
        )
        np.testing.assert_array_equal(codes, ref_codes)
        np.testing.assert_array_equal(mask, ref_mask)
        np.testing.assert_array_equal(recon, ref_recon)


class TestModeSelection:
    def test_single_candidate_takes_its_mode(self):
        residuals = np.zeros((2, 2, 4, 4), dtype=np.int64)
        modes, out = select_block_modes({"lorenzo": residuals})
        assert (modes == MODE_LORENZO).all()
        np.testing.assert_array_equal(out, residuals)
        modes, _ = select_block_modes({"regression": residuals})
        assert (modes == MODE_REGRESSION).all()

    def test_cheaper_candidate_wins(self):
        cheap = np.zeros((1, 2, 4, 4), dtype=np.int64)
        costly = np.full((1, 2, 4, 4), 1000, dtype=np.int64)
        # Regression residuals tiny, lorenzo residuals huge -> regression
        # wins despite its coefficient overhead.
        modes, out = select_block_modes({"lorenzo": costly, "regression": cheap})
        assert (modes == MODE_REGRESSION).all()
        np.testing.assert_array_equal(out, cheap)
        # And the reverse: tiny lorenzo beats tiny regression because of
        # the flat overhead charged to regression blocks.
        modes, _ = select_block_modes({"lorenzo": cheap, "regression": cheap})
        assert (modes == MODE_LORENZO).all()


class TestUnpredictableChannel:
    def test_split_merge_roundtrip(self):
        rng = np.random.default_rng(5)
        residuals = rng.integers(-50, 50, size=(4, 36))
        residuals[1, 3] = 1000
        residuals[2, 0] = -999
        symbols, outliers = split_unpredictable(residuals, 100)
        assert (symbols >= 0).all()
        np.testing.assert_array_equal(outliers, [1000, -999])
        merged = merge_unpredictable(symbols, outliers, 100)
        np.testing.assert_array_equal(merged, residuals)

    def test_outliers_keep_scan_order(self):
        residuals = np.array([[100, -200, 5, 300]])
        symbols, outliers = split_unpredictable(residuals, 10)
        np.testing.assert_array_equal(outliers, [100, -200, 300])
        np.testing.assert_array_equal(symbols[0], [0, 0, 16, 0])


class TestBlockCodec:
    def test_roundtrip_respects_bound(self, smooth_field):
        codec = BlockCodec(1e-3, block_size=16)
        enc = codec.encode(smooth_field)
        assert enc is not None
        decoded = codec.decode(
            enc.modes, enc.symbols, enc.outliers, enc.coeff_codes, enc.original_shape
        )
        assert np.abs(decoded - smooth_field).max() <= 1e-3 * (1 + 1e-12)
        np.testing.assert_allclose(decoded, enc.reconstruction)

    def test_overflow_returns_none(self):
        codec = BlockCodec(1e-12, block_size=4)
        assert codec.encode(np.full((4, 4), 1e30)) is None

    def test_single_predictor_variants(self, smooth_field):
        for predictors in (("lorenzo",), ("regression",)):
            codec = BlockCodec(1e-3, block_size=16, predictors=predictors)
            enc = codec.encode(smooth_field)
            decoded = codec.decode(
                enc.modes, enc.symbols, enc.outliers, enc.coeff_codes, enc.original_shape
            )
            assert np.abs(decoded - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_matches_grid_quantization_exactly(self):
        # The codec's reconstruction is exactly the field pre-quantized
        # onto the 2*eb grid (the engine's core invariant).
        rng = np.random.default_rng(6)
        field = rng.normal(size=(20, 25))
        bound = 5e-3
        codec = BlockCodec(bound, block_size=8)
        enc = codec.encode(field)
        q = np.rint(field / (2 * bound))
        np.testing.assert_allclose(enc.reconstruction, q * 2 * bound)

    def test_golden_small_field(self):
        # Literal pin of the full engine output for a tiny deterministic
        # input: a 2x2-blocked constant-slope field with one outlier.
        field = np.array(
            [
                [0.0, 0.1, 0.2, 0.3],
                [0.1, 0.2, 0.3, 0.4],
                [0.2, 0.3, 0.4, 50.0],
                [0.3, 0.4, 0.5, 0.6],
            ]
        )
        codec = BlockCodec(0.05, block_size=2, predictors=("lorenzo",), code_radius=100)
        enc = codec.encode(field)
        assert enc.nbi == enc.nbj == 2
        assert (enc.modes == MODE_LORENZO).all()
        q = np.rint(field / 0.1).astype(np.int64)
        np.testing.assert_array_equal(
            enc.reconstruction, q * 0.1
        )
        # Lorenzo residuals of the pre-quantized codes, one row per block
        # (raveled scan order): the smooth blocks reduce to their corner
        # code plus first-row/column deltas, the block containing 50.0
        # carries the two out-of-radius residuals 496 and -495.
        expected_residuals = np.array(
            [
                [0, 1, 1, 0],
                [2, 1, 1, 0],
                [2, 1, 1, 0],
                [4, 496, 1, -495],
            ]
        )
        got = merge_unpredictable(enc.symbols, enc.outliers, 100).reshape(4, 4)
        np.testing.assert_array_equal(got, expected_residuals)
        np.testing.assert_array_equal(enc.outliers, [496, -495])

    def test_decode_missing_coefficients_raises(self):
        codec = BlockCodec(1e-3, block_size=4)
        modes = np.full((1, 1), MODE_REGRESSION, dtype=np.int64)
        symbols = np.full((1, 16), DEFAULT_CODE_RADIUS + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            codec.decode(modes, symbols, np.empty(0, np.int64), None, (4, 4))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BlockCodec(1e-3, block_size=1)
        with pytest.raises(ValueError):
            BlockCodec(1e-3, predictors=())
        with pytest.raises(ValueError):
            BlockCodec(1e-3, predictors=("nope",))
        with pytest.raises(ValueError):
            BlockCodec(1e-3, code_radius=0)


class TestRegressionPredictorViaEngine:
    def test_plane_fit_recovers_exact_plane(self):
        ii, jj = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        block = (1.5 + 2.0 * ii - 0.5 * jj)[None, None]
        coeffs = fit_block_planes(block)
        np.testing.assert_allclose(coeffs[0, 0], [1.5, 2.0, -0.5], atol=1e-10)
        preds = plane_predictions(coeffs, 8)
        np.testing.assert_allclose(preds, block, atol=1e-10)
