"""Tests for repro.compressors.sz."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.base import CompressorError
from repro.compressors.sz import SZCompressor


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor(error_bound=0.0)
        with pytest.raises(ValueError):
            SZCompressor(block_size=1)
        with pytest.raises(ValueError):
            SZCompressor(predictors=())
        with pytest.raises(ValueError):
            SZCompressor(predictors=("unknown",))
        with pytest.raises(ValueError):
            SZCompressor(code_radius=0)
        with pytest.raises(ValueError):
            SZCompressor(backend="lzma")


class TestRoundTrip:
    @pytest.mark.parametrize("bound", [1e-5, 1e-3, 1e-1])
    def test_error_bound_and_decompression_consistency(self, smooth_field, bound):
        compressor = SZCompressor(bound)
        compressed = compressor.compress(smooth_field)
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= bound * (1 + 1e-9)
        np.testing.assert_array_equal(decompressed, compressed.reconstruction)

    def test_non_multiple_shapes(self):
        field = np.random.default_rng(0).normal(size=(37, 53))
        compressor = SZCompressor(1e-3)
        compressed = compressor.compress(field)
        decompressed = compressor.decompress(compressed)
        assert decompressed.shape == (37, 53)
        assert np.abs(decompressed - field).max() <= 1e-3 * (1 + 1e-9)

    def test_decompression_without_original_options(self, smooth_field):
        # A default-constructed compressor must be able to decode a blob
        # produced with non-default options (self-describing container).
        producer = SZCompressor(1e-3, block_size=8, predictors=("lorenzo",), code_radius=64)
        blob = producer.compress(smooth_field)
        consumer = SZCompressor(1.0)
        decompressed = consumer.decompress(blob)
        assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_constant_field(self):
        field = np.full((40, 40), 3.25)
        compressor = SZCompressor(1e-4)
        compressed = compressor.compress(field)
        assert compressed.compression_ratio > 50
        np.testing.assert_allclose(compressor.decompress(compressed), field, atol=1e-4)

    def test_miranda_slice(self, miranda_slice):
        compressor = SZCompressor(1e-3)
        compressed = compressor.compress(miranda_slice)
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - miranda_slice).max() <= 1e-3 * (1 + 1e-9)


class TestCompressionBehaviour:
    def test_cr_increases_with_error_bound(self, smooth_field):
        crs = [SZCompressor(b).compression_ratio(smooth_field) for b in (1e-5, 1e-3, 1e-1)]
        assert crs[0] < crs[1] < crs[2]

    def test_smoother_data_compresses_better(self, smooth_field, rough_field):
        bound = 1e-3
        assert SZCompressor(bound).compression_ratio(smooth_field) > SZCompressor(
            bound
        ).compression_ratio(rough_field)

    def test_beats_white_noise_on_correlated_data(self, smooth_field, white_noise_field):
        bound = 1e-3
        assert SZCompressor(bound).compression_ratio(smooth_field) > SZCompressor(
            bound
        ).compression_ratio(white_noise_field)

    def test_extras_reported(self, smooth_field):
        compressed = SZCompressor(1e-3).compress(smooth_field)
        assert 0.0 <= compressed.extras["unpredictable_fraction"] <= 1.0
        assert 0.0 <= compressed.extras["regression_block_fraction"] <= 1.0
        assert compressed.extras["n_blocks"] == 16  # 64x64 with 16x16 blocks

    def test_single_predictor_modes(self, smooth_field):
        for predictors in (("lorenzo",), ("regression",)):
            compressor = SZCompressor(1e-3, predictors=predictors)
            compressed = compressor.compress(smooth_field)
            decompressed = compressor.decompress(compressed)
            assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_hybrid_at_least_as_good_as_worst_single_predictor(self, multi_range_field):
        bound = 1e-3
        hybrid = SZCompressor(bound).compression_ratio(multi_range_field)
        lorenzo = SZCompressor(bound, predictors=("lorenzo",)).compression_ratio(
            multi_range_field
        )
        regression = SZCompressor(bound, predictors=("regression",)).compression_ratio(
            multi_range_field
        )
        assert hybrid >= min(lorenzo, regression) * 0.95

    def test_zstd_backend_roundtrip(self, smooth_field):
        field = smooth_field[:32, :32]
        compressor = SZCompressor(1e-3, backend="zstd")
        compressed = compressor.compress(field)
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - field).max() <= 1e-3 * (1 + 1e-9)

    def test_raw_backend_roundtrip_and_larger_size(self, smooth_field):
        field = smooth_field[:32, :32]
        raw = SZCompressor(1e-3, backend="raw").compress(field)
        huffman = SZCompressor(1e-3, backend="huffman").compress(field)
        assert raw.compressed_nbytes > huffman.compressed_nbytes
        decompressed = SZCompressor(1e-3, backend="raw").decompress(raw)
        assert np.abs(decompressed - field).max() <= 1e-3 * (1 + 1e-9)

    def test_tiny_error_bound_falls_back_to_raw_storage(self):
        field = np.random.default_rng(1).normal(size=(20, 20)) * 1e10
        compressed = SZCompressor(1e-12).compress(field)
        assert compressed.extras.get("raw_fallback") == 1.0
        decompressed = SZCompressor(1e-12).decompress(compressed)
        np.testing.assert_array_equal(decompressed, field)

    def test_wrong_container_rejected(self):
        compressor = SZCompressor(1e-3)
        compressed = compressor.compress(np.random.default_rng(0).normal(size=(20, 20)))
        corrupted = type(compressed)(
            data=b"XXXX" + compressed.data[4:],
            original_shape=compressed.original_shape,
            original_dtype=compressed.original_dtype,
            compressor="sz",
            error_bound=compressed.error_bound,
        )
        with pytest.raises(CompressorError):
            compressor.decompress(corrupted)

    def test_float32_input_respects_bound_and_ratio_definition(self):
        field32 = np.random.default_rng(2).normal(size=(64, 64)).astype(np.float32)
        compressed = SZCompressor(1e-3).compress(field32)
        assert compressed.original_nbytes == 64 * 64 * 4
        decompressed = SZCompressor(1e-3).decompress(compressed)
        assert np.abs(decompressed - field32).max() <= 1e-3 * (1 + 1e-6)
