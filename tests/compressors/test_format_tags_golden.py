"""Golden pins for the halo-era zfp container tags (ZFR2 / ZFR3 / ZFV2).

``volume_golden.npz`` pins the ``ZFV1`` container and
``nd_refactor_golden.npz`` the SZ containers, but until this file the 2D
zfp container (``ZFR2``) and the halo-coded variants (``ZFR3`` /
``ZFV2``) had no pinned byte stream — the exact gap the ``format-version``
lint rule exists to catch.  The fixture is a deterministic build: tile A
is compressed standalone and donates its entropy context, tile B is
compressed against that context, which is what flips the container tag to
its halo variant.

Regenerate the fixture ONLY alongside a deliberate container change (and
then bump the tag, per the policy in tests/store/test_format.py)::

    PYTHONPATH=src python tests/compressors/test_format_tags_golden.py --regenerate
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.compressors.base import CompressedField
from repro.compressors.halo import TileHalo
from repro.compressors.zfp import ZFPCompressor

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "format_tags_golden.npz"

BOUND = 1e-3


def _fields():
    rng = np.random.default_rng(20260808)
    plane_a = np.cumsum(rng.normal(size=(16, 16)), axis=1) / 4.0
    plane_b = np.cumsum(rng.normal(size=(16, 16)), axis=0) / 4.0
    volume_b = np.cumsum(rng.normal(size=(8, 8, 8)), axis=2) / 4.0
    return plane_a, plane_b, volume_b


def _build_payloads():
    """``{name: container bytes}`` for the three unpinned tags."""

    plane_a, plane_b, volume_b = _fields()
    codec = ZFPCompressor(BOUND)
    donor = codec.compress(plane_a, collect_context=True)
    halo_2d = TileHalo.build(planes=[None, None], context=donor.entropy_context)

    volume_donor = codec.compress(
        np.broadcast_to(plane_a[:8, :8], (8, 8, 8)).copy(), collect_context=True
    )
    halo_3d = TileHalo.build(
        planes=[None, None, None], context=volume_donor.entropy_context
    )

    return {
        "zfr2_bytes": codec.compress(plane_a).data,
        "zfr3_bytes": codec.compress(plane_b, halo=halo_2d).data,
        "zfv2_bytes": codec.compress(volume_b, halo=halo_3d).data,
    }


def _as_field(blob: bytes, shape) -> CompressedField:
    return CompressedField(
        data=blob,
        original_shape=tuple(shape),
        original_dtype=np.dtype(np.float64),
        compressor="zfp",
        error_bound=BOUND,
    )


class TestFormatTagsGolden:
    def test_fixture_pins_every_unpinned_tag(self):
        with np.load(GOLDEN_PATH) as golden:
            assert bytes(golden["zfr2_bytes"])[:4] == b"ZFR2"
            assert bytes(golden["zfr3_bytes"])[:4] == b"ZFR3"
            assert bytes(golden["zfv2_bytes"])[:4] == b"ZFV2"

    def test_build_is_deterministic_and_matches_golden(self):
        payloads = _build_payloads()
        with np.load(GOLDEN_PATH) as golden:
            for name, blob in payloads.items():
                assert bytes(golden[name]) == blob, (
                    f"{name} container bytes drifted from the pinned golden; "
                    "a layout change needs a tag bump plus a regenerated "
                    "fixture"
                )

    def test_pinned_halo_payloads_still_decode(self):
        """Old halo-coded payloads must decode against a rebuilt context."""

        plane_a, plane_b, volume_b = _fields()
        codec = ZFPCompressor(BOUND)
        donor = codec.compress(plane_a, collect_context=True)
        halo_2d = TileHalo.build(planes=[None, None], context=donor.entropy_context)
        volume_donor = codec.compress(
            np.broadcast_to(plane_a[:8, :8], (8, 8, 8)).copy(), collect_context=True
        )
        halo_3d = TileHalo.build(
            planes=[None, None, None], context=volume_donor.entropy_context
        )
        with np.load(GOLDEN_PATH) as golden:
            plain = codec.decompress(_as_field(bytes(golden["zfr2_bytes"]), (16, 16)))
            halo_plane = codec.decompress(
                _as_field(bytes(golden["zfr3_bytes"]), (16, 16)), halo=halo_2d
            )
            halo_volume = codec.decompress(
                _as_field(bytes(golden["zfv2_bytes"]), (8, 8, 8)), halo=halo_3d
            )
        assert np.abs(plain - plane_a).max() <= BOUND * (1 + 1e-9)
        assert np.abs(halo_plane - plane_b).max() <= BOUND * (1 + 1e-9)
        assert np.abs(halo_volume - volume_b).max() <= BOUND * (1 + 1e-9)


if __name__ == "__main__":  # pragma: no cover — golden regeneration
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python test_format_tags_golden.py --regenerate")
    payloads = _build_payloads()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        GOLDEN_PATH,
        **{name: np.frombuffer(blob, dtype=np.uint8) for name, blob in payloads.items()},
    )
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")
