"""Tests for repro.compressors.mgard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.base import CompressorError
from repro.compressors.mgard import MGARDCompressor


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MGARDCompressor(error_bound=-1e-3)
        with pytest.raises(ValueError):
            MGARDCompressor(levels=0)
        with pytest.raises(ValueError):
            MGARDCompressor(budget_ratio=0.0)
        with pytest.raises(ValueError):
            MGARDCompressor(backend="snappy")


class TestRoundTrip:
    @pytest.mark.parametrize("bound", [1e-5, 1e-3, 1e-1])
    def test_error_bound_and_decompression_consistency(self, smooth_field, bound):
        compressor = MGARDCompressor(bound)
        compressed = compressor.compress(smooth_field)
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= bound * (1 + 1e-9)
        np.testing.assert_allclose(decompressed, compressed.reconstruction, atol=1e-12)

    def test_odd_shapes(self):
        field = np.random.default_rng(0).normal(size=(41, 29))
        compressor = MGARDCompressor(1e-3)
        decompressed = compressor.decompress(compressor.compress(field))
        assert decompressed.shape == (41, 29)
        assert np.abs(decompressed - field).max() <= 1e-3 * (1 + 1e-9)

    def test_tiny_fields_fall_back_to_raw(self):
        field = np.random.default_rng(1).normal(size=(5, 5))
        compressed = MGARDCompressor(1e-3).compress(field)
        assert compressed.extras.get("raw_fallback") == 1.0
        np.testing.assert_array_equal(MGARDCompressor(1e-3).decompress(compressed), field)

    def test_explicit_level_count(self, smooth_field):
        compressor = MGARDCompressor(1e-3, levels=2)
        compressed = compressor.compress(smooth_field)
        assert compressed.extras["n_levels"] == 2
        decompressed = compressor.decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_miranda_slice(self, miranda_slice):
        compressor = MGARDCompressor(1e-3)
        decompressed = compressor.decompress(compressor.compress(miranda_slice))
        assert np.abs(decompressed - miranda_slice).max() <= 1e-3 * (1 + 1e-9)

    def test_non_finite_rejected(self):
        field = np.ones((16, 16))
        field[3, 3] = np.inf
        with pytest.raises(CompressorError):
            MGARDCompressor(1e-3).compress(field)


class TestCompressionBehaviour:
    def test_cr_increases_with_error_bound(self, smooth_field):
        crs = [MGARDCompressor(b).compression_ratio(smooth_field) for b in (1e-5, 1e-3, 1e-1)]
        assert crs[0] < crs[1] < crs[2]

    def test_smoother_data_compresses_better(self, smooth_field, rough_field):
        bound = 1e-3
        assert MGARDCompressor(bound).compression_ratio(smooth_field) > MGARDCompressor(
            bound
        ).compression_ratio(rough_field)

    def test_budget_ratio_changes_stream(self, smooth_field):
        a = MGARDCompressor(1e-3, budget_ratio=0.3).compress(smooth_field)
        b = MGARDCompressor(1e-3, budget_ratio=0.9).compress(smooth_field)
        assert a.data != b.data
        for compressed, ratio in ((a, 0.3), (b, 0.9)):
            decompressed = MGARDCompressor(1e-3, budget_ratio=ratio).decompress(compressed)
            assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_decoder_reads_budget_ratio_from_container(self, smooth_field):
        # Decoding with a differently-configured instance must still work
        # because the ratio is stored in the header.
        compressed = MGARDCompressor(1e-3, budget_ratio=0.3).compress(smooth_field)
        decompressed = MGARDCompressor(1.0, budget_ratio=0.9).decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_wrong_container_rejected(self, smooth_field):
        compressor = MGARDCompressor(1e-3)
        compressed = compressor.compress(smooth_field)
        corrupted = type(compressed)(
            data=b"ZZZZ" + compressed.data[4:],
            original_shape=compressed.original_shape,
            original_dtype=compressed.original_dtype,
            compressor="mgard",
            error_bound=compressed.error_bound,
        )
        with pytest.raises(CompressorError):
            compressor.decompress(corrupted)
