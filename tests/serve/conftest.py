"""Fixtures for the serve-layer tests.

One module-scoped :class:`ThreadedServer` per test module (startup costs
a thread + socket, teardown joins the loop); datasets are store
directories dropped into the served root — the server opens them per
request, so tests can create fixtures directly on disk.  Tests that
mutate or corrupt datasets use their own names to stay independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.miranda import generate_miranda_like_volume
from repro.serve.server import ServerConfig, ThreadedServer
from repro.store import ArrayStore

BOUND = 1e-3
TOL = BOUND * (1.0 + 1e-9)


def build_store(path, array, *, chunk=32, codec="sz", **kwargs) -> ArrayStore:
    store = ArrayStore.create(
        path, chunk_shape=chunk, codec=codec, error_bound=BOUND, **kwargs
    )
    store.write(np.asarray(array), cache=False)
    return store


@pytest.fixture(scope="module")
def field_2d() -> np.ndarray:
    return generate_gaussian_field((96, 80), correlation_range=12.0, seed=5)


@pytest.fixture(scope="module")
def volume_3d() -> np.ndarray:
    return generate_miranda_like_volume((32, 32, 32), seed=6)


@pytest.fixture(scope="module")
def serve_root(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-root")


@pytest.fixture(scope="module")
def server(serve_root):
    config = ServerConfig(root=str(serve_root), max_concurrency=8)
    with ThreadedServer(config) as threaded:
        yield threaded
