"""Concurrency properties: snapshot isolation, coalescing, gate hygiene.

The central property (ISSUE 6): a region read concurrent with an
in-flight append always decodes either the pre- or the post-append state
bit-for-bit, never a torn mix.  It is checked at two levels — directly
against the store directory (cross-process shape: every reader does a
fresh atomic :meth:`StoreSnapshot.open`) and over HTTP through the
server.  Reference states come from replaying the identical write
sequence into a replica directory: chunk compression is deterministic,
so state *k* of the replica is byte-identical to state *k* of the live
store, and every observed ``(generation, values)`` pair must match its
replica exactly.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.cache import HotChunkCache
from repro.serve.client import StoreClient
from repro.store import ArrayStore, StoreSnapshot
from repro.store.format import StoreCorruptionError

from tests.serve.conftest import build_store


def _append_states(root, name, base, steps):
    """Replay write+appends into ``root/name``; return {generation: values}."""

    store = build_store(root / name, base, chunk=16)
    states = {store.generation: store.read()}
    for step in steps:
        store.append(step, cache=False)
        states[store.generation] = store.read()
    return states


class TestSnapshotIsolation:
    def test_reads_during_appends_never_torn(self, tmp_path, field_2d):
        base = np.ascontiguousarray(field_2d[:40, :32])
        steps = [
            np.ascontiguousarray(field_2d[40 + 9 * i : 49 + 9 * i, :32])
            for i in range(4)
        ]
        references = _append_states(tmp_path, "replica", base, steps)

        live = build_store(tmp_path / "live", base, chunk=16)
        path = str(tmp_path / "live")
        stop = threading.Event()
        failures = []
        observations = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    snapshot = StoreSnapshot.open(path)
                    values, _ = snapshot.read()
                except StoreCorruptionError:
                    # Permitted transiently (writer replacing files faster
                    # than the retry budget), never as a steady state.
                    continue
                observations.append(snapshot.generation)
                expected = references.get(snapshot.generation)
                if expected is None:
                    failures.append(f"unknown generation {snapshot.generation}")
                elif not np.array_equal(values, expected):
                    failures.append(
                        f"torn read at generation {snapshot.generation}"
                    )

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for step in steps:
                live.append(step, cache=False)
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures[:5]
        assert len(observations) >= 8, "readers barely ran; test proves nothing"
        # The final state must be observable once the dust settles.
        final, _ = StoreSnapshot.open(path).read()
        np.testing.assert_array_equal(final, references[live.generation])

    def test_open_snapshot_survives_later_append(self, tmp_path, field_2d):
        """An already-open snapshot keeps decoding its own state even
        after the store has grown on disk (appends never move live
        payload bytes)."""

        store = build_store(tmp_path / "s", field_2d[:40], chunk=16)
        snapshot = StoreSnapshot.open(str(tmp_path / "s"))
        before, _ = snapshot.read()
        store.append(np.ascontiguousarray(field_2d[40:57]), cache=False)
        again, _ = snapshot.read()
        np.testing.assert_array_equal(again, before)
        assert ArrayStore.open(str(tmp_path / "s")).shape[0] == 57

    def test_server_reads_during_appends_never_torn(
        self, serve_root, server, field_2d
    ):
        base = np.ascontiguousarray(field_2d[:40, :32])
        steps = [
            np.ascontiguousarray(field_2d[40 + 9 * i : 49 + 9 * i, :32])
            for i in range(3)
        ]
        references = _append_states(serve_root, "grow-replica", base, steps)
        by_shape = {tuple(v.shape): v for v in references.values()}

        build_store(serve_root / "grow-live", base, chunk=16)
        failures = []
        stop = threading.Event()

        def reader() -> None:
            with StoreClient(server.url) as client:
                while not stop.is_set():
                    values = client.get("grow-live")
                    expected = by_shape.get(tuple(values.shape))
                    if expected is None or not np.array_equal(values, expected):
                        failures.append(f"torn response of shape {values.shape}")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            with StoreClient(server.url) as writer:
                for step in steps:
                    writer.append("grow-live", step)
                    time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures[:5]

    def test_hot_cache_read_report(self, tmp_path, field_2d):
        """Second read through a shared cache decodes nothing."""

        build_store(tmp_path / "s", field_2d, chunk=32)
        snapshot = StoreSnapshot.open(str(tmp_path / "s"))
        cache = HotChunkCache(max_nbytes=64 * 1024 * 1024)
        _, cold = snapshot.read(chunk_cache=cache)
        assert cold.chunks_decoded == snapshot.n_chunks
        assert cold.cache_hits == 0
        values, warm = snapshot.read(chunk_cache=cache)
        assert warm.chunks_decoded == 0
        assert warm.cache_hits == snapshot.n_chunks
        np.testing.assert_array_equal(values, snapshot.read()[0])


class TestCoalescingAndGate:
    def test_concurrent_identical_reads_coalesce_and_share_cache(
        self, serve_root, server, volume_3d
    ):
        build_store(serve_root / "coal", volume_3d, chunk=8)
        server.server.cache.clear()
        coalesced_before = server.server.coalesced_reads
        misses_before = server.server.cache.counters()["misses"]

        n_clients = 8
        barrier = threading.Barrier(n_clients)
        bodies = []
        errors = []

        def fetch() -> None:
            try:
                with StoreClient(server.url) as client:
                    barrier.wait(timeout=30)
                    bodies.append(client.get("coal").tobytes())
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        assert len(set(bodies)) == 1, "concurrent identical reads diverged"
        # At least some of the 8 in-flight duplicates must have coalesced
        # onto the first decode task.
        assert server.server.coalesced_reads > coalesced_before
        # And the decode work happened at most once per chunk: the cache
        # saw no more new misses than there are chunks in the dataset.
        misses = server.server.cache.counters()["misses"] - misses_before
        n_chunks = ArrayStore.open(serve_root / "coal").n_chunks
        assert misses <= n_chunks

    def test_gate_returns_to_idle_and_counts_peak(self, serve_root, server, field_2d):
        build_store(serve_root / "gate", field_2d)
        n_clients = 6
        errors = []

        def fetch() -> None:
            try:
                with StoreClient(server.url) as client:
                    client.get("gate", (slice(0, 64), slice(0, 64)))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        deadline = time.monotonic() + 5
        while server.server.gate_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.server.gate_active == 0
        assert server.server.gate_peak >= 1
