"""StoreClient failure paths: error statuses, dead endpoints, truncated
bodies, and the retry-once-on-stale-keep-alive rule."""

from __future__ import annotations

import http.client
import socket
import threading

import pytest

from repro.serve.client import ServeError, StoreClient


def _scripted_server(responses):
    """Serve canned bytes: one accepted connection per response, then close.

    Returns ``(port, thread)``; the thread exits after the script runs dry.
    """

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    port = sock.getsockname()[1]

    def run() -> None:
        try:
            for payload in responses:
                conn, _ = sock.accept()
                conn.recv(65536)  # drain the request; content is irrelevant
                conn.sendall(payload)
                conn.close()
        finally:
            sock.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread


def _response(status_line: str, body: bytes, *, declared_length=None) -> bytes:
    length = len(body) if declared_length is None else declared_length
    return (
        f"HTTP/1.1 {status_line}\r\n"
        f"Content-Length: {length}\r\n"
        "Content-Type: application/json\r\n"
        "\r\n"
    ).encode("ascii") + body


class TestErrorStatuses:
    def test_json_error_body_is_parsed_into_the_message(self, server):
        with StoreClient(server.url) as client:
            with pytest.raises(ServeError) as err:
                client.info("missing-dataset")
        assert err.value.status == 404
        assert err.value.message == "no such dataset: missing-dataset"
        assert "HTTP 404" in str(err.value)

    def test_non_json_error_body_is_kept_verbatim(self):
        port, thread = _scripted_server(
            [_response("503 Service Unavailable", b"boom town")]
        )
        with StoreClient(f"http://127.0.0.1:{port}") as client:
            with pytest.raises(ServeError) as err:
                client.stats()
        thread.join(timeout=5)
        assert err.value.status == 503
        assert err.value.message == "boom town"

    def test_error_without_error_key_falls_back_to_raw_json(self):
        port, thread = _scripted_server(
            [_response("500 Internal Server Error", b'{"detail":"x"}')]
        )
        with StoreClient(f"http://127.0.0.1:{port}") as client:
            with pytest.raises(ServeError) as err:
                client.stats()
        thread.join(timeout=5)
        assert err.value.message == '{"detail":"x"}'


class TestDeadEndpoints:
    def test_connection_refused_raises_oserror(self):
        # Bind-then-close guarantees the port exists but nothing listens.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with StoreClient(f"http://127.0.0.1:{port}", timeout=2.0) as client:
            with pytest.raises(OSError):
                client.healthz()

    def test_truncated_body_propagates_incomplete_read(self):
        port, thread = _scripted_server(
            [_response("200 OK", b"short", declared_length=64)]
        )
        with StoreClient(f"http://127.0.0.1:{port}") as client:
            with pytest.raises(http.client.IncompleteRead):
                client.stats()
        thread.join(timeout=5)


class TestStaleKeepAlive:
    def test_second_request_retries_on_a_fresh_connection(self):
        # Each scripted connection serves exactly one response then
        # closes — so the client's second request hits a dead keep-alive
        # socket and must transparently retry on a new connection.
        ok = _response("200 OK", b"{}")
        port, thread = _scripted_server([ok, ok])
        with StoreClient(f"http://127.0.0.1:{port}") as client:
            assert client.stats() == {}
            assert client.stats() == {}
        thread.join(timeout=5)

    def test_persistent_failure_is_raised_after_one_retry(self):
        # One good response, then the listener goes away entirely: the
        # retry also fails and the underlying error surfaces.
        port, thread = _scripted_server([_response("200 OK", b"{}")])
        with StoreClient(f"http://127.0.0.1:{port}", timeout=2.0) as client:
            assert client.stats() == {}
            thread.join(timeout=5)  # listener closed after the script
            with pytest.raises(OSError):
                client.stats()
