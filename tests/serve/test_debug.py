"""Flight-recorder endpoints: /debug, /debug/vars, /debug/requests,
/debug/profile — plus the SlowRequestLog retention policy they expose."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.serve.client import ServeError, StoreClient
from repro.serve.server import ServerConfig, SlowRequestLog, ThreadedServer
from repro.store import ArrayStore

from .conftest import build_store


@pytest.fixture(scope="module")
def debug_root(tmp_path_factory):
    return tmp_path_factory.mktemp("debug-root")


@pytest.fixture(scope="module")
def debug_server(debug_root):
    config = ServerConfig(
        root=str(debug_root),
        max_concurrency=8,
        history_interval=0.2,
        history_capacity=64,
        slow_requests_per_route=2,
        profile_max_seconds=5.0,
    )
    with ThreadedServer(config) as threaded:
        yield threaded


def _raw_get(client: StoreClient, path: str, query=None):
    status, payload = client._request("GET", path, query=query)
    return status, payload


class TestSlowRequestLogUnit:
    def test_retains_only_the_slowest_n_per_route(self):
        log = SlowRequestLog(per_route=2)
        for ms in (5, 40, 10, 90, 1):
            log.record("read", ms / 1000.0, {"duration_ms": ms})
        retained = log.snapshot()["read"]
        assert [entry["duration_ms"] for entry in retained] == [90, 40]

    def test_routes_do_not_compete(self):
        log = SlowRequestLog(per_route=1)
        log.record("read", 0.5, {"id": "slow-read"})
        log.record("put", 0.001, {"id": "fast-put"})
        snapshot = log.snapshot()
        assert snapshot["read"] == [{"id": "slow-read"}]
        assert snapshot["put"] == [{"id": "fast-put"}]

    def test_qualifies_matches_retention(self):
        log = SlowRequestLog(per_route=2)
        assert log.qualifies("read", 0.001)  # heap not full yet
        log.record("read", 0.010, {})
        log.record("read", 0.020, {})
        assert not log.qualifies("read", 0.005)  # faster than retained min
        assert log.qualifies("read", 0.015)  # would evict the 10ms entry

    def test_per_route_below_one_rejected(self):
        with pytest.raises(ValueError):
            SlowRequestLog(per_route=0)


class TestDashboard:
    def test_debug_serves_self_contained_html(self, debug_server):
        with StoreClient(debug_server.url) as client:
            status, payload = _raw_get(client, "/debug")
            content_type = client.last_headers.get("content-type", "")
        assert status == 200
        assert content_type.startswith("text/html")
        page = payload.decode("utf-8")
        assert "<html" in page and "</html>" in page
        # Self-contained: config token substituted, no external assets.
        assert "__CONFIG__" not in page
        assert "<script src" not in page
        assert "<link" not in page
        assert "@import" not in page
        # The page drives itself off the other debug endpoints.
        assert "/debug/vars" in page
        assert "/debug/requests" in page

    def test_debug_endpoints_can_be_disabled(self, tmp_path):
        config = ServerConfig(root=str(tmp_path), debug=False)
        with ThreadedServer(config) as threaded:
            with StoreClient(threaded.url) as client:
                for path in (
                    "/debug",
                    "/debug/vars",
                    "/debug/requests",
                    "/debug/profile",
                ):
                    status, _ = _raw_get(client, path)
                    assert status == 404
                # The rest of the server is unaffected.
                assert client.healthz()


class TestVars:
    def test_series_shape_and_rates(self, debug_server, debug_root, field_2d):
        build_store(debug_root / "vars-ds", field_2d)
        with StoreClient(debug_server.url) as client:
            for _ in range(6):
                client.get("vars-ds")
            # Let the 0.2s history ticker take a post-traffic sample.
            time.sleep(0.45)
            series = client.debug_vars()
        assert series["interval"] == pytest.approx(0.2)
        assert series["capacity"] == 64
        points = series["points"]
        assert points
        latest = points[-1]
        assert {"age", "ts", "rates", "gauges", "quantiles"} <= set(latest)
        # Some point in the series saw the burst (later idle ticks are 0).
        peak = max(
            point["rates"].get("repro_serve_requests_total", 0.0)
            for point in points
        )
        assert peak > 0

    def test_window_filters_points(self, debug_server):
        with StoreClient(debug_server.url) as client:
            client.healthz()
            time.sleep(0.45)
            wide = client.debug_vars(window=3600)
            narrow = client.debug_vars(window=0.25)
        assert len(narrow["points"]) <= len(wide["points"])
        assert narrow["window"] == 0.25
        assert all(p["age"] <= 0.25 for p in narrow["points"])

    @pytest.mark.parametrize("window", ("abc", "-1", "0"))
    def test_bad_window_is_a_400(self, debug_server, window):
        with StoreClient(debug_server.url) as client:
            with pytest.raises(ServeError) as err:
                client.debug_vars(window=window)
        assert err.value.status == 400

    def test_payload_is_strict_json(self, debug_server):
        # Idle histograms produce NaN quantiles; the endpoint must null
        # them out rather than emit bare NaN tokens.
        with StoreClient(debug_server.url) as client:
            status, payload = _raw_get(client, "/debug/vars")
        assert status == 200
        assert b"NaN" not in payload
        json.loads(payload.decode("utf-8"))  # parses strictly


class TestSlowRequests:
    def test_capture_retains_only_slowest_n_under_faults(
        self, debug_server, debug_root
    ):
        # Unique data on purpose: the decode cache is keyed on the chunk
        # checksum recorded in the index, so a pristine decode of the
        # same payload via another dataset would mask the corruption.
        store_path = debug_root / "flaky"
        build_store(store_path, np.random.default_rng(77).random((96, 80)))
        snapshot = ArrayStore.open(store_path).snapshot()
        record = snapshot.index[snapshot.n_chunks - 1]
        with open(str(store_path) + "/chunks.bin", "r+b") as handle:
            handle.seek(record.offset + record.length // 2)
            byte = handle.read(1)
            handle.seek(record.offset + record.length // 2)
            handle.write(bytes([byte[0] ^ 0xFF]))

        with StoreClient(debug_server.url) as client:
            for _ in range(7):  # decode failures -> 500s on route "read"
                with pytest.raises(ServeError):
                    client.get("flaky")
            capture = client.debug_requests()

        assert capture["per_route"] == 2
        read_entries = capture["routes"]["read"]
        # Tail-based: more requests than the cap, only slowest-N kept.
        assert len(read_entries) == 2
        durations = [entry["duration_ms"] for entry in read_entries]
        assert durations == sorted(durations, reverse=True)
        assert any(entry["status"] == 500 for entry in read_entries)

    def test_entries_carry_span_trees(self, debug_server, debug_root, field_2d):
        build_store(debug_root / "traced", field_2d)
        with StoreClient(debug_server.url) as client:
            client.get("traced")
            capture = client.debug_requests()
        entries = [
            entry
            for entries in capture["routes"].values()
            for entry in entries
        ]
        assert entries
        with_spans = [entry for entry in entries if entry["spans"]]
        assert with_spans
        roots = {span["name"] for entry in with_spans for span in entry["spans"]}
        assert "serve.request" in roots
        # Spans are a waterfall: offsets relative to request arrival.
        for entry in with_spans:
            for span in entry["spans"]:
                assert span["start_ms"] >= 0
                assert span["duration_ms"] >= 0


class TestProfile:
    def test_profile_returns_speedscope_with_codec_frames(self, debug_server):
        compressor = make_compressor("sz", error_bound=1e-3)
        payload = np.random.default_rng(11).random((96, 96))
        stop = threading.Event()

        def churn() -> None:
            while not stop.is_set():
                compressor.compress(payload)

        worker = threading.Thread(target=churn, name="codec-churn", daemon=True)
        worker.start()
        try:
            with StoreClient(debug_server.url) as client:
                status, body = _raw_get(
                    client,
                    "/debug/profile",
                    query={"seconds": "0.6", "hz": "250"},
                )
        finally:
            stop.set()
            worker.join()
        assert status == 200
        document = json.loads(body.decode("utf-8"))
        assert document["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert document["repro"]["samples"] > 0
        lanes = {profile["name"] for profile in document["profiles"]}
        assert "codec-churn" in lanes
        # The busy codec thread's samples resolve to repro source frames.
        frames = document["shared"]["frames"]
        assert any("repro" in frame["file"] for frame in frames)

    @pytest.mark.parametrize(
        "query",
        (
            {"seconds": "0"},
            {"seconds": "nope"},
            {"seconds": "600"},  # above profile_max_seconds
            {"hz": "0"},
            {"hz": "9999"},
        ),
    )
    def test_bad_parameters_are_a_400(self, debug_server, query):
        with StoreClient(debug_server.url) as client:
            status, _ = _raw_get(client, "/debug/profile", query=query)
        assert status == 400

    def test_concurrent_profiles_get_a_429(self, debug_server):
        results = {}

        def run(key: str) -> None:
            with StoreClient(debug_server.url) as client:
                status, _ = _raw_get(
                    client, "/debug/profile", query={"seconds": "0.8"}
                )
                results[key] = status

        first = threading.Thread(target=run, args=("first",))
        first.start()
        time.sleep(0.2)  # let the first request start sampling
        run("second")
        first.join()
        assert results["first"] == 200
        assert results["second"] == 429


class TestLatencyBuckets:
    def test_default_buckets_exposed_in_stats(self, debug_server):
        with StoreClient(debug_server.url) as client:
            stats = client.stats()
        buckets = stats["latency_buckets"]
        assert buckets == sorted(buckets)
        assert len(buckets) >= 5

    def test_custom_buckets_flow_through(self, tmp_path):
        config = ServerConfig(
            root=str(tmp_path), latency_buckets=(0.5, 0.001, 2.0)
        )
        with ThreadedServer(config) as threaded:
            with StoreClient(threaded.url) as client:
                client.healthz()
                stats = client.stats()
                metrics = client.metrics_text()
        assert stats["latency_buckets"] == [0.001, 0.5, 2.0]  # sorted
        assert 'le="0.5"' in metrics
        assert 'le="2.0"' in metrics or 'le="2"' in metrics
