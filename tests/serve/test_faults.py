"""Fault injection: corruption, bad requests, resource limits, disconnects.

The server must degrade per-request, never per-process: a corrupt chunk
yields a clean 500 for regions that need it while the rest of the
dataset (and every other dataset) stays readable; malformed input maps
to 4xx; a client vanishing mid-response releases its concurrency slot.
"""

from __future__ import annotations

import socket
import threading
import time
from urllib.parse import urlsplit

import numpy as np
import pytest

from repro.serve.client import ServeError, StoreClient
from repro.serve.server import ServerConfig, ThreadedServer
from repro.store import ArrayStore

from tests.serve.conftest import build_store


def _corrupt_chunk(path, linear: int) -> None:
    """Flip one byte inside the payload of chunk ``linear``."""

    snapshot = ArrayStore.open(path).snapshot()
    record = snapshot.index[linear]
    with open(str(path) + "/chunks.bin", "r+b") as handle:
        handle.seek(record.offset + record.length // 2)
        byte = handle.read(1)
        handle.seek(record.offset + record.length // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestCorruption:
    def test_corrupt_chunk_is_a_clean_500_not_an_outage(
        self, serve_root, server, field_2d
    ):
        # Fresh data everywhere: the content-hash cache is keyed on
        # payload sha1, so a pristine decode of the *same bytes* —
        # even via another dataset — would mask the corruption.
        build_store(serve_root / "victim", field_2d)
        build_store(serve_root / "bystander", np.asarray(field_2d)[::-1].copy())
        snapshot = ArrayStore.open(serve_root / "victim").snapshot()
        last = snapshot.n_chunks - 1
        assert last > 0
        bad, good = snapshot.index[last], snapshot.index[0]
        assert (
            bad.offset >= good.offset + good.length
            or good.offset >= bad.offset + bad.length
        ), "test premise: the corrupted payload must not back chunk 0"
        _corrupt_chunk(serve_root / "victim", last)

        with StoreClient(server.url) as client:
            with pytest.raises(ServeError) as err:
                client.get("victim")
            assert err.value.status == 500
            # The failure is repeatable, not sticky in either direction.
            with pytest.raises(ServeError):
                client.get("victim")

            # Regions that avoid the bad payload still decode...
            intact = client.get("victim", (slice(0, 32), slice(0, 32)))
            np.testing.assert_allclose(
                intact, field_2d[:32, :32], atol=1.1e-3
            )
            # ...and unrelated datasets are untouched.
            assert client.get("bystander").shape == field_2d.shape

    def test_corrupt_chunk_endpoint_500(self, serve_root, server, field_2d):
        build_store(serve_root / "victim2", field_2d)
        last = ArrayStore.open(serve_root / "victim2").n_chunks - 1
        _corrupt_chunk(serve_root / "victim2", last)
        with StoreClient(server.url) as client:
            status, _ = client._request("GET", f"/ds/victim2/chunk/{last}")
            assert status == 500


class TestBadRequests:
    def test_malformed_region_400(self, serve_root, server, field_2d):
        build_store(serve_root / "br", field_2d)
        with StoreClient(server.url) as client:
            status, body = client._request("GET", "/ds/br?region=banana")
            assert status == 400
            status, _ = client._request("GET", "/ds/br?region=0:10:2")
            assert status == 400  # strided reads are not supported

    def test_out_of_bounds_index_400(self, serve_root, server, field_2d):
        build_store(serve_root / "br2", field_2d)
        with StoreClient(server.url) as client:
            with pytest.raises(ServeError) as err:
                client.get("br2", (field_2d.shape[0] + 5,))
            assert err.value.status == 400

    def test_unknown_mode_400(self, serve_root, server, field_2d):
        build_store(serve_root / "br3", field_2d)
        with StoreClient(server.url) as client:
            status, _ = client._request("GET", "/ds/br3?mode=telepathy")
            assert status == 400

    def test_put_with_garbage_body_400(self, server):
        with StoreClient(server.url) as client:
            status, _ = client._request(
                "PUT", "/ds/garbage", body=b"not npy at all"
            )
            assert status == 400


class TestResourceLimits:
    @pytest.fixture(scope="class")
    def small_server(self, tmp_path_factory, field_2d):
        root = tmp_path_factory.mktemp("limits-root")
        build_store(root / "big", field_2d)  # 96*80 f64 ≈ 61 KiB decoded
        config = ServerConfig(
            root=str(root),
            max_body_nbytes=1024,
            max_response_nbytes=1024,
        )
        with ThreadedServer(config) as threaded:
            yield threaded

    def test_oversized_put_413(self, small_server):
        with StoreClient(small_server.url) as client:
            with pytest.raises(ServeError) as err:
                client.put("fat", np.zeros((32, 32)))
            assert err.value.status == 413

    def test_oversized_read_413(self, small_server):
        with StoreClient(small_server.url) as client:
            with pytest.raises(ServeError) as err:
                client.get("big")
            assert err.value.status == 413
            # A small enough region still goes through.
            values = client.get("big", (slice(0, 8), slice(0, 8)))
            assert values.shape == (8, 8)


class TestDisconnects:
    def test_disconnect_mid_response_releases_gate(
        self, serve_root, server, volume_3d
    ):
        build_store(serve_root / "walkaway", volume_3d, chunk=8)
        parts = urlsplit(server.url)
        for _ in range(3):
            sock = socket.create_connection(
                (parts.hostname, parts.port), timeout=10
            )
            sock.sendall(
                b"GET /ds/walkaway HTTP/1.1\r\n"
                b"Host: x\r\nConnection: close\r\n\r\n"
            )
            sock.recv(64)  # first bytes of the head, then vanish
            sock.close()

        deadline = time.monotonic() + 10
        while server.server.gate_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.server.gate_active == 0, "disconnect leaked a gate slot"

        # The server still serves the next well-behaved client.
        with StoreClient(server.url) as client:
            values = client.get("walkaway", (slice(0, 8),))
            assert values.shape == (8,) + volume_3d.shape[1:]

    def test_concurrent_disconnects_dont_starve_live_clients(
        self, serve_root, server, volume_3d
    ):
        build_store(serve_root / "mixed", volume_3d, chunk=8)
        parts = urlsplit(server.url)

        def rude() -> None:
            sock = socket.create_connection(
                (parts.hostname, parts.port), timeout=10
            )
            sock.sendall(b"GET /ds/mixed HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.close()

        errors = []

        def polite() -> None:
            try:
                with StoreClient(server.url) as client:
                    client.get("mixed", (slice(0, 16),))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=rude) for _ in range(4)]
        threads += [threading.Thread(target=polite) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        deadline = time.monotonic() + 10
        while server.server.gate_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.server.gate_active == 0


class TestStatusClassAccounting:
    """Regression for the vanishing error paths: before PR 8 the 500
    branches in ``_gated_dispatch`` bypassed the stats counters (and the
    corruption branch double-counted once the registry landed), so error
    rates were invisible to ``/stats``.  Every response — success, 4xx,
    5xx — must now count exactly once in its status class."""

    @pytest.fixture(scope="class")
    def counting_server(self, tmp_path_factory, field_2d):
        root = tmp_path_factory.mktemp("counting-root")
        build_store(root / "healthy", field_2d)
        build_store(root / "rotten", np.asarray(field_2d)[::-1].copy())
        last = ArrayStore.open(root / "rotten").n_chunks - 1
        _corrupt_chunk(root / "rotten", last)
        config = ServerConfig(root=str(root), max_concurrency=4)
        with ThreadedServer(config) as threaded:
            yield threaded

    def test_every_status_class_counts_exactly_once(self, counting_server):
        with StoreClient(counting_server.url) as client:
            assert client.healthz()                                   # 200
            client.get("healthy", (slice(0, 8), slice(0, 8)))         # 200
            status, _ = client._request("GET", "/ds/absent")          # 404
            assert status == 404
            status, _ = client._request("GET", "/ds/healthy?region=banana")
            assert status == 400
            with pytest.raises(ServeError) as err:                    # 500
                client.get("rotten")
            assert err.value.status == 500
            # The stats call snapshots before its own 200 is counted.
            stats = client.stats()

        metrics = stats["metrics"]
        by_class = {
            cls: metrics.get(
                f'repro_serve_responses_total{{class="{cls}"}}', 0
            )
            for cls in ("2xx", "4xx", "5xx")
        }
        assert by_class["4xx"] == 2
        assert by_class["5xx"] == 1
        assert by_class["2xx"] == 2
        # No request vanishes and none double-counts: classes partition
        # the requests that have finished responding (the in-flight
        # /stats request itself has not counted yet).
        assert sum(by_class.values()) == stats["requests_total"] - 1
