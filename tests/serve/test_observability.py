"""Serve observability: the /metrics exposition contract, the JSON-lines
access log, request-ID propagation, and the stats metrics snapshot."""

from __future__ import annotations

import json
import re

import pytest

from repro.serve.client import StoreClient
from repro.serve.server import ServerConfig, ThreadedServer

from tests.serve.conftest import build_store

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(inf)?$|^# (HELP|TYPE) .*$"
)


@pytest.fixture(scope="module")
def obs_root(tmp_path_factory):
    return tmp_path_factory.mktemp("obs-root")


@pytest.fixture(scope="module")
def access_log_path(obs_root):
    return obs_root / "access.jsonl"


@pytest.fixture(scope="module")
def obs_server(obs_root, access_log_path, field_2d):
    build_store(obs_root / "obs", field_2d)
    config = ServerConfig(
        root=str(obs_root),
        max_concurrency=4,
        access_log=str(access_log_path),
    )
    with ThreadedServer(config) as threaded:
        yield threaded


class TestMetricsEndpoint:
    def test_exposition_contract(self, obs_server, field_2d):
        with StoreClient(obs_server.url) as client:
            client.get("obs", (slice(0, 16), slice(0, 16)))
            status, payload = client._request("GET", "/metrics")
            content_type = client.last_headers.get("content-type", "")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type

        text = payload.decode("utf-8")
        typed = set()
        for line in text.splitlines():
            if not line:
                continue
            assert _SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
        # Every sample belongs to a # TYPE-declared family (histogram
        # samples use the _bucket/_sum/_count suffixes of their family).
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            family = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in typed or family in typed, line

    def test_expected_families_present(self, obs_server):
        with StoreClient(obs_server.url) as client:
            client.healthz()
            _, payload = client._request("GET", "/metrics")
        text = payload.decode("utf-8")
        assert "# TYPE repro_serve_responses_total counter" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_responses_total{class="2xx"}' in text
        assert 'repro_cache_hits_total{cache="hot-chunk"}' in text
        assert "repro_serve_gate_max_concurrency 4" in text
        assert 'repro_serve_request_seconds_bucket{route="read",le="+Inf"}' in text

    def test_metrics_can_be_disabled(self, obs_root, field_2d):
        config = ServerConfig(root=str(obs_root), metrics=False)
        with ThreadedServer(config) as threaded:
            with StoreClient(threaded.url) as client:
                status, _ = client._request("GET", "/metrics")
                assert status == 404
                assert client.healthz()


class TestRequestIds:
    def test_inbound_id_is_honored(self, obs_server):
        with StoreClient(obs_server.url) as client:
            client._request(
                "GET", "/healthz", headers={"X-Request-Id": "client-specified-1"}
            )
            assert client.last_headers.get("x-request-id") == "client-specified-1"

    def test_generated_ids_are_unique_and_formatted(self, obs_server):
        seen = set()
        with StoreClient(obs_server.url) as client:
            for _ in range(3):
                client._request("GET", "/healthz")
                request_id = client.last_headers.get("x-request-id")
                assert re.fullmatch(r"req-[0-9a-f]{8}", request_id)
                seen.add(request_id)
        assert len(seen) == 3

    def test_error_responses_carry_the_id(self, obs_server):
        with StoreClient(obs_server.url) as client:
            status, _ = client._request(
                "GET", "/ds/nope", headers={"X-Request-Id": "err-1"}
            )
            assert status == 404
            assert client.last_headers.get("x-request-id") == "err-1"


class TestAccessLog:
    def test_jsonl_schema(self, obs_server, access_log_path):
        with StoreClient(obs_server.url) as client:
            client._request(
                "GET", "/healthz", headers={"X-Request-Id": "schema-probe"}
            )
        lines = access_log_path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        probe = [r for r in records if r["request_id"] == "schema-probe"]
        assert len(probe) == 1
        record = probe[0]
        assert set(record) == {
            "ts",
            "request_id",
            "method",
            "path",
            "status",
            "duration_ms",
            "bytes",
        }
        assert record["method"] == "GET"
        assert record["path"] == "/healthz"
        assert record["status"] == 200
        assert isinstance(record["duration_ms"], float)
        assert record["duration_ms"] >= 0
        assert isinstance(record["bytes"], int)
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z", record["ts"]
        )

    def test_errors_are_logged_too(self, obs_server, access_log_path):
        with StoreClient(obs_server.url) as client:
            client._request(
                "GET", "/ds/missing-ds", headers={"X-Request-Id": "logged-404"}
            )
        records = [
            json.loads(line) for line in access_log_path.read_text().splitlines()
        ]
        match = [r for r in records if r["request_id"] == "logged-404"]
        assert len(match) == 1
        assert match[0]["status"] == 404


class TestStatsMetrics:
    def test_stats_exposes_canonical_names_and_legacy_aliases(self, obs_server):
        with StoreClient(obs_server.url) as client:
            client.get("obs", (slice(0, 8), slice(0, 8)))
            stats = client.stats()
        # Legacy keys stay (aliases for one release)...
        assert {"requests_total", "gate", "hot_chunk_cache"} <= set(stats)
        # ...and the canonical registry snapshot arrives alongside.
        metrics = stats["metrics"]
        assert metrics["repro_serve_requests_total"] >= 1
        assert 'repro_serve_responses_total{class="2xx"}' in metrics
        assert 'repro_cache_hits_total{cache="hot-chunk"}' in metrics
        assert (
            metrics["repro_serve_gate_max_concurrency"]
            == stats["gate"]["max_concurrency"]
        )
