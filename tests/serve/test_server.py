"""Routing, round-trip and caching behaviour of the array server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.client import ServeError, StoreClient
from repro.store import ArrayStore

from tests.serve.conftest import TOL, build_store


@pytest.fixture(scope="module")
def client(server):
    with StoreClient(server.url) as c:
        yield c


class TestRouting:
    def test_healthz(self, client):
        assert client.healthz()

    def test_ls_lists_store_directories_only(self, serve_root, client, field_2d):
        build_store(serve_root / "ls-a", field_2d)
        (serve_root / "not-a-store").mkdir(exist_ok=True)
        names = client.ls()
        assert "ls-a" in names
        assert "not-a-store" not in names

    def test_unknown_dataset_404(self, client):
        with pytest.raises(ServeError) as err:
            client.get("nope")
        assert err.value.status == 404

    def test_unknown_route_404(self, client):
        status, _ = client._request("GET", "/frobnicate")
        assert status == 404

    def test_wrong_method_405(self, serve_root, client, field_2d):
        build_store(serve_root / "m405", field_2d)
        status, _ = client._request("POST", "/ds/m405")
        assert status == 405

    def test_invalid_dataset_name_400(self, client):
        status, _ = client._request("GET", "/ds/..")
        assert status == 400  # ".." fails the name regex before any I/O
        status, _ = client._request("GET", "/ds/a%2Fb")
        assert status == 404  # decodes to an extra path segment, no route

    def test_stats_shape(self, client):
        stats = client.stats()
        assert {"requests_total", "gate", "hot_chunk_cache"} <= set(stats)
        assert stats["gate"]["max_concurrency"] == 8

    def test_info_carries_cache_counters(self, serve_root, client, field_2d):
        build_store(serve_root / "info-ds", field_2d)
        info = client.info("info-ds")
        assert info["name"] == "info-ds"
        assert info["shape"] == list(field_2d.shape)
        assert {"hits", "misses"} <= set(info["hot_chunk_cache"])


class TestRoundTrip:
    """Acceptance: HTTP reads are bit-identical to ArrayStore.read for
    every codec, with and without halo anchors, in both decode modes."""

    REGIONS_2D = [None, (slice(10, 70), slice(5, 60)), (slice(33, 34),)]
    REGIONS_3D = [None, (slice(4, 28), slice(0, 16), slice(9, 30))]

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    @pytest.mark.parametrize("decode", ["server", "client"])
    def test_2d_matches_local_read(
        self, serve_root, client, field_2d, codec, decode
    ):
        name = f"rt2-{codec}"
        if not (serve_root / name).exists():
            build_store(serve_root / name, field_2d, codec=codec)
        store = ArrayStore.open(serve_root / name)
        for region in self.REGIONS_2D:
            want = store.read(region)
            got = client.get(name, region, decode=decode)
            np.testing.assert_array_equal(got, want)
            assert np.abs(got - field_2d[_as_index(region)]).max() <= TOL

    @pytest.mark.parametrize("codec", ["sz", "zfp", "mgard"])
    @pytest.mark.parametrize("decode", ["server", "client"])
    def test_3d_halo_matches_local_read(
        self, serve_root, client, volume_3d, codec, decode
    ):
        name = f"rt3h-{codec}"
        if not (serve_root / name).exists():
            build_store(serve_root / name, volume_3d, chunk=16, codec=codec, halo=True)
        store = ArrayStore.open(serve_root / name)
        assert store.halo
        for region in self.REGIONS_3D:
            want = store.read(region)
            got = client.get(name, region, decode=decode)
            np.testing.assert_array_equal(got, want)
            assert np.abs(got - volume_3d[_as_index(region)]).max() <= TOL

    def test_client_decode_of_halo_chunk_pulls_anchors(
        self, serve_root, client, volume_3d
    ):
        """A region inside one odd-parity chunk must ship its anchor
        neighbours too — otherwise the client could not decode at all."""

        name = "rt3h-sz"
        if not (serve_root / name).exists():
            build_store(serve_root / name, volume_3d, chunk=16, codec="sz", halo=True)
        store = ArrayStore.open(serve_root / name)
        # Chunk grid (1,0,0) is odd parity → halo-flagged in this store.
        region = (slice(18, 30), slice(2, 14), slice(2, 14))
        want = store.read(region)
        got = client.get(name, region, decode="client")
        np.testing.assert_array_equal(got, want)
        included = int(client.last_headers["x-chunks-included"])
        assert included > 1  # the halo chunk plus its anchors


class TestHotChunkCache:
    def test_repeated_read_hits_cache(self, serve_root, client, field_2d):
        build_store(serve_root / "hot", field_2d)
        client.get("hot", (slice(0, 32), slice(0, 32)))
        client.get("hot", (slice(0, 32), slice(0, 32)))
        assert int(client.last_headers["x-chunks-decoded"]) == 0
        assert int(client.last_headers["x-cache-hits"]) == 1

    def test_counters_monotonic_in_info(self, serve_root, client, field_2d):
        build_store(serve_root / "hot2", field_2d)
        before = client.info("hot2")["hot_chunk_cache"]
        client.get("hot2")
        client.get("hot2")
        after = client.info("hot2")["hot_chunk_cache"]
        assert after["hits"] > before["hits"]


class TestChunkEndpoint:
    def test_payload_and_etag_round_trip(self, serve_root, client, field_2d):
        build_store(serve_root / "etag", field_2d)
        store = ArrayStore.open(serve_root / "etag")
        payload, etag = client.chunk("etag", 0)
        snapshot = store.snapshot()
        record = snapshot.index[0]
        assert len(payload) == record.length
        assert etag == f'"{snapshot.payload_sha1(0)}"'
        cached, same_etag = client.chunk("etag", 0, etag=etag)
        assert cached is None  # 304
        assert same_etag == etag

    def test_out_of_range_chunk_404(self, serve_root, client, field_2d):
        build_store(serve_root / "etag2", field_2d)
        status, _ = client._request("GET", "/ds/etag2/chunk/9999")
        assert status == 404


class TestMutation:
    def test_put_get_round_trip(self, client, field_2d):
        summary = client.put("ingest", field_2d, codec="zfp", chunk=32)
        assert summary["shape"] == list(field_2d.shape)
        got = client.get("ingest")
        assert np.abs(got - field_2d).max() <= TOL

    def test_append_grows_and_preserves(self, client, field_2d):
        client.put("growing", field_2d[:40], chunk=32)
        before = client.get("growing")
        summary = client.append("growing", field_2d[40:64])
        assert summary["shape"][0] == 64
        after = client.get("growing")
        np.testing.assert_array_equal(after[:40], before)
        assert np.abs(after - field_2d[:64]).max() <= TOL

    def test_append_to_missing_dataset_404(self, client, field_2d):
        with pytest.raises(ServeError) as err:
            client.append("never-created", field_2d[:8])
        assert err.value.status == 404

    def test_compact_after_churn(self, client, field_2d):
        client.put("churny", field_2d[:40], chunk=32)
        client.append("churny", field_2d[40:52])
        client.append("churny", field_2d[52:64])
        before = client.get("churny")
        assert client.info("churny")["orphaned_nbytes"] > 0
        report = client.compact("churny")
        assert report["orphaned_nbytes"] == 0
        assert report["reclaimed_nbytes"] > 0
        np.testing.assert_array_equal(client.get("churny"), before)


def _as_index(region):
    return tuple(region) if region is not None else ()
