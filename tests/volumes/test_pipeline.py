"""Tests for repro.volumes.pipeline (tiled volume compression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.pipeline import ExperimentCache, run_experiment
from repro.datasets.miranda import generate_miranda_like_volume
from repro.utils.parallel import ParallelConfig
from repro.volumes.pipeline import (
    compress_volume,
    decompress_volume,
    measure_volume_field,
    shard_volume,
    slice_baseline,
    tile_offsets,
    volume_metrics,
)


@pytest.fixture(scope="module")
def volume():
    return generate_miranda_like_volume((24, 32, 28), seed=9)


class TestSharding:
    def test_tile_offsets_cover_shape(self):
        offsets = tile_offsets((10, 8, 5), (4, 4, 4))
        assert offsets[0] == (0, 0, 0)
        assert (8, 4, 4) in offsets
        assert len(offsets) == 3 * 2 * 2

    def test_shard_and_reassemble_losslessly(self, volume):
        shards = shard_volume(volume, (16, 16, 16))
        out = np.zeros_like(volume)
        for offset, tile in shards:
            region = tuple(
                slice(start, start + edge) for start, edge in zip(offset, tile.shape)
            )
            out[region] = tile
        np.testing.assert_array_equal(out, volume)

    def test_edge_tiles_are_partial(self, volume):
        shards = dict(shard_volume(volume, (16, 16, 16)))
        assert shards[(16, 16, 16)].shape == (8, 16, 12)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            shard_volume(np.zeros((4, 4)), (2, 2, 2))
        with pytest.raises(ValueError):
            compress_volume(np.zeros((4, 4)), "sz", 1e-3)

    def test_rejects_bad_tile_shape(self, volume):
        with pytest.raises(ValueError):
            shard_volume(volume, (0, 4, 4))
        with pytest.raises(ValueError):
            shard_volume(volume, (4, 4))


class TestCompressVolume:
    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_roundtrip_within_bound(self, volume, name):
        bound = 1e-3
        compressed = compress_volume(
            volume, name, bound, tile_shape=(16, 16, 16), cache=False
        )
        reconstruction = decompress_volume(compressed)
        assert reconstruction.shape == volume.shape
        assert np.abs(reconstruction - volume).max() <= bound * (1 + 1e-9)
        assert compressed.n_tiles == 8
        assert compressed.compression_ratio > 1.0

    def test_metrics_report_bound_and_sizes(self, volume):
        compressed = compress_volume(volume, "sz", 1e-3, cache=False)
        metrics = volume_metrics(volume, compressed)
        assert metrics.bound_satisfied
        assert metrics.compression_ratio == pytest.approx(
            compressed.compression_ratio
        )
        assert metrics.max_abs_error <= 1e-3 * (1 + 1e-9)
        assert compressed.original_nbytes == volume.nbytes

    def test_cache_hits_on_repeat(self, volume):
        cache = ExperimentCache(max_entries=64)
        compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache)
        assert cache.hits == 0 and cache.misses == 8
        compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache)
        assert cache.hits == 8
        # A different bound must not hit.
        compress_volume(volume, "sz", 1e-2, tile_shape=(16, 16, 16), cache=cache)
        assert cache.hits == 8 and cache.misses == 16

    def test_cache_counters_reported(self, volume):
        cache = ExperimentCache(max_entries=64)
        first = compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache)
        assert first.cache_counters == {
            "hits": 0,
            "misses": 8,
            "evictions": 0,
            "in_call_duplicates": 0,
        }
        second = compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache)
        assert second.cache_counters["hits"] == 8
        assert second.cache_counters["misses"] == 0
        disabled = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=False
        )
        assert disabled.cache_counters is None

    def test_constant_tiles_deduplicate(self):
        cache = ExperimentCache(max_entries=64)
        constant = np.zeros((16, 32, 32))
        compressed = compress_volume(
            constant, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache
        )
        # 4 identical tiles: one compression, three in-call duplicates.
        assert cache.misses == 1 and len(cache) == 1
        blobs = {tile.compressed.data for tile in compressed.tiles}
        assert len(blobs) == 1

    def test_duplicates_survive_cache_eviction(self):
        # The duplicate of tile 0 must resolve even when the tiny cache has
        # already evicted tile 0's entry by the time the call finishes.
        cache = ExperimentCache(max_entries=1)
        volume = np.random.default_rng(11).normal(size=(48, 8, 8))
        volume[32:48] = volume[0:16]  # last tile duplicates the first
        compressed = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 8, 8), cache=cache
        )
        reconstruction = decompress_volume(compressed)
        assert np.abs(reconstruction - volume).max() <= 1e-3 * (1 + 1e-9)

    def test_parallel_workers_match_serial(self, volume):
        serial = compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=False)
        parallel = compress_volume(
            volume,
            "sz",
            1e-3,
            tile_shape=(16, 16, 16),
            cache=False,
            parallel=ParallelConfig(workers=2, use_processes=False),
        )
        assert [t.compressed.data for t in serial.tiles] == [
            t.compressed.data for t in parallel.tiles
        ]

    def test_beats_slice_baseline_on_miranda(self):
        volume = generate_miranda_like_volume((64, 64, 64), seed=0)
        bound = 1e-3
        for name in ("sz", "zfp", "mgard"):
            tiled = compress_volume(volume, name, bound, cache=False)
            baseline = slice_baseline(volume, name, bound)
            assert tiled.compression_ratio > baseline, name


class TestMeasureVolumeField:
    def test_records_have_3d_statistics(self, volume):
        config = ExperimentConfig(
            compressors=("sz", "zfp"), error_bounds=(1e-3,), window=8
        )
        records = measure_volume_field(
            volume, dataset="test", field_label="vol", config=config
        )
        assert {r.compressor for r in records} == {"sz", "zfp"}
        for record in records:
            assert record.metrics.bound_satisfied
            assert np.isfinite(record.statistics.global_variogram_range)
            # The windowed local 3D variogram statistic (Fig. 7 analogue).
            assert np.isfinite(record.statistics.std_local_variogram_range)
            # The local SVD statistic has no 3D analogue.
            assert np.isnan(record.statistics.std_local_svd_truncation)

    def test_local_statistics_toggle(self, volume):
        config = ExperimentConfig(
            compressors=("sz",),
            error_bounds=(1e-3,),
            window=8,
            compute_local_variogram=False,
        )
        records = measure_volume_field(
            volume, dataset="test", field_label="vol", config=config
        )
        assert np.isnan(records[0].statistics.std_local_variogram_range)

    def test_window_larger_than_volume_stays_nan(self, volume):
        config = ExperimentConfig(
            compressors=("sz",), error_bounds=(1e-3,), window=64
        )
        records = measure_volume_field(
            volume, dataset="test", field_label="vol", config=config
        )
        assert np.isnan(records[0].statistics.std_local_variogram_range)

    def test_run_experiment_routes_volume_datasets(self):
        config = ExperimentConfig(compressors=("sz",), error_bounds=(1e-3,))
        result = run_experiment(
            "miranda-volume", config=config, seed=2, cache=False
        )
        assert len(result.records) == 1
        record = result.records[0]
        assert record.field_label == "miranda-velocityx-volume"
        assert record.compression_ratio > 1.0
        assert record.metrics.bound_satisfied


class TestHaloVolume:
    """Halo-aware tiled compression: wavefront scheduling, cross-seam
    prediction/entropy context, and the seam-gap recovery the ISSUE
    targets."""

    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_round_trip_within_bound(self, volume, name):
        compressed = compress_volume(
            volume, name, 1e-3, tile_shape=(16, 16, 16), cache=False, halo=True
        )
        assert compressed.halo
        out = decompress_volume(compressed)
        assert np.abs(out - volume).max() <= 1e-3 * (1.0 + 1e-9)

    def test_halo_off_unchanged(self, volume):
        plain = compress_volume(volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=False)
        again = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=False, halo=False
        )
        assert not plain.halo
        assert [t.compressed.data for t in plain.tiles] == [
            t.compressed.data for t in again.tiles
        ]

    def test_parallel_workers_match_serial(self, volume):
        serial = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=False, halo=True
        )
        parallel = compress_volume(
            volume,
            "sz",
            1e-3,
            tile_shape=(16, 16, 16),
            cache=False,
            halo=True,
            parallel=ParallelConfig(workers=2, use_processes=False),
        )
        assert [t.compressed.data for t in serial.tiles] == [
            t.compressed.data for t in parallel.tiles
        ]

    def test_memo_key_distinguishes_halo(self, volume):
        cache = ExperimentCache(max_entries=256)
        plain = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache
        )
        halo = compress_volume(
            volume, "sz", 1e-3, tile_shape=(16, 16, 16), cache=cache, halo=True
        )
        # A halo run right after a halo-off run must not reuse its tiles.
        assert halo.cache_counters["hits"] == 0
        assert plain.compressed_nbytes != 0

    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_seam_recovery_halo_not_worse(self, name):
        """Halo CR >= no-halo CR on a correlated field, all compressors."""

        volume = generate_miranda_like_volume((32, 32, 32), seed=2021)
        off = compress_volume(
            volume, name, 1e-3, tile_shape=(16, 16, 16), cache=False
        )
        on = compress_volume(
            volume, name, 1e-3, tile_shape=(16, 16, 16), cache=False, halo=True
        )
        assert on.compression_ratio >= off.compression_ratio

    def test_zfp_seam_gap_recovery_acceptance(self):
        """The ISSUE's acceptance bar: on the 64^3 Miranda volume at
        eb 1e-3 with 32^3 tiles, halo-on ZFP recovers at least half of
        the tiling gap to untiled ZFP."""

        from repro.compressors.registry import make_compressor

        volume = generate_miranda_like_volume((64, 64, 64), seed=2021)
        untiled = make_compressor("zfp", 1e-3).compress(volume).compression_ratio
        off = compress_volume(
            volume, "zfp", 1e-3, tile_shape=(32, 32, 32), cache=False
        )
        on = compress_volume(
            volume, "zfp", 1e-3, tile_shape=(32, 32, 32), cache=False, halo=True
        )
        assert untiled > off.compression_ratio  # the seam gap exists
        assert on.compression_ratio >= (untiled + off.compression_ratio) / 2.0
        out = decompress_volume(on)
        assert np.abs(out - volume).max() <= 1e-3 * (1.0 + 1e-9)
