"""Zero-copy pipeline equivalence: the shared-memory process-pool paths
must produce bit-identical tiles and reconstructions to the serial path
(halo on and off), leave no /dev/shm segments behind, and keep trace
spans flowing across the shm worker boundary."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.datasets.miranda import generate_miranda_like_volume
from repro.obs.trace import Tracer, install_tracer
from repro.utils.parallel import (
    ParallelConfig,
    SEGMENT_PREFIX,
    shared_memory_available,
)
from repro.volumes.pipeline import compress_volume, decompress_volume

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)

BOUND = 1e-3
PARALLEL = ParallelConfig(workers=2)


@pytest.fixture(scope="module")
def volume() -> np.ndarray:
    return generate_miranda_like_volume((24, 24, 24), seed=11)


def _no_leaks() -> bool:
    shm = pathlib.Path("/dev/shm")
    return not shm.is_dir() or not list(shm.glob(f"{SEGMENT_PREFIX}-*"))


def _tile_bytes(compressed):
    return [
        (t.offset, t.compressed.data)
        for t in sorted(compressed.tiles, key=lambda t: t.offset)
    ]


@pytest.mark.parametrize("halo", [False, True], ids=["grid", "halo"])
class TestBitIdentity:
    def test_compress_matches_serial(self, volume, halo):
        serial = compress_volume(
            volume, "sz", BOUND, tile_shape=(12, 12, 12), halo=halo, cache=False
        )
        shm = compress_volume(
            volume,
            "sz",
            BOUND,
            tile_shape=(12, 12, 12),
            halo=halo,
            parallel=PARALLEL,
            cache=False,
        )
        assert _tile_bytes(shm) == _tile_bytes(serial)
        assert _no_leaks()

    def test_decompress_matches_serial(self, volume, halo):
        compressed = compress_volume(
            volume, "sz", BOUND, tile_shape=(12, 12, 12), halo=halo, cache=False
        )
        serial = decompress_volume(compressed)
        parallel = decompress_volume(compressed, parallel=PARALLEL)
        np.testing.assert_array_equal(parallel, serial)
        assert _no_leaks()


class TestWavefrontDecode:
    def test_uneven_tiles(self, volume):
        compressed = compress_volume(
            volume[:20, :17, :24],
            "sz",
            BOUND,
            tile_shape=(8, 8, 8),
            halo=True,
            cache=False,
        )
        np.testing.assert_array_equal(
            decompress_volume(compressed, parallel=PARALLEL),
            decompress_volume(compressed),
        )

    def test_serial_config_skips_shared_path(self, volume):
        compressed = compress_volume(
            volume, "sz", BOUND, tile_shape=(12, 12, 12), cache=False
        )
        np.testing.assert_array_equal(
            decompress_volume(compressed, parallel=ParallelConfig(workers=1)),
            decompress_volume(compressed),
        )


class TestTracingAcrossShmBoundary:
    def test_compress_spans_reparent(self, volume):
        tracer = Tracer()
        with install_tracer(tracer):
            compress_volume(
                volume,
                "sz",
                BOUND,
                tile_shape=(12, 12, 12),
                halo=True,
                parallel=PARALLEL,
                cache=False,
            )
        spans = tracer.spans()
        root = [s for s in spans if s.parent_id is None]
        assert [s.name for s in root] == ["volume.compress"]
        assert root[0].args.get("zero_copy") is True
        tiles = [s for s in spans if s.name == "volume.tile"]
        assert len(tiles) == 8
        assert all(t.lane.startswith("wave") for t in tiles)

    def test_decode_spans(self, volume):
        compressed = compress_volume(
            volume, "sz", BOUND, tile_shape=(12, 12, 12), halo=True, cache=False
        )
        tracer = Tracer()
        with install_tracer(tracer):
            decompress_volume(compressed, parallel=PARALLEL)
        names = [s.name for s in tracer.spans()]
        assert "volume.decompress" in names
        assert "volume.wave" in names
        assert names.count("volume.tile.decode") == 8
