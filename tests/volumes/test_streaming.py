"""Streaming pipeline equivalence and .npy slab-source validation.

``compress_volume_stream`` / ``decompress_volume_stream`` must be
bit-identical to the one-shot pipeline for every source kind (array,
path) and schedule (serial, shared-memory pool), halo on and off — the
slab-major re-grouping of the wavefront changes nothing the encoders
see."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.miranda import generate_miranda_like_volume
from repro.utils.parallel import ParallelConfig, shared_memory_available
from repro.volumes.pipeline import compress_volume, decompress_volume
from repro.volumes.streaming import (
    compress_volume_stream,
    decompress_volume_stream,
    npy_volume_info,
    open_slab_source,
)

BOUND = 1e-3
TILE = (16, 16, 16)


@pytest.fixture(scope="module")
def volume() -> np.ndarray:
    # Deliberately not tile-aligned on any axis: 3/2.5/3.5 tiles.
    return generate_miranda_like_volume((48, 40, 56), seed=7)


def _tile_bytes(compressed):
    return [
        (t.offset, t.compressed.data)
        for t in sorted(compressed.tiles, key=lambda t: t.offset)
    ]


class TestNpyVolumeInfo:
    def test_header_roundtrip(self, tmp_path):
        path = tmp_path / "v.npy"
        array = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        np.save(path, array)
        shape, dtype, offset = npy_volume_info(path)
        assert shape == (2, 3, 4)
        assert dtype == np.float32
        with open(path, "rb") as handle:
            handle.seek(offset)
            flat = np.fromfile(handle, dtype=dtype)
        np.testing.assert_array_equal(flat.reshape(shape), array)

    def test_fortran_order_rejected(self, tmp_path):
        path = tmp_path / "f.npy"
        np.save(path, np.asfortranarray(np.zeros((3, 4, 5))))
        with pytest.raises(ValueError, match="Fortran"):
            npy_volume_info(path)

    def test_non_3d_source_rejected(self, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.zeros((8, 8)))
        with pytest.raises(ValueError, match="3D"):
            open_slab_source(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "t.npy"
        np.save(path, np.zeros((6, 4, 4)))
        data = path.read_bytes()
        path.write_bytes(data[:-64])
        source = open_slab_source(path)
        with pytest.raises(ValueError, match="truncated"):
            source.read(4, 2)


class TestSlabSources:
    def test_array_source_slabs(self, volume):
        source = open_slab_source(volume)
        assert source.shape == volume.shape
        np.testing.assert_array_equal(source.read(16, 16), volume[16:32])

    def test_path_source_slabs(self, volume, tmp_path):
        path = tmp_path / "v.npy"
        np.save(path, volume)
        source = open_slab_source(path)
        np.testing.assert_array_equal(source.read(32, 16), volume[32:48])
        # Final ragged slab.
        np.testing.assert_array_equal(source.read(40, 8), volume[40:48])


@pytest.mark.parametrize("halo", [False, True], ids=["grid", "halo"])
class TestBitIdentity:
    def test_array_source_matches_one_shot(self, volume, halo):
        one_shot = compress_volume(
            volume, "sz", BOUND, tile_shape=TILE, halo=halo, cache=False
        )
        streamed = compress_volume_stream(
            volume, "sz", BOUND, tile_shape=TILE, halo=halo, cache=False
        )
        assert _tile_bytes(streamed) == _tile_bytes(one_shot)
        assert streamed.shape == one_shot.shape
        assert streamed.halo == one_shot.halo

    def test_path_source_matches_one_shot(self, volume, tmp_path, halo):
        path = tmp_path / "v.npy"
        np.save(path, volume)
        one_shot = compress_volume(
            volume, "sz", BOUND, tile_shape=TILE, halo=halo, cache=False
        )
        streamed = compress_volume_stream(
            str(path), "sz", BOUND, tile_shape=TILE, halo=halo, cache=False
        )
        assert _tile_bytes(streamed) == _tile_bytes(one_shot)

    def test_streaming_decode_matches_one_shot(self, volume, halo):
        compressed = compress_volume(
            volume, "sz", BOUND, tile_shape=TILE, halo=halo, cache=False
        )
        full = decompress_volume(compressed)
        slabs = list(decompress_volume_stream(compressed))
        assert [row for row, _ in slabs] == list(range(0, 48, 16))
        np.testing.assert_array_equal(np.concatenate([s for _, s in slabs]), full)


@pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)
class TestParallelStreaming:
    def test_pool_matches_serial_stream(self, volume):
        serial = compress_volume_stream(
            volume, "sz", BOUND, tile_shape=TILE, halo=True, cache=False
        )
        pooled = compress_volume_stream(
            volume,
            "sz",
            BOUND,
            tile_shape=TILE,
            halo=True,
            parallel=ParallelConfig(workers=2),
            cache=False,
        )
        assert _tile_bytes(pooled) == _tile_bytes(serial)


class TestCacheSharing:
    def test_stream_and_one_shot_share_tile_cache(self, volume):
        from repro.core.pipeline import ExperimentCache

        cache = ExperimentCache(max_entries=256)
        compress_volume(
            volume, "sz", BOUND, tile_shape=TILE, halo=False, cache=cache
        )
        streamed = compress_volume_stream(
            volume, "sz", BOUND, tile_shape=TILE, halo=False, cache=cache
        )
        counters = streamed.cache_counters
        assert counters["hits"] == streamed.n_tiles
        assert counters["misses"] == 0
