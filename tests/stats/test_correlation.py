"""Tests for repro.stats.correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.correlation import acf_correlation_length, autocorrelation_1d


class TestAutocorrelation1D:
    def test_lag_zero_is_one(self):
        series = np.random.default_rng(0).normal(size=500)
        acf = autocorrelation_1d(series, max_lag=10)
        assert acf[0] == pytest.approx(1.0)

    def test_white_noise_acf_is_small_at_positive_lags(self):
        series = np.random.default_rng(1).normal(size=5000)
        acf = autocorrelation_1d(series, max_lag=20)
        assert np.all(np.abs(acf[1:]) < 0.1)

    def test_ar1_process_acf_decays_geometrically(self):
        rng = np.random.default_rng(2)
        phi = 0.8
        n = 20000
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + rng.normal()
        acf = autocorrelation_1d(x, max_lag=5)
        for lag in range(1, 6):
            assert acf[lag] == pytest.approx(phi**lag, abs=0.05)

    def test_constant_series_handled(self):
        acf = autocorrelation_1d(np.full(100, 3.0), max_lag=5)
        assert acf[0] == pytest.approx(1.0)

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_1d(np.array([1.0]))


class TestAcfCorrelationLength:
    def test_agrees_with_variogram_range_order(self):
        short = generate_gaussian_field((96, 96), 3.0, seed=0)
        long = generate_gaussian_field((96, 96), 18.0, seed=0)
        assert acf_correlation_length(short) < acf_correlation_length(long)

    def test_close_to_true_range_for_squared_exponential(self):
        # e-folding lag of exp(-(h/a)^2) is a itself.
        a = 8.0
        field = generate_gaussian_field((128, 128), a, seed=1)
        estimate = acf_correlation_length(field)
        assert estimate == pytest.approx(a, rel=0.4)

    def test_axis_choice(self):
        field = generate_gaussian_field((96, 96), 6.0, seed=2)
        l0 = acf_correlation_length(field, axis=0)
        l1 = acf_correlation_length(field, axis=1)
        # Isotropic field: both axes give comparable lengths.
        assert l0 == pytest.approx(l1, rel=0.5)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            acf_correlation_length(np.ones((8, 8)), axis=2)

    def test_white_noise_has_sub_unit_length(self, white_noise_field):
        assert acf_correlation_length(white_noise_field) < 1.0
