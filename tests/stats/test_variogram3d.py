"""Tests for repro.stats.variogram3d."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.miranda import generate_miranda_like_volume
from repro.stats.variogram import VariogramConfig
from repro.stats.variogram3d import (
    anisotropy_ratio,
    directional_variogram,
    empirical_variogram_3d,
    estimate_variogram_range_3d,
    local_variogram_ranges_3d,
    std_local_variogram_range_3d,
)


class TestDirectionalVariogram:
    def test_matches_manual_computation_at_lag_one(self):
        field = np.random.default_rng(0).normal(size=(20, 25))
        result = directional_variogram(field, axis=0, max_lag=5)
        manual = 0.5 * np.mean((field[1:, :] - field[:-1, :]) ** 2)
        assert result.values[0] == pytest.approx(manual)
        assert result.pair_counts[0] == 19 * 25

    def test_isotropic_field_has_similar_axes(self):
        field = generate_gaussian_field((96, 96), 8.0, seed=1)
        row = directional_variogram(field, axis=0, max_lag=20)
        col = directional_variogram(field, axis=1, max_lag=20)
        np.testing.assert_allclose(row.values, col.values, rtol=0.5, atol=0.02)

    def test_anisotropic_field_detected(self):
        # Stretch one axis: correlation decays slower along rows.
        base = generate_gaussian_field((192, 96), 6.0, seed=2)
        stretched = base[::2, :]  # halves the row count -> doubles row-wise correlation scale? no:
        # Build anisotropy explicitly instead: smooth strongly along axis 1.
        rng = np.random.default_rng(3)
        noise = rng.normal(size=(96, 96))
        kernel = np.ones((1, 9)) / 9.0
        from scipy.signal import convolve2d

        aniso = convolve2d(noise, kernel, mode="same", boundary="symm")
        ratio = anisotropy_ratio(aniso, max_lag=20)
        assert ratio < 0.8  # row-direction range much shorter than column-direction

    def test_invalid_axis_and_tiny_fields(self):
        with pytest.raises(ValueError):
            directional_variogram(np.zeros((8, 8)), axis=2)
        with pytest.raises(ValueError):
            directional_variogram(np.zeros((1, 8)), axis=0)


class TestAnisotropyRatio:
    def test_near_one_for_isotropic_field(self):
        field = generate_gaussian_field((96, 96), 8.0, seed=4)
        assert anisotropy_ratio(field) == pytest.approx(1.0, abs=0.4)


class TestVariogram3D:
    def test_constant_volume_zero_variogram(self):
        volume = np.full((8, 8, 8), 2.0)
        result = empirical_variogram_3d(volume)
        np.testing.assert_allclose(result.values, 0.0, atol=1e-18)

    def test_white_noise_sill_matches_variance(self):
        volume = np.random.default_rng(5).normal(size=(16, 16, 16))
        result = empirical_variogram_3d(volume)
        assert result.values.mean() == pytest.approx(volume.var(), rel=0.15)

    def test_matches_brute_force_on_tiny_volume(self):
        rng = np.random.default_rng(6)
        volume = rng.normal(size=(4, 4, 3))
        config = VariogramConfig(max_lag=2.0, bin_width=1.0)
        result = empirical_variogram_3d(volume, config)

        coords = [
            (i, j, k)
            for i in range(volume.shape[0])
            for j in range(volume.shape[1])
            for k in range(volume.shape[2])
        ]
        sums = np.zeros(2)
        counts = np.zeros(2)
        for a in range(len(coords)):
            for b in range(a + 1, len(coords)):
                pa, pb = coords[a], coords[b]
                dist = np.sqrt(sum((x - y) ** 2 for x, y in zip(pa, pb)))
                if 0 < dist <= 2.0:
                    idx = min(int(dist), 1)
                    sums[idx] += (volume[pa] - volume[pb]) ** 2
                    counts[idx] += 1
        expected = sums[counts > 0] / (2 * counts[counts > 0])
        np.testing.assert_allclose(result.values, expected, rtol=1e-10)
        np.testing.assert_allclose(result.pair_counts, counts[counts > 0])

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            empirical_variogram_3d(np.zeros((8, 8)))

    def test_smoother_volume_has_larger_fitted_range(self):
        smooth = generate_miranda_like_volume((12, 48, 48), seed=7)
        rough = np.random.default_rng(8).normal(size=(12, 48, 48))
        assert estimate_variogram_range_3d(smooth) > estimate_variogram_range_3d(rough)

    def test_3d_range_consistent_with_2d_slices(self):
        volume = generate_miranda_like_volume((12, 64, 64), seed=9)
        from repro.stats.variogram_models import estimate_variogram_range

        range_3d = estimate_variogram_range_3d(volume)
        slice_ranges = [estimate_variogram_range(volume[i]) for i in (3, 6, 9)]
        # The volumetric range lies within (a loose factor of) the spread of
        # the per-slice ranges.
        assert 0.2 * min(slice_ranges) <= range_3d <= 5.0 * max(slice_ranges)


class TestLocalVariogram3D:
    def test_window_grid_shape_and_summary(self):
        volume = generate_miranda_like_volume((16, 24, 16), seed=10)
        result = local_variogram_ranges_3d(volume, window=8)
        assert result.ranges.shape == (2, 3, 2)
        assert result.n_windows == 12
        assert result.valid_ranges.size > 0
        assert np.isfinite(result.mean)
        assert result.std >= 0

    def test_std_statistic_matches_result(self):
        volume = generate_miranda_like_volume((16, 16, 16), seed=11)
        result = local_variogram_ranges_3d(volume, window=8)
        assert std_local_variogram_range_3d(volume, window=8) == pytest.approx(
            result.std, nan_ok=True
        )

    def test_constant_windows_yield_nan(self):
        volume = np.zeros((16, 16, 16))
        volume[8:] = np.random.default_rng(12).normal(size=(8, 16, 16))
        result = local_variogram_ranges_3d(volume, window=8)
        # The four constant windows (first slab) carry no correlation info.
        assert np.isnan(result.ranges[0]).all()
        assert result.n_failed >= 4

    def test_heterogeneous_volume_has_larger_std_than_stationary(self):
        rng = np.random.default_rng(13)
        stationary = rng.normal(size=(16, 16, 16))
        mixed = stationary.copy()
        # Half the windows become strongly correlated (smooth) regions.
        smooth = generate_miranda_like_volume((16, 16, 16), seed=14)
        mixed[:, :, 8:] = smooth[:, :, 8:]
        assert std_local_variogram_range_3d(
            mixed, window=8
        ) > std_local_variogram_range_3d(stationary, window=8)

    def test_no_complete_window_rejected(self):
        with pytest.raises(ValueError):
            local_variogram_ranges_3d(np.zeros((8, 8, 8)), window=16)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            local_variogram_ranges_3d(np.zeros((16, 16)), window=8)
