"""Tests for repro.stats.local."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.local import local_variogram_ranges, std_local_variogram_range


class TestLocalVariogramRanges:
    def test_grid_shape_matches_complete_windows(self, smooth_field):
        result = local_variogram_ranges(smooth_field, window=32)
        assert result.ranges.shape == (2, 2)
        assert result.n_windows == 4

    def test_constant_windows_are_nan_and_excluded(self):
        field = np.zeros((64, 64))
        field[32:, :] = np.random.default_rng(0).normal(size=(32, 64))
        result = local_variogram_ranges(field, window=32)
        assert result.n_failed == 2
        assert np.isfinite(result.std)

    def test_fully_constant_field_gives_nan_summary(self):
        result = local_variogram_ranges(np.ones((64, 64)), window=32)
        assert result.n_failed == 4
        assert np.isnan(result.std)
        assert np.isnan(result.mean)

    def test_field_without_complete_windows_rejected(self):
        with pytest.raises(ValueError):
            local_variogram_ranges(np.ones((16, 16)), window=32)

    def test_homogeneous_field_has_low_range_dispersion(self):
        # A stationary field should have much lower relative dispersion of
        # local ranges than a field whose correlation length varies in space.
        homogeneous = generate_gaussian_field((128, 128), 4.0, seed=0)
        rows = np.linspace(0, 1, 128)[:, None]
        heterogeneous = (
            generate_gaussian_field((128, 128), 2.0, seed=1) * rows
            + generate_gaussian_field((128, 128), 24.0, seed=2) * (1 - rows)
        )
        std_homo = std_local_variogram_range(homogeneous, 32)
        std_hetero = std_local_variogram_range(heterogeneous, 32)
        assert std_hetero > std_homo

    def test_mean_tracks_true_range_for_small_ranges(self):
        field = generate_gaussian_field((128, 128), 3.0, seed=3)
        result = local_variogram_ranges(field, window=32)
        assert result.mean == pytest.approx(3.0, rel=0.6)

    def test_summary_statistics_consistent_with_ranges(self, multi_range_field):
        result = local_variogram_ranges(multi_range_field, window=32)
        valid = result.valid_ranges
        assert result.mean == pytest.approx(valid.mean())
        assert result.std == pytest.approx(valid.std())


class TestStdLocalVariogramRange:
    def test_scalar_output(self, smooth_field):
        value = std_local_variogram_range(smooth_field, 32)
        assert isinstance(value, float)
        assert value >= 0

    def test_window_size_affects_statistic(self, multi_range_field):
        a = std_local_variogram_range(multi_range_field, 16)
        b = std_local_variogram_range(multi_range_field, 32)
        assert a != b
