"""Tests for repro.stats.variogram_models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.variogram import EmpiricalVariogram, VariogramConfig
from repro.stats.variogram_models import (
    estimate_variogram_range,
    exponential_variogram,
    fit_variogram,
    gaussian_variogram,
    spherical_variogram,
)


class TestModelFunctions:
    def test_gaussian_zero_at_origin_and_sill_at_infinity(self):
        assert gaussian_variogram(np.array([0.0]), 2.0, 5.0)[0] == pytest.approx(0.0)
        assert gaussian_variogram(np.array([1e6]), 2.0, 5.0)[0] == pytest.approx(2.0)

    def test_nugget_shifts_origin(self):
        assert gaussian_variogram(np.array([0.0]), 2.0, 5.0, nugget=0.3)[0] == pytest.approx(0.3)

    def test_exponential_monotone(self):
        h = np.linspace(0, 50, 100)
        values = exponential_variogram(h, 1.0, 8.0)
        assert np.all(np.diff(values) > 0)

    def test_spherical_reaches_sill_exactly_at_range(self):
        assert spherical_variogram(np.array([8.0]), 1.5, 8.0)[0] == pytest.approx(1.5)
        assert spherical_variogram(np.array([20.0]), 1.5, 8.0)[0] == pytest.approx(1.5)

    def test_models_increase_with_distance(self):
        h = np.linspace(0, 30, 50)
        for func in (gaussian_variogram, exponential_variogram, spherical_variogram):
            values = func(h, 1.0, 10.0)
            assert np.all(np.diff(values) >= -1e-12)


class TestFitVariogram:
    def _synthetic_variogram(self, sill, range_, nugget=0.0, noise=0.0, seed=0):
        lags = np.linspace(1.0, 40.0, 30)
        values = gaussian_variogram(lags, sill, range_, nugget)
        if noise:
            values = values + np.random.default_rng(seed).normal(0, noise, size=lags.size)
        return EmpiricalVariogram(
            lags=lags,
            values=np.clip(values, 0, None),
            pair_counts=np.full(lags.size, 1000, dtype=np.int64),
            field_variance=sill + nugget,
        )

    def test_recovers_known_parameters(self):
        variogram = self._synthetic_variogram(sill=2.0, range_=12.0)
        fitted = fit_variogram(variogram, model="gaussian")
        assert fitted.sill == pytest.approx(2.0, rel=0.02)
        assert fitted.range == pytest.approx(12.0, rel=0.02)
        assert fitted.converged

    def test_recovers_nugget_when_requested(self):
        variogram = self._synthetic_variogram(sill=1.5, range_=8.0, nugget=0.25)
        fitted = fit_variogram(variogram, model="gaussian", fit_nugget=True)
        assert fitted.nugget == pytest.approx(0.25, abs=0.05)
        assert fitted.range == pytest.approx(8.0, rel=0.1)

    def test_robust_to_noise(self):
        variogram = self._synthetic_variogram(sill=1.0, range_=15.0, noise=0.03, seed=1)
        fitted = fit_variogram(variogram, model="gaussian")
        assert fitted.range == pytest.approx(15.0, rel=0.2)

    def test_weighting_options(self):
        variogram = self._synthetic_variogram(sill=1.0, range_=10.0)
        by_pairs = fit_variogram(variogram, weights="pairs")
        uniform = fit_variogram(variogram, weights="uniform")
        assert by_pairs.range == pytest.approx(uniform.range, rel=0.05)

    def test_unknown_model_rejected(self):
        variogram = self._synthetic_variogram(1.0, 5.0)
        with pytest.raises(ValueError):
            fit_variogram(variogram, model="cubic")

    def test_too_few_bins_rejected(self):
        variogram = EmpiricalVariogram(
            lags=np.array([1.0, 2.0]),
            values=np.array([0.1, 0.2]),
            pair_counts=np.array([10, 10]),
            field_variance=1.0,
        )
        with pytest.raises(ValueError, match="at least 3"):
            fit_variogram(variogram)

    def test_fitted_model_is_callable(self):
        variogram = self._synthetic_variogram(1.0, 10.0)
        fitted = fit_variogram(variogram)
        values = fitted(np.array([0.0, 10.0, 100.0]))
        assert values[0] == pytest.approx(fitted.nugget, abs=1e-9)
        assert values[-1] == pytest.approx(fitted.sill + fitted.nugget, rel=0.01)

    def test_effective_range_exceeds_range_for_gaussian(self):
        variogram = self._synthetic_variogram(1.0, 10.0)
        fitted = fit_variogram(variogram)
        assert fitted.effective_range > fitted.range


class TestEstimateVariogramRange:
    @pytest.mark.parametrize("true_range", [4.0, 8.0, 16.0])
    def test_recovers_generative_range(self, true_range):
        field = generate_gaussian_field((128, 128), true_range, seed=int(true_range))
        estimated = estimate_variogram_range(field)
        assert estimated == pytest.approx(true_range, rel=0.35)

    def test_monotone_in_true_range(self):
        estimates = [
            estimate_variogram_range(generate_gaussian_field((96, 96), a, seed=7))
            for a in (2.0, 8.0, 24.0)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_custom_config_respected(self, smooth_field):
        value = estimate_variogram_range(
            smooth_field, config=VariogramConfig(max_lag=16.0, bin_width=2.0)
        )
        assert value > 0
