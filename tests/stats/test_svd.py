"""Tests for repro.stats.svd."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.svd import (
    local_svd_truncation_levels,
    std_local_svd_truncation,
    svd_truncation_level,
)


class TestSvdTruncationLevel:
    def test_rank_one_window_needs_one_mode(self):
        u = np.linspace(0, 1, 32)[:, None]
        v = np.linspace(1, 2, 32)[None, :]
        window = u @ v
        assert svd_truncation_level(window, center=False) == 1

    def test_constant_window_is_one_mode(self):
        assert svd_truncation_level(np.full((16, 16), 3.0)) == 1

    def test_full_rank_noise_needs_many_modes(self):
        noise = np.random.default_rng(0).normal(size=(32, 32))
        assert svd_truncation_level(noise) > 16

    def test_energy_fraction_monotonicity(self):
        window = np.random.default_rng(1).normal(size=(32, 32))
        low = svd_truncation_level(window, energy_fraction=0.5)
        high = svd_truncation_level(window, energy_fraction=0.999)
        assert low < high

    def test_level_bounded_by_window_size(self):
        window = np.random.default_rng(2).normal(size=(24, 24))
        assert 1 <= svd_truncation_level(window) <= 24

    def test_invalid_energy_fraction(self):
        with pytest.raises(ValueError):
            svd_truncation_level(np.ones((4, 4)), energy_fraction=0.0)
        with pytest.raises(ValueError):
            svd_truncation_level(np.ones((4, 4)), energy_fraction=1.5)

    def test_smooth_window_needs_fewer_modes_than_rough(self):
        smooth = generate_gaussian_field((32, 32), 16.0, seed=0)
        rough = generate_gaussian_field((32, 32), 1.0, seed=0)
        assert svd_truncation_level(smooth) < svd_truncation_level(rough)


class TestLocalSvd:
    def test_levels_grid_shape(self, smooth_field):
        result = local_svd_truncation_levels(smooth_field, window=32)
        assert result.levels.shape == (2, 2)
        assert result.n_windows == 4

    def test_summary_statistics(self, multi_range_field):
        result = local_svd_truncation_levels(multi_range_field, window=32)
        assert result.mean == pytest.approx(result.levels.mean())
        assert result.std == pytest.approx(result.levels.std())
        assert result.max == result.levels.max()

    def test_smooth_fields_have_lower_levels_than_rough(self, smooth_field, rough_field):
        smooth = local_svd_truncation_levels(smooth_field, 32)
        rough = local_svd_truncation_levels(rough_field, 32)
        assert smooth.mean < rough.mean

    def test_std_function_matches_result(self, multi_range_field):
        direct = std_local_svd_truncation(multi_range_field, 32)
        via_result = local_svd_truncation_levels(multi_range_field, 32).std
        assert direct == pytest.approx(via_result)

    def test_too_small_field_rejected(self):
        with pytest.raises(ValueError):
            local_svd_truncation_levels(np.ones((16, 16)), window=32)

    def test_heterogeneous_field_has_larger_std(self):
        homogeneous = generate_gaussian_field((128, 128), 8.0, seed=5)
        rows = np.linspace(0, 1, 128)[:, None]
        heterogeneous = (
            generate_gaussian_field((128, 128), 1.5, seed=6) * rows
            + generate_gaussian_field((128, 128), 32.0, seed=7) * (1 - rows)
        )
        assert std_local_svd_truncation(heterogeneous, 32) > std_local_svd_truncation(
            homogeneous, 32
        )
