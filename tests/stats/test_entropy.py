"""Tests for repro.stats.entropy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.entropy import quantized_entropy, shannon_entropy


class TestShannonEntropy:
    def test_empty_stream(self):
        assert shannon_entropy(np.array([])) == 0.0

    def test_constant_stream_has_zero_entropy(self):
        assert shannon_entropy(np.full(100, 7)) == 0.0

    def test_uniform_binary_is_one_bit(self):
        symbols = np.array([0, 1] * 500)
        assert shannon_entropy(symbols) == pytest.approx(1.0)

    def test_uniform_alphabet_is_log2_size(self):
        symbols = np.repeat(np.arange(16), 10)
        assert shannon_entropy(symbols) == pytest.approx(4.0)

    def test_bounded_by_log2_alphabet(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 37, size=5000)
        assert shannon_entropy(symbols) <= np.log2(37) + 1e-9

    @given(st.lists(st.integers(min_value=-10, max_value=10), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_non_negative_property(self, symbols):
        assert shannon_entropy(np.asarray(symbols)) >= 0.0


class TestQuantizedEntropy:
    def test_larger_error_bound_gives_lower_entropy(self, rough_field):
        fine = quantized_entropy(rough_field, 1e-4)
        coarse = quantized_entropy(rough_field, 1e-1)
        assert coarse < fine

    def test_smooth_field_less_entropy_than_rough_at_same_bound(
        self, smooth_field, rough_field
    ):
        # Marginal entropy alone does not capture spatial correlation, but a
        # strongly correlated field over the same value range still spreads
        # over slightly fewer occupied bins per value.
        assert quantized_entropy(smooth_field, 1e-3) <= quantized_entropy(rough_field, 1e-3) + 1.0

    def test_constant_field_zero_entropy(self):
        assert quantized_entropy(np.full((16, 16), 2.5), 1e-3) == 0.0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            quantized_entropy(np.ones((4, 4)), 0.0)

    def test_error_bound_much_larger_than_range_gives_zero(self, smooth_field):
        bound = 100.0 * float(np.abs(smooth_field).max())
        assert quantized_entropy(smooth_field, bound) == pytest.approx(0.0)
