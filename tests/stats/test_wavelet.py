"""Tests for repro.stats.wavelet."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.wavelet import (
    haar_transform_2d,
    inverse_haar_transform_2d,
    std_local_wavelet_slope,
    wavelet_decompose,
    wavelet_energy_statistics,
)


class TestHaarTransform:
    def test_roundtrip_even_shape(self):
        field = np.random.default_rng(0).normal(size=(32, 48))
        bands = haar_transform_2d(field)
        recon = inverse_haar_transform_2d(bands, field.shape)
        np.testing.assert_allclose(recon, field, atol=1e-12)

    def test_roundtrip_odd_shape(self):
        field = np.random.default_rng(1).normal(size=(33, 47))
        recon = inverse_haar_transform_2d(haar_transform_2d(field), field.shape)
        np.testing.assert_allclose(recon, field, atol=1e-12)

    def test_energy_preserved_for_even_shapes(self):
        field = np.random.default_rng(2).normal(size=(64, 64))
        bands = haar_transform_2d(field)
        total = sum(float((band**2).sum()) for band in bands.values())
        assert total == pytest.approx(float((field**2).sum()), rel=1e-12)

    def test_constant_field_has_only_ll_energy(self):
        field = np.full((16, 16), 3.0)
        bands = haar_transform_2d(field)
        assert float(np.abs(bands["LH"]).max()) < 1e-12
        assert float(np.abs(bands["HL"]).max()) < 1e-12
        assert float(np.abs(bands["HH"]).max()) < 1e-12
        assert float(np.abs(bands["LL"]).max()) > 0

    def test_band_shapes_are_half(self):
        bands = haar_transform_2d(np.zeros((32, 48)))
        for band in bands.values():
            assert band.shape == (16, 24)

    def test_missing_band_rejected(self):
        bands = haar_transform_2d(np.zeros((8, 8)))
        del bands["HH"]
        with pytest.raises(ValueError):
            inverse_haar_transform_2d(bands)

    @given(
        rows=st.integers(min_value=4, max_value=40),
        cols=st.integers(min_value=4, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows, cols):
        field = np.random.default_rng(rows * 97 + cols).normal(size=(rows, cols))
        recon = inverse_haar_transform_2d(haar_transform_2d(field), field.shape)
        np.testing.assert_allclose(recon, field, atol=1e-10)


class TestWaveletDecompose:
    def test_number_of_levels(self):
        field = np.random.default_rng(3).normal(size=(64, 64))
        levels = wavelet_decompose(field, 3)
        assert len(levels) == 3
        assert levels[0]["LL"].shape == (32, 32)
        assert levels[2]["LL"].shape == (8, 8)

    def test_levels_clamped_by_size(self):
        field = np.random.default_rng(4).normal(size=(8, 8))
        levels = wavelet_decompose(field, 10)
        assert 1 <= len(levels) <= 3

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            wavelet_decompose(np.zeros((8, 8)), 0)


class TestWaveletEnergyStatistics:
    def test_fractions_sum_to_one(self):
        field = np.random.default_rng(5).normal(size=(64, 64))
        summary = wavelet_energy_statistics(field, levels=3)
        assert summary.level_energy_fraction.sum() == pytest.approx(1.0)
        assert 0.0 <= summary.approximation_fraction <= 1.0

    def test_smooth_field_has_positive_spectral_slope(self):
        # Long-range-correlated fields concentrate energy at coarse levels
        # (level index increases toward coarse), giving a positive slope.
        smooth = generate_gaussian_field((128, 128), 24.0, seed=0)
        rough = np.random.default_rng(1).normal(size=(128, 128))
        assert (
            wavelet_energy_statistics(smooth, 4).spectral_slope
            > wavelet_energy_statistics(rough, 4).spectral_slope
        )

    def test_white_noise_energy_spread_over_fine_levels(self):
        noise = np.random.default_rng(2).normal(size=(128, 128))
        summary = wavelet_energy_statistics(noise, levels=4)
        # Finest level holds the largest share for white noise (3/4 of
        # coefficients live there).
        assert summary.level_energy_fraction[0] == summary.level_energy_fraction.max()

    def test_smooth_field_keeps_energy_in_approximation(self):
        smooth = generate_gaussian_field((64, 64), 24.0, seed=3)
        noise = np.random.default_rng(3).normal(size=(64, 64))
        assert (
            wavelet_energy_statistics(smooth, 3).approximation_fraction
            > wavelet_energy_statistics(noise, 3).approximation_fraction
        )


class TestLocalWaveletSlope:
    def test_scalar_output_and_heterogeneity_sensitivity(self):
        homogeneous = generate_gaussian_field((128, 128), 8.0, seed=6)
        rows = np.linspace(0, 1, 128)[:, None]
        heterogeneous = (
            np.random.default_rng(7).normal(size=(128, 128)) * rows
            + generate_gaussian_field((128, 128), 24.0, seed=8) * (1 - rows)
        )
        homo = std_local_wavelet_slope(homogeneous, 32)
        hetero = std_local_wavelet_slope(heterogeneous, 32)
        assert np.isfinite(homo) and np.isfinite(hetero)
        assert hetero > homo

    def test_too_small_field_rejected(self):
        with pytest.raises(ValueError):
            std_local_wavelet_slope(np.zeros((16, 16)), 32)

    def test_constant_field_gives_nan(self):
        assert np.isnan(std_local_wavelet_slope(np.ones((64, 64)), 32))
