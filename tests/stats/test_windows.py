"""Tests for repro.stats.windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.windows import field_windows, window_grid_shape


class TestWindowGridShape:
    def test_exact_division(self):
        assert window_grid_shape((64, 96), 32) == (2, 3)

    def test_partial_windows_dropped(self):
        assert window_grid_shape((70, 33), 32) == (2, 1)

    def test_window_larger_than_field(self):
        assert window_grid_shape((16, 16), 32) == (0, 0)


class TestFieldWindows:
    def test_covers_complete_windows_only(self):
        field = np.arange(70 * 40, dtype=float).reshape(70, 40)
        windows = list(field_windows(field, 32))
        assert len(windows) == 2 * 1
        for (wi, wj), tile in windows:
            assert tile.shape == (32, 32)

    def test_window_content_matches_slices(self):
        field = np.random.default_rng(0).normal(size=(64, 64))
        for (wi, wj), tile in field_windows(field, 32):
            np.testing.assert_array_equal(
                tile, field[wi * 32 : (wi + 1) * 32, wj * 32 : (wj + 1) * 32]
            )

    def test_windows_are_views(self):
        field = np.zeros((64, 64))
        (_, tile), *_ = list(field_windows(field, 32))
        tile[0, 0] = 5.0
        assert field[0, 0] == 5.0

    def test_field_smaller_than_window_rejected(self):
        with pytest.raises(ValueError, match="smaller than the window"):
            list(field_windows(np.ones((16, 16)), 32))
