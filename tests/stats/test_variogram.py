"""Tests for repro.stats.variogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.covariance import SquaredExponentialCovariance
from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.variogram import EmpiricalVariogram, VariogramConfig, empirical_variogram


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            VariogramConfig(max_lag=-1.0)
        with pytest.raises(ValueError):
            VariogramConfig(bin_width=0.0)
        with pytest.raises(ValueError):
            VariogramConfig(method="magic")
        with pytest.raises(ValueError):
            VariogramConfig(n_pairs=0)


class TestResultInvariants:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalVariogram(
                lags=np.array([1.0, 2.0]),
                values=np.array([0.1]),
                pair_counts=np.array([5, 5]),
                field_variance=1.0,
            )


class TestFFTEstimator:
    def test_constant_field_has_zero_variogram(self):
        field = np.full((32, 32), 3.7)
        result = empirical_variogram(field)
        np.testing.assert_allclose(result.values, 0.0, atol=1e-20)

    def test_values_are_non_negative(self, smooth_field):
        result = empirical_variogram(smooth_field)
        assert np.all(result.values >= 0)

    def test_lags_within_max_lag_and_increasing(self, smooth_field):
        config = VariogramConfig(max_lag=20.0)
        result = empirical_variogram(smooth_field, config)
        assert result.lags.max() <= 20.0 + 1e-9
        assert np.all(np.diff(result.lags) > 0)

    def test_default_max_lag_is_half_min_dimension(self):
        field = np.random.default_rng(0).normal(size=(40, 60))
        result = empirical_variogram(field)
        assert result.lags.max() <= 20.0 + 1e-9

    def test_white_noise_sill_matches_variance(self, white_noise_field):
        result = empirical_variogram(white_noise_field)
        # For uncorrelated data the semi-variogram equals the variance at
        # every positive lag.
        np.testing.assert_allclose(
            result.values.mean(), white_noise_field.var(), rtol=0.1
        )

    def test_matches_brute_force_on_small_field(self):
        rng = np.random.default_rng(3)
        field = rng.normal(size=(7, 6))
        config = VariogramConfig(max_lag=4.0, bin_width=1.0)
        result = empirical_variogram(field, config)

        # Brute-force Matheron estimator over all pairs.
        rows, cols = field.shape
        coords = [(i, j) for i in range(rows) for j in range(cols)]
        n_bins = int(np.ceil(4.0 / 1.0))
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        for a in range(len(coords)):
            for b in range(a + 1, len(coords)):
                (i1, j1), (i2, j2) = coords[a], coords[b]
                dist = np.hypot(i1 - i2, j1 - j2)
                if 0 < dist <= 4.0:
                    bin_idx = min(int(dist / 1.0), n_bins - 1)
                    sums[bin_idx] += (field[i1, j1] - field[i2, j2]) ** 2
                    counts[bin_idx] += 1
        expected = sums[counts > 0] / (2.0 * counts[counts > 0])
        np.testing.assert_allclose(result.values, expected, rtol=1e-10)
        np.testing.assert_allclose(result.pair_counts, counts[counts > 0])

    def test_shift_invariance(self, smooth_field):
        base = empirical_variogram(smooth_field)
        shifted = empirical_variogram(smooth_field + 100.0)
        np.testing.assert_allclose(base.values, shifted.values, rtol=1e-8, atol=1e-10)

    def test_scaling_by_constant_scales_variogram_quadratically(self, smooth_field):
        base = empirical_variogram(smooth_field)
        scaled = empirical_variogram(3.0 * smooth_field)
        np.testing.assert_allclose(scaled.values, 9.0 * base.values, rtol=1e-8)

    def test_smooth_field_has_smaller_short_lag_variogram(self, smooth_field, rough_field):
        smooth = empirical_variogram(smooth_field)
        rough = empirical_variogram(rough_field)
        assert smooth.values[0] < rough.values[0]

    def test_theoretical_shape_recovered(self):
        # gamma(h)/sill should follow 1 - exp(-(h/a)^2) reasonably well.
        a = 10.0
        field = generate_gaussian_field((128, 128), a, seed=11)
        result = empirical_variogram(field, VariogramConfig(max_lag=30.0))
        model = SquaredExponentialCovariance(range=a, variance=field.var())
        expected = model.semivariogram(result.lags)
        # Allow generous tolerance: single realisation, finite domain.
        correlation = np.corrcoef(result.values, expected)[0, 1]
        assert correlation > 0.97

    def test_rejects_tiny_fields(self):
        with pytest.raises(ValueError):
            empirical_variogram(np.ones((1, 5)))


class TestPairSamplingEstimator:
    def test_agrees_with_fft_estimator(self, smooth_field):
        fft_result = empirical_variogram(smooth_field, VariogramConfig(max_lag=10.0))
        pair_result = empirical_variogram(
            smooth_field,
            VariogramConfig(max_lag=10.0, method="pairs", n_pairs=200_000),
            seed=0,
        )
        # Interpolate both onto common lags for comparison.
        common = np.intersect1d(
            np.round(fft_result.lags, 1), np.round(pair_result.lags, 1)
        )
        assert common.size >= 5
        fft_interp = np.interp(common, fft_result.lags, fft_result.values)
        pair_interp = np.interp(common, pair_result.lags, pair_result.values)
        np.testing.assert_allclose(pair_interp, fft_interp, rtol=0.25)

    def test_reproducible_given_seed(self, rough_field):
        config = VariogramConfig(method="pairs", n_pairs=5000)
        a = empirical_variogram(rough_field, config, seed=42)
        b = empirical_variogram(rough_field, config, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_pair_counts_bounded_by_requested_pairs(self, rough_field):
        config = VariogramConfig(method="pairs", n_pairs=1000)
        result = empirical_variogram(rough_field, config, seed=0)
        assert result.pair_counts.sum() <= 1000
