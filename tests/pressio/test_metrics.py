"""Tests for repro.pressio.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.base import CompressedField
from repro.compressors.sz import SZCompressor
from repro.pressio.metrics import evaluate_metrics


def _fake_compressed(field, data_size, error_bound=1e-3, reconstruction=None):
    return CompressedField(
        data=b"0" * data_size,
        original_shape=field.shape,
        original_dtype=field.dtype,
        compressor="fake",
        error_bound=error_bound,
        reconstruction=reconstruction,
    )


class TestEvaluateMetrics:
    def test_exact_reconstruction_gives_infinite_psnr(self):
        field = np.random.default_rng(0).normal(size=(16, 16))
        compressed = _fake_compressed(field, 256, reconstruction=field.copy())
        metrics = evaluate_metrics(field, compressed)
        assert metrics.psnr == float("inf")
        assert metrics.max_abs_error == 0.0
        assert metrics.rmse == 0.0
        assert metrics.bound_satisfied

    def test_compression_ratio_and_bit_rate(self):
        field = np.zeros((10, 10))
        compressed = _fake_compressed(field, 100, reconstruction=field)
        metrics = evaluate_metrics(field, compressed)
        assert metrics.compression_ratio == pytest.approx(8.0)
        assert metrics.bit_rate == pytest.approx(8.0)

    def test_error_statistics(self):
        field = np.zeros((4, 4))
        recon = np.zeros((4, 4))
        recon[0, 0] = 0.5
        compressed = _fake_compressed(field, 10, error_bound=0.1, reconstruction=recon)
        metrics = evaluate_metrics(field, compressed)
        assert metrics.max_abs_error == pytest.approx(0.5)
        assert metrics.rmse == pytest.approx(np.sqrt(0.25 / 16))
        assert not metrics.bound_satisfied

    def test_psnr_uses_value_range_as_peak(self):
        field = np.linspace(0, 10, 100).reshape(10, 10)
        recon = field + 0.1
        compressed = _fake_compressed(field, 100, error_bound=1.0, reconstruction=recon)
        metrics = evaluate_metrics(field, compressed)
        assert metrics.value_range == pytest.approx(10.0)
        assert metrics.psnr == pytest.approx(20 * np.log10(10.0 / 0.1), rel=1e-6)

    def test_reconstruction_required(self):
        field = np.zeros((4, 4))
        compressed = _fake_compressed(field, 10)
        with pytest.raises(ValueError, match="no reconstruction"):
            evaluate_metrics(field, compressed)

    def test_shape_mismatch_rejected(self):
        field = np.zeros((4, 4))
        compressed = _fake_compressed(field, 10, reconstruction=np.zeros((5, 5)))
        with pytest.raises(ValueError, match="shape"):
            evaluate_metrics(field, compressed)

    def test_explicit_reconstruction_overrides_stored_one(self, smooth_field):
        compressor = SZCompressor(1e-3)
        compressed = compressor.compress(smooth_field)
        decompressed = compressor.decompress(compressed)
        metrics = evaluate_metrics(smooth_field, compressed, reconstruction=decompressed)
        assert metrics.bound_satisfied
        assert metrics.max_abs_error <= 1e-3 * (1 + 1e-9)

    def test_as_dict_contains_all_fields(self, smooth_field):
        compressed = SZCompressor(1e-2).compress(smooth_field)
        metrics = evaluate_metrics(smooth_field, compressed)
        as_dict = metrics.as_dict()
        for key in ("compression_ratio", "bit_rate", "psnr", "rmse", "max_abs_error"):
            assert key in as_dict
