"""Tests for repro.pressio.options."""

from __future__ import annotations

import pytest

from repro.pressio.options import CompressorOptions


class TestCompressorOptions:
    def test_defaults(self):
        options = CompressorOptions()
        assert options.mode == "abs"
        assert options.error_bound == 1e-3
        assert options.extra == {}

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CompressorOptions(error_bound=0.0)
        with pytest.raises(ValueError):
            CompressorOptions(mode="psnr")

    def test_absolute_mode_ignores_field_range(self):
        options = CompressorOptions(error_bound=1e-2, mode="abs")
        assert options.absolute_bound(-5.0, 10.0) == pytest.approx(1e-2)

    def test_relative_mode_scales_by_value_range(self):
        options = CompressorOptions(error_bound=1e-2, mode="rel")
        assert options.absolute_bound(0.0, 50.0) == pytest.approx(0.5)

    def test_relative_mode_on_constant_field_falls_back(self):
        options = CompressorOptions(error_bound=1e-2, mode="rel")
        assert options.absolute_bound(3.0, 3.0) == pytest.approx(1e-2)

    def test_extra_options_are_stored(self):
        options = CompressorOptions(extra={"block_size": 8})
        assert options.extra["block_size"] == 8
