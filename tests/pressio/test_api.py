"""Tests for repro.pressio.api."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pressio.api import PressioCompressor, compress_and_measure
from repro.pressio.options import CompressorOptions


class TestPressioCompressor:
    def test_unknown_compressor_rejected(self):
        with pytest.raises(KeyError):
            PressioCompressor("fpzip")

    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_compress_and_decompress(self, name, smooth_field):
        codec = PressioCompressor(name, CompressorOptions(error_bound=1e-3))
        compressed, metrics = codec.compress(smooth_field)
        assert metrics.bound_satisfied
        assert metrics.compression_ratio > 1.0
        decompressed = codec.decompress(compressed)
        assert np.abs(decompressed - smooth_field).max() <= 1e-3 * (1 + 1e-9)

    def test_relative_mode_resolves_against_field_range(self, smooth_field):
        codec = PressioCompressor("sz", CompressorOptions(error_bound=0.01, mode="rel"))
        compressed, metrics = codec.compress(smooth_field)
        expected_bound = 0.01 * (smooth_field.max() - smooth_field.min())
        assert compressed.error_bound == pytest.approx(expected_bound)
        assert metrics.max_abs_error <= expected_bound * (1 + 1e-9)

    def test_extra_options_forwarded(self, smooth_field):
        codec = PressioCompressor(
            "sz", CompressorOptions(error_bound=1e-3, extra={"block_size": 8})
        )
        compressed, metrics = codec.compress(smooth_field)
        assert metrics.bound_satisfied

    def test_get_configuration(self):
        codec = PressioCompressor("zfp", CompressorOptions(error_bound=1e-4))
        config = codec.get_configuration()
        assert config["compressor_id"] == "zfp"
        assert config["error_bound"] == 1e-4
        assert config["mode"] == "abs"

    def test_rejects_non_2d_input(self):
        codec = PressioCompressor("sz")
        with pytest.raises(ValueError):
            codec.compress(np.ones(16))


class TestCompressAndMeasure:
    def test_one_call_workflow(self, smooth_field):
        compressed, metrics = compress_and_measure(smooth_field, "sz", 1e-3)
        assert metrics.compression_ratio == pytest.approx(compressed.compression_ratio)
        assert metrics.bound_satisfied

    def test_kwargs_forwarded_to_compressor(self, smooth_field):
        _, metrics_lorenzo = compress_and_measure(
            smooth_field, "sz", 1e-3, predictors=("lorenzo",)
        )
        _, metrics_both = compress_and_measure(smooth_field, "sz", 1e-3)
        assert metrics_lorenzo.bound_satisfied and metrics_both.bound_satisfied
