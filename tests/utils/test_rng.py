"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seeds, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).normal(size=10)
        b = make_rng(42).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).normal(size=10)
        b = make_rng(2).normal(size=10)
        assert not np.array_equal(a, b)

    def test_generator_passed_through(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        out = make_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeeds:
    def test_deterministic_for_int_seed(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_children_are_distinct(self):
        seeds = derive_seeds(0, 20)
        assert len(set(seeds)) == 20

    def test_count_zero(self):
        assert derive_seeds(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)

    def test_generator_seed_is_deterministic_per_state(self):
        gen = np.random.default_rng(3)
        first = derive_seeds(gen, 3)
        gen2 = np.random.default_rng(3)
        second = derive_seeds(gen2, 3)
        assert first == second
