"""Tests for repro.utils.parallel."""

from __future__ import annotations

import pytest

from repro.utils.parallel import ParallelConfig, parallel_map


def _square(x: int) -> int:
    return x * x


def _fail(x: int) -> int:
    raise RuntimeError("boom")


class TestParallelConfig:
    def test_defaults_are_serial(self):
        config = ParallelConfig()
        assert config.workers == 1

    def test_rejects_invalid_workers_and_chunksize(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(chunksize=0)


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(10))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_preserves_order_with_threads(self):
        config = ParallelConfig(workers=4, use_processes=False)
        items = list(range(25))
        assert parallel_map(_square, items, config) == [x * x for x in items]

    def test_preserves_order_with_processes(self):
        config = ParallelConfig(workers=2, use_processes=True)
        items = list(range(8))
        assert parallel_map(_square, items, config) == [x * x for x in items]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail, [1], ParallelConfig(workers=2, use_processes=False))

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail, [1])
