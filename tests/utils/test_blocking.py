"""Tests for repro.utils.blocking."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.blocking import (
    block_count,
    block_view,
    iter_blocks,
    pad_to_multiple,
    reassemble_blocks,
    window_starts,
)


class TestPadToMultiple:
    def test_already_multiple_is_returned_unchanged(self):
        field = np.arange(64, dtype=float).reshape(8, 8)
        padded, shape = pad_to_multiple(field, 4)
        assert padded is field
        assert shape == (8, 8)

    def test_padding_extends_to_next_multiple(self):
        field = np.ones((5, 7))
        padded, shape = pad_to_multiple(field, 4)
        assert padded.shape == (8, 8)
        assert shape == (5, 7)

    def test_edge_padding_replicates_border(self):
        field = np.arange(6, dtype=float).reshape(2, 3)
        padded, _ = pad_to_multiple(field, 4)
        assert padded[3, 0] == field[1, 0]
        assert padded[0, 3] == field[0, 2]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.ones(5), 4)


class TestBlockView:
    def test_shape_and_content(self):
        field = np.arange(64, dtype=float).reshape(8, 8)
        blocks = block_view(field, 4)
        assert blocks.shape == (2, 2, 4, 4)
        np.testing.assert_array_equal(blocks[0, 0], field[:4, :4])
        np.testing.assert_array_equal(blocks[1, 1], field[4:, 4:])

    def test_is_a_view(self):
        field = np.zeros((8, 8))
        blocks = block_view(field, 4)
        blocks[0, 0, 0, 0] = 42.0
        assert field[0, 0] == 42.0

    def test_rejects_non_multiple_shape(self):
        with pytest.raises(ValueError, match="not a multiple"):
            block_view(np.ones((6, 8)), 4)


class TestReassembleBlocks:
    def test_roundtrip_with_block_view(self):
        field = np.random.default_rng(0).normal(size=(12, 16))
        blocks = block_view(field, 4).copy()
        restored = reassemble_blocks(blocks, (12, 16))
        np.testing.assert_array_equal(restored, field)

    def test_crops_to_original_shape(self):
        field = np.random.default_rng(1).normal(size=(5, 7))
        padded, shape = pad_to_multiple(field, 4)
        blocks = block_view(padded, 4).copy()
        restored = reassemble_blocks(blocks, shape)
        assert restored.shape == (5, 7)
        np.testing.assert_array_equal(restored, field)

    def test_rejects_non_square_blocks(self):
        with pytest.raises(ValueError, match="square"):
            reassemble_blocks(np.ones((2, 2, 3, 4)), (6, 8))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            reassemble_blocks(np.ones((2, 3, 4)), (6, 8))

    @given(
        rows=st.integers(min_value=1, max_value=30),
        cols=st.integers(min_value=1, max_value=30),
        bs=st.sampled_from([2, 3, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_pad_blockview_reassemble_roundtrip_property(self, rows, cols, bs):
        field = np.random.default_rng(rows * 31 + cols).normal(size=(rows, cols))
        padded, shape = pad_to_multiple(field, bs)
        restored = reassemble_blocks(block_view(padded, bs).copy(), shape)
        np.testing.assert_array_equal(restored, field)


class TestIterBlocks:
    def test_covers_whole_field_without_overlap(self):
        field = np.arange(35, dtype=float).reshape(5, 7)
        seen = np.zeros_like(field, dtype=int)
        for (bi, bj), block in iter_blocks(field, 3):
            seen[bi * 3 : bi * 3 + block.shape[0], bj * 3 : bj * 3 + block.shape[1]] += 1
        np.testing.assert_array_equal(seen, np.ones_like(seen))

    def test_edge_blocks_are_partial(self):
        field = np.zeros((5, 7))
        shapes = [block.shape for _, block in iter_blocks(field, 4)]
        assert (4, 4) in shapes
        assert (1, 3) in shapes


class TestWindowStarts:
    def test_complete_windows_only_by_default(self):
        assert window_starts(10, 4) == [0, 4]

    def test_include_partial_appends_tail(self):
        assert window_starts(10, 4, include_partial=True) == [0, 4, 8]

    def test_exact_fit(self):
        assert window_starts(8, 4) == [0, 4]
        assert window_starts(8, 4, include_partial=True) == [0, 4]

    def test_window_larger_than_length(self):
        assert window_starts(3, 8) == []
        assert window_starts(3, 8, include_partial=True) == [0]

    def test_block_count_matches_padding(self):
        assert block_count((5, 7), 4) == (2, 2)
        assert block_count((8, 8), 4) == (2, 2)
