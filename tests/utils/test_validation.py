"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_2d,
    ensure_float_array,
    ensure_in,
    ensure_odd,
    ensure_positive,
)


class TestEnsure2D:
    def test_passes_through_2d(self):
        arr = np.ones((3, 4))
        assert ensure_2d(arr) is arr

    def test_rejects_1d_and_3d(self):
        with pytest.raises(ValueError, match="must be 2D"):
            ensure_2d(np.ones(3))
        with pytest.raises(ValueError, match="must be 2D"):
            ensure_2d(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ensure_2d(np.empty((0, 3)))

    def test_converts_nested_lists(self):
        out = ensure_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)


class TestEnsureFloatArray:
    def test_promotes_integers(self):
        out = ensure_float_array(np.array([[1, 2]], dtype=np.int32))
        assert out.dtype == np.float64

    def test_rejects_complex(self):
        with pytest.raises(TypeError, match="real-valued"):
            ensure_float_array(np.array([1 + 2j]))

    def test_preserves_values(self):
        data = np.array([[1.5, -2.25]])
        np.testing.assert_array_equal(ensure_float_array(data), data)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(3.5) == 3.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_accepts_zero_when_not_strict(self):
        assert ensure_positive(0.0, strict=False) == 0.0

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(ValueError):
            ensure_positive(-1.0)
        with pytest.raises(ValueError):
            ensure_positive(float("nan"))
        with pytest.raises(ValueError):
            ensure_positive(float("inf"))


class TestEnsureIn:
    def test_accepts_member(self):
        assert ensure_in("a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            ensure_in("c", ("a", "b"))


class TestEnsureOdd:
    def test_accepts_odd(self):
        assert ensure_odd(5) == 5

    def test_rejects_even_and_non_integers(self):
        with pytest.raises(ValueError):
            ensure_odd(4)
        with pytest.raises(ValueError):
            ensure_odd(2.5)
