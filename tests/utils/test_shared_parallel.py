"""Lifecycle tests for the shared-array protocol in repro.utils.parallel.

The session owns segment cleanup: /dev/shm must hold no ``repro-shm-*``
entries after a run — successful, failed, or interrupted.  The repo-wide
``filterwarnings = error`` setting means a resource_tracker leak warning
in-process would fail these tests on its own; the subprocess test covers
the tracker's at-exit path as well.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.utils.parallel import (
    ENV_START_METHOD,
    ParallelConfig,
    SEGMENT_PREFIX,
    SharedArraySession,
    SharedArraySpec,
    WorkerPool,
    parallel_map,
    read_shared,
    shared_memory_available,
    start_method,
    use_shared_arrays,
    write_shared,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)

SHM_DIR = pathlib.Path("/dev/shm")


def _leaked_segments() -> list:
    if not SHM_DIR.is_dir():
        return []
    return sorted(SHM_DIR.glob(f"{SEGMENT_PREFIX}-*"))


def _scale_worker(task):
    spec, out_spec, region, scale = task
    values = read_shared(spec, region) * scale
    write_shared(out_spec, region, values)
    return region, float(values.sum())


def _boom_worker(task):
    raise RuntimeError("boom")


def _double(x):
    return 2 * x


class TestSpec:
    def test_nbytes(self):
        spec = SharedArraySpec("x", (4, 8), "float64")
        assert spec.nbytes == 4 * 8 * 8

    def test_is_picklable(self):
        import pickle

        spec = SharedArraySpec("x", (4, 8), "float32")
        assert pickle.loads(pickle.dumps(spec)) == spec


@needs_shm
class TestSessionLifecycle:
    def test_share_read_roundtrip(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((6, 5))
        with SharedArraySession() as session:
            spec = session.share(array)
            np.testing.assert_array_equal(read_shared(spec), array)
            region = (slice(1, 4), slice(0, 2))
            np.testing.assert_array_equal(read_shared(spec, region), array[region])
        assert _leaked_segments() == []

    def test_allocate_write_roundtrip(self):
        with SharedArraySession() as session:
            spec, view = session.allocate((3, 4), "float64")
            write_shared(spec, (slice(0, 2), slice(1, 3)), np.ones((2, 2)))
            assert view[:2, 1:3].sum() == 4.0
            del view
        assert _leaked_segments() == []

    def test_read_after_unlink_fails(self):
        with SharedArraySession() as session:
            spec = session.share(np.zeros(4))
        with pytest.raises(FileNotFoundError):
            read_shared(spec)

    def test_unlink_on_worker_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArraySession() as session, WorkerPool(
                ParallelConfig(workers=2)
            ) as pool:
                spec = session.share(np.zeros((4, 4)))
                pool.map(_boom_worker, [(spec,)])
        assert _leaked_segments() == []

    def test_unlink_on_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with SharedArraySession() as session:
                session.share(np.zeros((4, 4)))
                raise KeyboardInterrupt
        assert _leaked_segments() == []

    def test_close_survives_live_view(self):
        # A still-referenced view must not prevent the unlink.
        session = SharedArraySession()
        spec, view = session.allocate((2, 2))
        session.close()
        assert _leaked_segments() == []
        del view

    def test_empty_array_rejected(self):
        with SharedArraySession() as session:
            with pytest.raises(ValueError):
                session.allocate((0, 4))


@needs_shm
class TestWorkerRoundTrip:
    def test_workers_write_in_place(self):
        rng = np.random.default_rng(1)
        volume = rng.standard_normal((4, 6))
        regions = [(slice(0, 2), slice(0, 6)), (slice(2, 4), slice(0, 6))]
        with SharedArraySession() as session, WorkerPool(
            ParallelConfig(workers=2)
        ) as pool:
            spec = session.share(volume)
            out_spec, out_view = session.allocate(volume.shape, volume.dtype)
            tasks = [(spec, out_spec, region, 3.0) for region in regions]
            payloads = pool.map(_scale_worker, tasks)
            result = out_view.copy()
            del out_view
        np.testing.assert_array_equal(result, volume * 3.0)
        assert [p[0] for p in payloads] == regions
        assert _leaked_segments() == []

    def test_no_tracker_leak_warnings_in_subprocess(self):
        # Run the full protocol under ``-W error`` in a clean interpreter:
        # a resource_tracker "leaked shared_memory objects" warning at
        # shutdown would land in stderr and fail the check.
        code = (
            "import numpy as np\n"
            "from repro.utils.parallel import (ParallelConfig,"
            " SharedArraySession, WorkerPool)\n"
            "from tests.utils.test_shared_parallel import _scale_worker\n"
            "with SharedArraySession() as s, WorkerPool(ParallelConfig(2)) as p:\n"
            "    spec = s.share(np.ones((4, 4)))\n"
            "    out, view = s.allocate((4, 4))\n"
            "    p.map(_scale_worker, [(spec, out, (slice(0, 4),), 2.0)])\n"
            "    del view\n"
        )
        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root), env.get("PYTHONPATH", "")]
        )
        result = subprocess.run(
            [sys.executable, "-W", "error", "-c", code],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr


class TestUseSharedArrays:
    def test_serial_and_threads_stay_on_direct_memory(self):
        assert not use_shared_arrays(None)
        assert not use_shared_arrays(ParallelConfig(workers=1))
        assert not use_shared_arrays(
            ParallelConfig(workers=4, use_processes=False)
        )

    @needs_shm
    def test_process_pool_uses_shared_arrays(self):
        assert use_shared_arrays(ParallelConfig(workers=2))


class TestWorkerPool:
    def test_lazy_executor_on_empty_map(self):
        with WorkerPool(ParallelConfig(workers=2)) as pool:
            assert pool.map(_double, []) == []
            assert pool._executor is None
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool._executor is not None

    def test_serial_pool_has_no_executor(self):
        with WorkerPool(None) as pool:
            assert pool.map(_double, [5]) == [10]
            assert pool._executor is None

    def test_reuse_across_batches(self):
        with WorkerPool(ParallelConfig(workers=2, use_processes=False)) as pool:
            first = pool.map(_double, [1, 2])
            executor = pool._executor
            second = pool.map(_double, [3, 4])
            assert pool._executor is executor
        assert (first, second) == ([2, 4], [6, 8])


class TestStartMethod:
    def test_unset_means_platform_default(self, monkeypatch):
        monkeypatch.delenv(ENV_START_METHOD, raising=False)
        assert start_method() is None
        monkeypatch.setenv(ENV_START_METHOD, "")
        assert start_method() is None

    def test_valid_method_is_honoured(self, monkeypatch):
        monkeypatch.setenv(ENV_START_METHOD, "spawn")
        assert start_method() == "spawn"

    def test_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_START_METHOD, "frok")
        with pytest.raises(ValueError, match="frok"):
            start_method()

    def test_parallel_map_under_spawn(self, monkeypatch):
        monkeypatch.setenv(ENV_START_METHOD, "spawn")
        config = ParallelConfig(workers=2)
        assert parallel_map(_double, [1, 2, 3], config) == [2, 4, 6]
