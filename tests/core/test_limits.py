"""Tests for repro.core.limits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.limits import estimate_compressibility_plateau


class TestPlateauEstimation:
    def test_saturating_curve_detected(self):
        x = np.linspace(1, 100, 60)
        cr = 20.0 * (1.0 - np.exp(-x / 10.0))  # rises then flattens
        estimate = estimate_compressibility_plateau(x, cr)
        assert estimate.detected
        assert estimate.plateau_cr == pytest.approx(20.0, rel=0.05)
        assert estimate.final_slope < estimate.initial_slope

    def test_pure_logarithmic_growth_not_detected(self):
        x = np.linspace(1, 100, 60)
        cr = 1.0 + 5.0 * np.log(x)
        estimate = estimate_compressibility_plateau(x, cr)
        assert not estimate.detected
        assert np.isnan(estimate.plateau_cr)

    def test_too_few_points_returns_undetected(self):
        estimate = estimate_compressibility_plateau([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert not estimate.detected

    def test_invalid_points_are_dropped(self):
        x = np.concatenate(([0.0, -5.0, np.nan], np.linspace(1, 50, 40)))
        cr = np.concatenate(([1.0, 1.0, 1.0], 10 * (1 - np.exp(-np.linspace(1, 50, 40) / 5))))
        estimate = estimate_compressibility_plateau(x, cr)
        assert estimate.detected

    def test_onset_is_within_observed_range(self):
        x = np.linspace(1, 80, 50)
        cr = 15.0 * (1.0 - np.exp(-x / 8.0))
        estimate = estimate_compressibility_plateau(x, cr)
        assert x.min() <= estimate.onset_x <= x.max()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            estimate_compressibility_plateau([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            estimate_compressibility_plateau([1.0, 2.0], [1.0, 2.0], flatness_fraction=1.5)

    def test_decreasing_curve_not_detected(self):
        x = np.linspace(1, 50, 30)
        cr = 30.0 - 3.0 * np.log(x)
        estimate = estimate_compressibility_plateau(x, cr)
        assert not estimate.detected
