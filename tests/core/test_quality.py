"""Tests for repro.core.quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.pipeline import run_experiment_on_fields
from repro.core.quality import quality_series_from_result, rate_distortion_table
from repro.datasets.gaussian import generate_gaussian_field

CONFIG = ExperimentConfig(
    compressors=("sz", "zfp"),
    error_bounds=(1e-4, 1e-3, 1e-2),
    compute_local_variogram=False,
    compute_local_svd=False,
)


@pytest.fixture(scope="module")
def sweep_result():
    fields = [
        (f"a{r:g}", generate_gaussian_field((64, 64), r, seed=int(r)))
        for r in (2.0, 4.0, 8.0, 16.0, 32.0)
    ]
    return run_experiment_on_fields(fields, dataset="quality-test", config=CONFIG)


class TestQualitySeries:
    def test_series_structure(self, sweep_result):
        series = quality_series_from_result(
            sweep_result, "global_variogram_range", metric="psnr"
        )
        assert len(series) == 2 * 3
        for entry in series:
            assert entry.figure == "quality:psnr"
            assert entry.n_points == 5

    def test_psnr_decreases_with_error_bound(self, sweep_result):
        series = quality_series_from_result(
            sweep_result, "global_variogram_range", metric="psnr", compressors=["sz"]
        )
        mean_psnr = {s.error_bound: float(np.mean(s.compression_ratios)) for s in series}
        assert mean_psnr[1e-4] > mean_psnr[1e-3] > mean_psnr[1e-2]

    def test_bit_rate_decreases_with_correlation_range(self, sweep_result):
        series = quality_series_from_result(
            sweep_result, "global_variogram_range", metric="bit_rate", compressors=["sz"]
        )
        for entry in series:
            assert entry.fit is not None
            # More correlated data needs fewer bits per value.
            assert entry.fit.beta < 0

    def test_max_error_stays_below_bound(self, sweep_result):
        series = quality_series_from_result(
            sweep_result, "global_variogram_range", metric="max_abs_error"
        )
        for entry in series:
            assert np.all(entry.compression_ratios <= entry.error_bound * (1 + 1e-9))

    def test_invalid_metric_and_statistic_rejected(self, sweep_result):
        with pytest.raises(ValueError):
            quality_series_from_result(sweep_result, "global_variogram_range", metric="ssim")
        with pytest.raises(ValueError):
            quality_series_from_result(sweep_result, "entropy", metric="psnr")


class TestRateDistortionTable:
    def test_structure_and_ordering(self, sweep_result):
        table = rate_distortion_table(sweep_result)
        assert set(table) == {"sz", "zfp"}
        for points in table.values():
            assert len(points) == 3
            rates = [p.mean_bit_rate for p in points]
            assert rates == sorted(rates)

    def test_rate_distortion_monotone(self, sweep_result):
        # More bits -> better quality along each compressor's curve.
        table = rate_distortion_table(sweep_result)
        for points in table.values():
            psnrs = [p.mean_psnr for p in points]
            assert psnrs == sorted(psnrs)

    def test_cr_consistent_with_bit_rate(self, sweep_result):
        table = rate_distortion_table(sweep_result)
        for points in table.values():
            for point in points:
                assert point.mean_compression_ratio == pytest.approx(
                    64.0 / point.mean_bit_rate, rel=0.25
                )
