"""Tests for repro.core.reporting."""

from __future__ import annotations

import csv
import io

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.figures import series_from_result
from repro.core.pipeline import run_experiment_on_fields
from repro.core.reporting import (
    format_table,
    records_to_csv,
    series_to_markdown,
    write_records_csv,
)
from repro.datasets.gaussian import generate_gaussian_field

FAST_CONFIG = ExperimentConfig(
    compressors=("sz",),
    error_bounds=(1e-3, 1e-2),
    compute_local_variogram=False,
    compute_local_svd=False,
)


@pytest.fixture(scope="module")
def small_result():
    fields = [
        ("a4", generate_gaussian_field((48, 48), 4.0, seed=0)),
        ("a16", generate_gaussian_field((48, 48), 16.0, seed=1)),
    ]
    return run_experiment_on_fields(fields, dataset="report-test", config=FAST_CONFIG)


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(("name", "value"), [("alpha", 1.23456), ("beta", 2)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "alpha" in lines[2]
        assert "1.235" in lines[2]

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestRecordsToCsv:
    def test_csv_roundtrips_through_reader(self, small_result):
        content = records_to_csv(small_result.records)
        reader = csv.DictReader(io.StringIO(content))
        rows = list(reader)
        assert len(rows) == len(small_result.records)
        assert {row["compressor"] for row in rows} == {"sz"}
        crs = sorted(float(row["compression_ratio"]) for row in rows)
        expected = sorted(r.compression_ratio for r in small_result.records)
        np.testing.assert_allclose(crs, expected)

    def test_empty_records_give_empty_string(self):
        assert records_to_csv([]) == ""

    def test_write_records_csv(self, small_result, tmp_path):
        path = tmp_path / "records.csv"
        write_records_csv(path, small_result.records)
        content = path.read_text()
        assert content.startswith("dataset,")
        assert content.count("\n") == len(small_result.records) + 1


class TestSeriesToMarkdown:
    def test_markdown_structure(self, small_result):
        series = series_from_result(
            small_result, "global_variogram_range", figure="report-test"
        )
        markdown = series_to_markdown(series, title="Test figure")
        lines = markdown.splitlines()
        assert lines[0] == "### Test figure"
        assert lines[2].startswith("| compressor |")
        assert lines[3].startswith("|---")
        # one table row per series
        assert len([line for line in lines if line.startswith("| sz")]) == len(series)

    def test_series_without_fit_rendered_with_dashes(self, small_result):
        series = series_from_result(
            small_result, "global_variogram_range", figure="report-test"
        )
        # Forge a series with no fit.
        from dataclasses import replace

        broken = [replace(series[0], fit=None)]
        markdown = series_to_markdown(broken)
        assert "| — |" in markdown or "| - |" in markdown or "—" in markdown
