"""Tests for repro.core.regression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import fit_log_regression


class TestFitLogRegression:
    def test_recovers_exact_coefficients(self):
        x = np.linspace(1, 50, 40)
        cr = 3.0 + 2.5 * np.log(x)
        fit = fit_log_regression(x, cr)
        assert fit.alpha == pytest.approx(3.0, abs=1e-9)
        assert fit.beta == pytest.approx(2.5, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-9)

    def test_noise_reduces_r_squared_but_not_slope_sign(self):
        rng = np.random.default_rng(0)
        x = np.linspace(1, 50, 100)
        cr = 1.0 + 4.0 * np.log(x) + rng.normal(0, 1.0, size=x.size)
        fit = fit_log_regression(x, cr)
        assert 0.5 < fit.r_squared < 1.0
        assert fit.beta == pytest.approx(4.0, rel=0.2)

    def test_log_base_conversion(self):
        x = np.linspace(1, 100, 30)
        cr = 2.0 + 3.0 * np.log10(x)
        fit10 = fit_log_regression(x, cr, log_base=10.0)
        assert fit10.beta == pytest.approx(3.0, abs=1e-9)
        fit_e = fit_log_regression(x, cr)
        assert fit_e.beta == pytest.approx(3.0 / np.log(10.0), abs=1e-9)

    def test_predict_matches_model(self):
        fit = fit_log_regression([1.0, 2.0, 4.0, 8.0], [1.0, 2.0, 3.0, 4.0])
        predicted = fit.predict(np.array([1.0, 8.0]))
        assert predicted[0] == pytest.approx(fit.alpha)
        assert predicted[1] == pytest.approx(fit.alpha + fit.beta * np.log(8.0))

    def test_non_positive_and_non_finite_points_dropped(self):
        x = [0.0, -1.0, np.nan, 1.0, np.e, np.e**2]
        cr = [99.0, 99.0, 99.0, 1.0, 2.0, 3.0]
        fit = fit_log_regression(x, cr)
        assert fit.n_points == 3
        assert fit.beta == pytest.approx(1.0, abs=1e-9)

    def test_weighted_fit(self):
        x = np.array([1.0, np.e, np.e**2, np.e**3])
        cr = np.array([0.0, 1.0, 2.0, 30.0])
        unweighted = fit_log_regression(x, cr)
        weighted = fit_log_regression(x, cr, weights=[1.0, 1.0, 1.0, 1e-9])
        # Down-weighting the outlier recovers the clean slope of 1.
        assert abs(weighted.beta - 1.0) < abs(unweighted.beta - 1.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_log_regression([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_log_regression([0.0, -1.0], [2.0, 3.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_log_regression([1.0, 2.0], [1.0])

    def test_invalid_log_base_rejected(self):
        with pytest.raises(ValueError):
            fit_log_regression([1.0, 2.0], [1.0, 2.0], log_base=1.0)

    @given(
        alpha=st.floats(min_value=-10, max_value=10),
        beta=st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_recovery_property(self, alpha, beta):
        x = np.array([1.0, 2.0, 5.0, 10.0, 30.0, 100.0])
        cr = alpha + beta * np.log(x)
        fit = fit_log_regression(x, cr)
        assert fit.alpha == pytest.approx(alpha, abs=1e-6)
        assert fit.beta == pytest.approx(beta, abs=1e-6)
