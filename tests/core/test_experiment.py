"""Tests for repro.core.experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import (
    CorrelationStatistics,
    ExperimentConfig,
    measure_field,
    measure_statistics,
)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.compressors == ("sz", "zfp", "mgard")
        assert config.error_bounds == (1e-5, 1e-4, 1e-3, 1e-2)
        assert config.window == 32
        assert config.svd_energy == 0.99

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(compressors=())
        with pytest.raises(ValueError):
            ExperimentConfig(error_bounds=())
        with pytest.raises(ValueError):
            ExperimentConfig(error_bounds=(0.0,))
        with pytest.raises(ValueError):
            ExperimentConfig(window=2)
        with pytest.raises(ValueError):
            ExperimentConfig(svd_energy=1.5)


class TestMeasureStatistics:
    def test_all_statistics_computed_by_default(self, smooth_field):
        stats = measure_statistics(smooth_field)
        assert stats.global_variogram_range > 0
        assert np.isfinite(stats.std_local_variogram_range)
        assert np.isfinite(stats.std_local_svd_truncation)
        assert stats.field_variance == pytest.approx(float(np.var(smooth_field)))

    def test_toggles_disable_statistics(self, smooth_field):
        config = ExperimentConfig(
            compute_global_range=False,
            compute_local_variogram=False,
            compute_local_svd=False,
        )
        stats = measure_statistics(smooth_field, config)
        assert np.isnan(stats.global_variogram_range)
        assert np.isnan(stats.std_local_variogram_range)
        assert np.isnan(stats.std_local_svd_truncation)

    def test_small_field_skips_local_statistics(self):
        field = np.random.default_rng(0).normal(size=(16, 16))
        stats = measure_statistics(field)
        assert np.isnan(stats.std_local_variogram_range)
        assert np.isnan(stats.std_local_svd_truncation)
        assert np.isfinite(stats.global_variogram_range)

    def test_as_dict_keys(self):
        stats = CorrelationStatistics()
        keys = set(stats.as_dict())
        assert {
            "global_variogram_range",
            "std_local_variogram_range",
            "std_local_svd_truncation",
            "field_variance",
            "field_mean",
        } == keys


class TestMeasureField:
    def test_one_record_per_compressor_bound_pair(self, smooth_field):
        config = ExperimentConfig(
            compressors=("sz", "zfp"),
            error_bounds=(1e-3, 1e-2),
            compute_local_variogram=False,
            compute_local_svd=False,
        )
        records = measure_field(
            smooth_field, dataset="test", field_label="f0", config=config
        )
        assert len(records) == 4
        pairs = {(r.compressor, r.error_bound) for r in records}
        assert pairs == {("sz", 1e-3), ("sz", 1e-2), ("zfp", 1e-3), ("zfp", 1e-2)}

    def test_statistics_shared_across_records(self, smooth_field):
        config = ExperimentConfig(
            compressors=("sz",), error_bounds=(1e-3, 1e-2), compute_local_svd=False
        )
        records = measure_field(smooth_field, dataset="d", field_label="l", config=config)
        assert records[0].statistics is records[1].statistics

    def test_precomputed_statistics_reused(self, smooth_field):
        stats = CorrelationStatistics(global_variogram_range=42.0)
        config = ExperimentConfig(compressors=("sz",), error_bounds=(1e-2,))
        records = measure_field(
            smooth_field, dataset="d", field_label="l", config=config, statistics=stats
        )
        assert records[0].statistics.global_variogram_range == 42.0

    def test_record_flattening(self, smooth_field):
        config = ExperimentConfig(
            compressors=("sz",),
            error_bounds=(1e-2,),
            compute_local_variogram=False,
            compute_local_svd=False,
        )
        record = measure_field(
            smooth_field, dataset="d", field_label="l", config=config
        )[0]
        row = record.as_dict()
        assert row["dataset"] == "d"
        assert row["compressor"] == "sz"
        assert row["compression_ratio"] == pytest.approx(record.compression_ratio)
        assert "metric_psnr" in row
        assert "global_variogram_range" in row

    def test_compressor_options_applied(self, smooth_field):
        config = ExperimentConfig(
            compressors=("sz",),
            error_bounds=(1e-2,),
            compressor_options={"sz": {"predictors": ("lorenzo",)}},
            compute_local_variogram=False,
            compute_local_svd=False,
        )
        records = measure_field(smooth_field, dataset="d", field_label="l", config=config)
        assert records[0].metrics.bound_satisfied
