"""Tests for repro.core.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.pipeline import records_to_table, run_experiment, run_experiment_on_fields
from repro.datasets.registry import DatasetRegistry
from repro.utils.parallel import ParallelConfig

FAST_CONFIG = ExperimentConfig(
    compressors=("sz", "zfp"),
    error_bounds=(1e-3, 1e-2),
    compute_local_variogram=False,
    compute_local_svd=False,
)


def _toy_registry() -> DatasetRegistry:
    registry = DatasetRegistry()

    def factory(seed=None):
        rng = np.random.default_rng(seed)
        return [
            ("smooth", np.cumsum(np.cumsum(rng.normal(size=(48, 48)), axis=0), axis=1) / 100),
            ("rough", rng.normal(size=(48, 48))),
        ]

    registry.register("toy", factory)
    return registry


class TestRunExperiment:
    def test_record_count(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        # 2 fields x 2 compressors x 2 bounds
        assert len(result.records) == 8
        assert result.dataset == "toy"

    def test_filtering(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        sz_records = result.filter(compressor="sz")
        assert all(r.compressor == "sz" for r in sz_records)
        assert len(sz_records) == 4
        bound_records = result.filter(error_bound=1e-2)
        assert len(bound_records) == 4
        both = result.filter(compressor="zfp", error_bound=1e-3)
        assert len(both) == 2

    def test_compressors_and_bounds_properties(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        assert result.compressors == ["sz", "zfp"]
        assert result.error_bounds == [1e-3, 1e-2]

    def test_deterministic_given_seed(self):
        a = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=3)
        b = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=3)
        assert [r.compression_ratio for r in a.records] == [
            r.compression_ratio for r in b.records
        ]

    def test_parallel_matches_serial(self):
        serial = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=1)
        threaded = run_experiment(
            "toy",
            config=FAST_CONFIG,
            registry=_toy_registry(),
            seed=1,
            parallel=ParallelConfig(workers=2, use_processes=False),
        )
        assert [r.compression_ratio for r in serial.records] == [
            r.compression_ratio for r in threaded.records
        ]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope", registry=_toy_registry())


class TestRunExperimentOnFields:
    def test_explicit_fields(self, smooth_field, rough_field):
        result = run_experiment_on_fields(
            [("a", smooth_field), ("b", rough_field)], dataset="explicit", config=FAST_CONFIG
        )
        assert len(result.records) == 8
        labels = {r.field_label for r in result.records}
        assert labels == {"a", "b"}

    def test_empty_field_list(self):
        result = run_experiment_on_fields([], dataset="empty", config=FAST_CONFIG)
        assert result.records == ()


class TestRecordsToTable:
    def test_column_alignment(self, smooth_field):
        result = run_experiment_on_fields(
            [("a", smooth_field)], dataset="t", config=FAST_CONFIG
        )
        table = records_to_table(result.records)
        n = len(result.records)
        assert all(len(column) == n for column in table.values())
        assert set(table["compressor"]) == {"sz", "zfp"}

    def test_empty_records(self):
        assert records_to_table([]) == {}
