"""Tests for repro.core.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.pipeline import (
    ExperimentCache,
    records_to_table,
    run_experiment,
    run_experiment_on_fields,
)
from repro.datasets.registry import DatasetRegistry
from repro.utils.parallel import ParallelConfig

FAST_CONFIG = ExperimentConfig(
    compressors=("sz", "zfp"),
    error_bounds=(1e-3, 1e-2),
    compute_local_variogram=False,
    compute_local_svd=False,
)


def _toy_registry() -> DatasetRegistry:
    registry = DatasetRegistry()

    def factory(seed=None):
        rng = np.random.default_rng(seed)
        return [
            ("smooth", np.cumsum(np.cumsum(rng.normal(size=(48, 48)), axis=0), axis=1) / 100),
            ("rough", rng.normal(size=(48, 48))),
        ]

    registry.register("toy", factory)
    return registry


class TestRunExperiment:
    def test_record_count(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        # 2 fields x 2 compressors x 2 bounds
        assert len(result.records) == 8
        assert result.dataset == "toy"

    def test_filtering(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        sz_records = result.filter(compressor="sz")
        assert all(r.compressor == "sz" for r in sz_records)
        assert len(sz_records) == 4
        bound_records = result.filter(error_bound=1e-2)
        assert len(bound_records) == 4
        both = result.filter(compressor="zfp", error_bound=1e-3)
        assert len(both) == 2

    def test_compressors_and_bounds_properties(self):
        result = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=0)
        assert result.compressors == ["sz", "zfp"]
        assert result.error_bounds == [1e-3, 1e-2]

    def test_deterministic_given_seed(self):
        a = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=3)
        b = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=3)
        assert [r.compression_ratio for r in a.records] == [
            r.compression_ratio for r in b.records
        ]

    def test_parallel_matches_serial(self):
        serial = run_experiment("toy", config=FAST_CONFIG, registry=_toy_registry(), seed=1)
        threaded = run_experiment(
            "toy",
            config=FAST_CONFIG,
            registry=_toy_registry(),
            seed=1,
            parallel=ParallelConfig(workers=2, use_processes=False),
        )
        assert [r.compression_ratio for r in serial.records] == [
            r.compression_ratio for r in threaded.records
        ]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope", registry=_toy_registry())


class TestRunExperimentOnFields:
    def test_explicit_fields(self, smooth_field, rough_field):
        result = run_experiment_on_fields(
            [("a", smooth_field), ("b", rough_field)], dataset="explicit", config=FAST_CONFIG
        )
        assert len(result.records) == 8
        labels = {r.field_label for r in result.records}
        assert labels == {"a", "b"}

    def test_empty_field_list(self):
        result = run_experiment_on_fields([], dataset="empty", config=FAST_CONFIG)
        assert result.records == ()


class TestExperimentCache:
    def test_counters_track_hits_misses_evictions(self):
        cache = ExperimentCache(max_entries=2)
        a = ExperimentCache.key("d", "a", np.zeros((4, 4)), "c")
        b = ExperimentCache.key("d", "b", np.ones((4, 4)), "c")
        c = ExperimentCache.key("d", "c", np.full((4, 4), 2.0), "c")
        assert cache.get(a) is None  # miss
        cache.put(a, (1,))
        cache.put(b, (2,))
        assert cache.get(a) == (1,)  # hit
        cache.put(c, (3,))  # evicts b (a was just used)
        assert cache.get(b) is None
        counters = cache.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 2
        assert counters["evictions"] == 1
        assert counters["entries"] == 2
        cache.clear()
        assert cache.counters() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }

    def test_no_key_collision_between_2d_and_3d_same_bytes(self):
        """Same raw bytes, different shape handling: must key apart.

        A (64, 64) plane of zeros and a (16, 16, 16) cube of zeros have
        byte-identical buffers; a key that hashed only content would
        silently serve a 2D measurement for a 3D request (and vice versa).
        """

        plane = np.zeros((64, 64))
        cube = np.zeros((16, 16, 16))
        assert plane.tobytes() == cube.tobytes()
        key_2d = ExperimentCache.key("d", "l", plane, "cfg")
        key_3d = ExperimentCache.key("d", "l", cube, "cfg")
        assert key_2d != key_3d
        cache = ExperimentCache()
        cache.put(key_2d, ("2d-records",))
        assert cache.get(key_3d) is None

    def test_key_components_are_delimited(self):
        """Adjacent string components must not be able to merge."""

        field = np.zeros((4, 4))
        assert ExperimentCache.key("ab", "c", field, "") != ExperimentCache.key(
            "a", "bc", field, ""
        )
        assert ExperimentCache.key("d", "lcfg", field, "") != ExperimentCache.key(
            "d", "l", field, "cfg"
        )


class TestRecordsToTable:
    def test_column_alignment(self, smooth_field):
        result = run_experiment_on_fields(
            [("a", smooth_field)], dataset="t", config=FAST_CONFIG
        )
        table = records_to_table(result.records)
        n = len(result.records)
        assert all(len(column) == n for column in table.values())
        assert set(table["compressor"]) == {"sz", "zfp"}

    def test_empty_records(self):
        assert records_to_table([]) == {}
