"""Tests for repro.core.predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import CompressionRecord, CorrelationStatistics
from repro.core.predictor import CompressionRatioPredictor
from repro.pressio.metrics import CompressionMetrics


def _metrics(cr: float) -> CompressionMetrics:
    return CompressionMetrics(
        compression_ratio=cr,
        bit_rate=64.0 / cr,
        max_abs_error=1e-4,
        rmse=1e-5,
        psnr=80.0,
        value_range=1.0,
        error_bound=1e-3,
        bound_satisfied=True,
    )


def _record(compressor: str, bound: float, cr: float, global_range: float) -> CompressionRecord:
    return CompressionRecord(
        dataset="synthetic",
        field_label=f"a{global_range}",
        compressor=compressor,
        error_bound=bound,
        compression_ratio=cr,
        metrics=_metrics(cr),
        statistics=CorrelationStatistics(
            global_variogram_range=global_range,
            std_local_variogram_range=global_range / 3.0,
            std_local_svd_truncation=2.0 / global_range,
        ),
    )


def _synthetic_records(compressor="sz", alpha=20.0, beta=3.0, bound_coeff=2.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for global_range in (2.0, 4.0, 8.0, 16.0, 32.0):
        for bound in (1e-4, 1e-3, 1e-2):
            cr = (
                alpha
                + beta * np.log(global_range)
                + bound_coeff * np.log10(bound)
                + (rng.normal(0, noise) if noise else 0.0)
            )
            records.append(_record(compressor, bound, max(cr, 0.1), global_range))
    return records


class TestCompressionRatioPredictor:
    def test_fits_synthetic_linear_model_exactly(self):
        records = _synthetic_records()
        predictor = CompressionRatioPredictor()
        reports = predictor.fit(records)
        assert len(reports) == 1
        report = reports[0]
        assert report.compressor == "sz"
        assert report.r_squared == pytest.approx(1.0, abs=1e-9)
        predicted = predictor.predict(records)
        actual = np.array([r.compression_ratio for r in records])
        np.testing.assert_allclose(predicted, actual, atol=1e-8)

    def test_noise_degrades_but_keeps_explanatory_power(self):
        records = _synthetic_records(noise=0.5, seed=1)
        reports = CompressionRatioPredictor().fit(records)
        assert 0.7 < reports[0].r_squared < 1.0

    def test_multiple_compressors_get_separate_models(self):
        records = _synthetic_records("sz") + _synthetic_records("zfp", beta=1.0)
        predictor = CompressionRatioPredictor()
        reports = predictor.fit(records)
        assert {r.compressor for r in reports} == {"sz", "zfp"}
        assert predictor.fitted_compressors == ["sz", "zfp"]

    def test_predict_unknown_compressor_raises(self):
        predictor = CompressionRatioPredictor()
        predictor.fit(_synthetic_records("sz"))
        with pytest.raises(KeyError):
            predictor.predict(_synthetic_records("zfp"))

    def test_feature_subset(self):
        records = _synthetic_records()
        predictor = CompressionRatioPredictor(
            features=("log_global_variogram_range", "log10_error_bound")
        )
        reports = predictor.fit(records)
        assert set(reports[0].coefficients) == {
            "intercept",
            "log_global_variogram_range",
            "log10_error_bound",
        }

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            CompressionRatioPredictor(features=("entropy",))

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            CompressionRatioPredictor().fit([])

    def test_nan_features_are_dropped_from_design(self):
        records = _synthetic_records()
        # Knock out the SVD statistic everywhere: the model should still fit
        # using the remaining features.
        records = [
            CompressionRecord(
                dataset=r.dataset,
                field_label=r.field_label,
                compressor=r.compressor,
                error_bound=r.error_bound,
                compression_ratio=r.compression_ratio,
                metrics=r.metrics,
                statistics=CorrelationStatistics(
                    global_variogram_range=r.statistics.global_variogram_range,
                    std_local_variogram_range=r.statistics.std_local_variogram_range,
                    std_local_svd_truncation=float("nan"),
                ),
            )
            for r in records
        ]
        reports = CompressionRatioPredictor().fit(records)
        assert "log_std_local_svd_truncation" not in reports[0].coefficients
        assert reports[0].r_squared > 0.99
