"""Tests for repro.core.figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.figures import (
    figure1_variogram_anatomy,
    figure2_dataset_gallery,
    figure3_global_range_gaussian,
    figure4_global_range_miranda,
    series_from_result,
)
from repro.core.pipeline import run_experiment
from repro.datasets.registry import default_registry

# Small shared setup so the figure tests stay fast: tiny fields, two
# compressors, two bounds.
FAST_CONFIG = ExperimentConfig(
    compressors=("sz", "zfp"),
    error_bounds=(1e-3, 1e-2),
    compute_local_variogram=False,
    compute_local_svd=False,
)
SMALL_REGISTRY = default_registry(gaussian_shape=(64, 64), miranda_shape=(8, 64, 64))


@pytest.fixture(scope="module")
def gaussian_single_result():
    return run_experiment(
        "gaussian-single", config=FAST_CONFIG, registry=SMALL_REGISTRY, seed=0
    )


class TestFigure1:
    def test_returns_variogram_and_fit(self):
        result = figure1_variogram_anatomy(shape=(64, 64), correlation_range=8.0, seed=0)
        assert len(result["lags"]) == len(result["semivariance"])
        fitted = result["fitted"]
        assert fitted.range > 0
        assert fitted.sill > 0
        # The fitted range must be in the vicinity of the generative range.
        assert fitted.range == pytest.approx(8.0, rel=0.5)

    def test_semivariance_increases_with_lag_initially(self):
        result = figure1_variogram_anatomy(shape=(64, 64), correlation_range=12.0, seed=1)
        values = result["semivariance"]
        assert values[0] < values[len(values) // 2]


class TestFigure2:
    def test_gallery_covers_all_datasets(self):
        gallery = figure2_dataset_gallery(registry=SMALL_REGISTRY, seed=0)
        assert {"gaussian-single", "gaussian-multi", "miranda"} <= set(gallery)
        for entries in gallery.values():
            assert len(entries) >= 1
            for entry in entries:
                assert entry["rows"] > 0 and entry["cols"] > 0
                assert np.isfinite(entry["std"])


class TestSeriesFromResult:
    def test_one_series_per_compressor_bound(self, gaussian_single_result):
        series = series_from_result(
            gaussian_single_result, "global_variogram_range", figure="figure3"
        )
        assert len(series) == 2 * 2
        for entry in series:
            assert entry.n_points == len(SMALL_REGISTRY.create("gaussian-single", seed=0))
            assert entry.figure == "figure3"

    def test_max_error_bound_filter(self, gaussian_single_result):
        series = series_from_result(
            gaussian_single_result,
            "global_variogram_range",
            figure="figure4",
            compressors=["sz"],
            max_error_bound=1e-2,
        )
        assert all(s.error_bound < 1e-2 for s in series)

    def test_unknown_statistic_rejected(self, gaussian_single_result):
        with pytest.raises(ValueError):
            series_from_result(gaussian_single_result, "entropy", figure="x")

    def test_legend_label_contains_coefficients(self, gaussian_single_result):
        series = series_from_result(
            gaussian_single_result, "global_variogram_range", figure="figure3"
        )
        label = series[0].legend_label()
        assert "alpha=" in label and "beta=" in label


class TestFigure3:
    def test_structure_and_positive_slopes(self, gaussian_single_result):
        multi_result = run_experiment(
            "gaussian-multi", config=FAST_CONFIG, registry=SMALL_REGISTRY, seed=0
        )
        output = figure3_global_range_gaussian(
            results=(gaussian_single_result, multi_result)
        )
        assert set(output) == {"single", "multi"}
        # On single-range fields, SZ and ZFP must show an increasing
        # CR-vs-range relationship (beta > 0) at every bound.
        for series in output["single"]:
            if series.compressor in ("sz", "zfp") and series.fit is not None:
                assert series.fit.beta > 0


class TestFigure4:
    def test_miranda_series_and_sz_restriction(self):
        result = run_experiment(
            "miranda", config=FAST_CONFIG, registry=SMALL_REGISTRY, seed=0
        )
        output = figure4_global_range_miranda(result=result)
        assert set(output) == {"all", "sz_restricted"}
        assert all(s.compressor == "sz" for s in output["sz_restricted"])
        assert all(s.error_bound < 1e-2 for s in output["sz_restricted"])
        assert len(output["all"]) == 4
