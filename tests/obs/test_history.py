"""Metrics history ring buffer: sampling, rates, quantiles, windowing."""

from __future__ import annotations

import math
import time

import pytest

from repro.obs.history import MetricsHistory
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


def _history(registry, **kwargs) -> MetricsHistory:
    kwargs.setdefault("interval", 0.05)
    kwargs.setdefault("capacity", 8)
    return MetricsHistory((registry,), **kwargs)


class TestSampling:
    def test_sample_now_records_counters_gauges_histograms(self, registry):
        registry.counter("repro_t_total", 3)
        registry.gauge("repro_t_active", 2)
        registry.observe("repro_t_seconds", 0.02)
        history = _history(registry)
        point = history.sample_now()
        assert point.counters["repro_t_total"] == 3
        assert point.gauges["repro_t_active"] == 2
        assert "repro_t_seconds" in point.histograms

    def test_capacity_bounds_the_ring(self, registry):
        history = _history(registry, capacity=3)
        for _ in range(10):
            history.sample_now()
        assert len(history.points()) == 3

    def test_multiple_registries_merge(self, registry):
        other = MetricsRegistry()
        registry.counter("repro_a_total", 1)
        other.counter("repro_b_total", 2)
        history = MetricsHistory((registry, other), interval=1, capacity=4)
        point = history.sample_now()
        assert point.counters["repro_a_total"] == 1
        assert point.counters["repro_b_total"] == 2

    def test_collectors_run_on_sample(self, registry):
        calls = []

        def collector(reg):
            calls.append(1)
            reg.set_counter("repro_live_total", len(calls))

        registry.register_collector(collector)
        history = _history(registry)
        point = history.sample_now()
        assert calls
        assert point.counters["repro_live_total"] >= 1

    @pytest.mark.parametrize(
        "kwargs", ({"interval": 0.0}, {"interval": -1}, {"capacity": 1})
    )
    def test_bad_construction_rejected(self, registry, kwargs):
        with pytest.raises(ValueError):
            _history(registry, **kwargs)


class TestSeries:
    def test_counters_become_rates(self, registry):
        history = _history(registry)
        registry.counter("repro_t_total", 10)
        history.sample_now()
        time.sleep(0.02)
        registry.counter("repro_t_total", 10)
        history.sample_now()
        series = history.series()
        last = series["points"][-1]
        dt = history.points()[-1].mono - history.points()[0].mono
        assert last["rates"]["repro_t_total"] == pytest.approx(10 / dt)

    def test_first_point_has_no_rates(self, registry):
        registry.counter("repro_t_total", 5)
        history = _history(registry)
        history.sample_now()
        series = history.series()
        assert series["points"][0]["rates"] == {}

    def test_counter_reset_clamps_to_zero(self, registry):
        history = _history(registry)
        registry.counter("repro_t_total", 10)
        history.sample_now()
        registry.reset()
        registry.counter("repro_t_total", 1)  # restarted from scratch
        history.sample_now()
        last = history.series()["points"][-1]
        assert last["rates"]["repro_t_total"] == 0.0

    def test_gauges_are_values_not_rates(self, registry):
        history = _history(registry)
        registry.gauge("repro_t_active", 4)
        history.sample_now()
        registry.gauge("repro_t_active", 7)
        history.sample_now()
        points = history.series()["points"]
        assert points[0]["gauges"]["repro_t_active"] == 4
        assert points[1]["gauges"]["repro_t_active"] == 7

    def test_histogram_quantiles_use_the_tick_delta(self, registry):
        history = _history(registry)
        for _ in range(100):
            registry.observe("repro_t_seconds", 0.003)
        history.sample_now()
        time.sleep(0.01)
        for _ in range(100):
            registry.observe("repro_t_seconds", 0.8)
        history.sample_now()
        last = history.series()["points"][-1]
        q = last["quantiles"]["repro_t_seconds"]
        # Only the second tick's slow observations count: p50 sits in the
        # (0.5, 1.0] bucket, nowhere near the first tick's 3ms.
        assert q["p50"] > 0.5
        assert q["count"] == 200.0
        assert q["rate"] > 0

    def test_idle_tick_falls_back_to_cumulative_quantiles(self, registry):
        history = _history(registry)
        registry.observe("repro_t_seconds", 0.003)
        history.sample_now()
        history.sample_now()  # nothing observed in between
        last = history.series()["points"][-1]
        q = last["quantiles"]["repro_t_seconds"]
        assert not math.isnan(q["p50"])
        assert q["rate"] == 0.0

    def test_window_filters_old_points_but_keeps_their_rates(self, registry):
        history = _history(registry)
        registry.counter("repro_t_total", 5)
        history.sample_now()
        time.sleep(0.15)
        registry.counter("repro_t_total", 5)
        history.sample_now()
        series = history.series(window=0.1)
        assert len(series["points"]) == 1
        # The surviving point still rates against the excluded one.
        assert series["points"][0]["rates"]["repro_t_total"] > 0

    def test_series_is_json_shaped(self, registry):
        registry.counter("repro_t_total", 1)
        history = _history(registry)
        history.sample_now()
        series = history.series(window=60)
        assert series["interval"] == history.interval
        assert series["capacity"] == history.capacity
        assert series["window"] == 60
        point = series["points"][0]
        assert {"age", "ts", "rates", "gauges", "quantiles"} <= set(point)


class TestLifecycle:
    def test_ticker_thread_samples_on_interval(self, registry):
        history = _history(registry, interval=0.02)
        history.start()
        try:
            time.sleep(0.15)
        finally:
            history.stop()
        assert len(history.points()) >= 3  # startup point + ticks

    def test_start_twice_raises(self, registry):
        history = _history(registry)
        history.start()
        try:
            with pytest.raises(RuntimeError):
                history.start()
        finally:
            history.stop()

    def test_stop_without_start_is_a_noop(self, registry):
        _history(registry).stop()

    def test_ensure_fresh_samples_only_when_stale(self, registry):
        history = _history(registry, interval=30.0)
        history.ensure_fresh()  # empty ring -> first sample
        assert len(history.points()) == 1
        history.ensure_fresh()  # fresh (age << 30s) -> no new point
        assert len(history.points()) == 1
        history.ensure_fresh(max_age=0.0)  # forced
        assert len(history.points()) == 2
