"""Trace round-trip through the volume pipeline: worker spans survive
the pool boundary and re-parent under the submitting wave span, for both
the serial and process-pool paths, halo on and off."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.miranda import generate_miranda_like_volume
from repro.obs.trace import Tracer, install_tracer
from repro.utils.parallel import ParallelConfig
from repro.volumes.pipeline import compress_volume, decompress_volume

BOUND = 1e-3


@pytest.fixture(scope="module")
def volume() -> np.ndarray:
    return generate_miranda_like_volume((16, 16, 16), seed=3)


def _trace_compress(volume, *, parallel=None, halo=False) -> Tracer:
    tracer = Tracer()
    with install_tracer(tracer):
        compressed = compress_volume(
            volume,
            "sz",
            BOUND,
            tile_shape=(8, 8, 8),
            parallel=parallel,
            halo=halo,
            cache=False,
        )
    assert compressed.n_tiles == 8
    return tracer


def _assert_tree(tracer: Tracer, *, n_tiles: int) -> None:
    spans = tracer.spans()
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == ["volume.compress"]

    waves = [s for s in spans if s.name == "volume.wave"]
    assert waves, "expected at least one wave span"
    assert {w.parent_id for w in waves} == {roots[0].span_id}

    tiles = [s for s in spans if s.name == "volume.tile"]
    assert len(tiles) == n_tiles
    wave_ids = {w.span_id for w in waves}
    assert {t.parent_id for t in tiles} <= wave_ids
    # Each tile runs on its own display lane, named after wave and slot.
    assert all(t.lane.startswith("wave") for t in tiles)

    tile_ids = {t.span_id for t in tiles}
    codec = [s for s in spans if s.name.startswith("codec.")]
    assert codec, "expected per-stage codec spans inside the tiles"
    for stage in codec:
        owner = by_id[stage.parent_id]
        while owner.name.startswith("codec."):
            owner = by_id[owner.parent_id]
        assert owner.span_id in tile_ids


class TestSerial:
    def test_grid_tree(self, volume):
        _assert_tree(_trace_compress(volume), n_tiles=8)

    def test_halo_tree_has_multiple_waves(self, volume):
        tracer = _trace_compress(volume, halo=True)
        _assert_tree(tracer, n_tiles=8)
        waves = {
            s.args.get("wave") for s in tracer.spans() if s.name == "volume.wave"
        }
        assert len(waves) > 1  # 2x2x2 wavefront order: waves 0..3


class TestProcessPool:
    def test_pool_spans_reparent(self, volume):
        tracer = _trace_compress(volume, parallel=ParallelConfig(workers=2))
        _assert_tree(tracer, n_tiles=8)

    def test_pool_halo_spans_reparent(self, volume):
        tracer = _trace_compress(
            volume, parallel=ParallelConfig(workers=2), halo=True
        )
        _assert_tree(tracer, n_tiles=8)


class TestDisabledPathUnchanged:
    def test_results_identical_with_and_without_tracing(self, volume):
        plain = compress_volume(
            volume, "sz", BOUND, tile_shape=(8, 8, 8), cache=False
        )
        tracer = Tracer()
        with install_tracer(tracer):
            traced = compress_volume(
                volume, "sz", BOUND, tile_shape=(8, 8, 8), cache=False
            )
        np.testing.assert_array_equal(
            decompress_volume(plain), decompress_volume(traced)
        )
        assert tracer.spans(), "tracer should have recorded the traced run"
