"""Sampling profiler: capture, aggregation, exports, lifecycle."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.profile import DEFAULT_HZ, SamplingProfiler, profile_for


def _spin_until(stop: threading.Event) -> None:
    while not stop.is_set():
        _busy_leaf()


def _busy_leaf() -> float:
    total = 0.0
    for i in range(2000):
        total += i * 0.5
    return total


@pytest.fixture()
def busy_thread():
    """A named worker thread spinning in a recognisable Python frame."""

    stop = threading.Event()
    thread = threading.Thread(
        target=_spin_until, args=(stop,), name="busy-worker", daemon=True
    )
    thread.start()
    yield thread
    stop.set()
    thread.join()


class TestCapture:
    def test_samples_accumulate_and_name_the_hot_function(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.3)
        assert profiler.sample_count > 10
        stacks = profiler.stacks()
        assert "busy-worker" in stacks
        labels = [
            label for label, _, _ in profiler.hot_functions(top=20)
        ]
        assert any("_busy_leaf" in label or "_spin_until" in label for label in labels)

    def test_thread_lanes_are_separate(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            # The main thread is busy too — both lanes must accumulate.
            deadline = time.perf_counter() + 0.3
            while time.perf_counter() < deadline:
                _busy_leaf()
        stacks = profiler.stacks()
        assert "busy-worker" in stacks
        assert "MainThread" in stacks

    def test_profiler_skips_its_own_sampling_thread(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.2)
        assert "repro-profiler" not in profiler.stacks()

    def test_elapsed_tracks_wall_time(self):
        profiler = SamplingProfiler(hz=50)
        assert profiler.elapsed == 0.0
        profiler.start()
        time.sleep(0.1)
        profiler.stop()
        assert 0.05 < profiler.elapsed < 5.0
        frozen = profiler.elapsed
        time.sleep(0.05)
        assert profiler.elapsed == frozen  # frozen after stop


class TestLifecycle:
    def test_single_shot_restart_raises(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        profiler.stop()
        with pytest.raises(RuntimeError):
            profiler.start()

    def test_stop_without_start_is_a_noop(self):
        profiler = SamplingProfiler()
        assert profiler.stop() is profiler

    @pytest.mark.parametrize("hz", (0, -1.0))
    def test_bad_rate_rejected(self, hz):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=hz)

    def test_profile_for_validates_duration(self):
        with pytest.raises(ValueError):
            profile_for(0.0)

    def test_profile_for_runs_and_stops(self):
        profiler = profile_for(0.1, hz=100)
        assert profiler.sample_count > 0
        assert profiler._thread is not None and not profiler._thread.is_alive()


class TestExports:
    def test_collapsed_format(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.2)
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack_part, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack_part  # lane;frame;...

    def test_speedscope_document_shape(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.25)
        doc = profiler.speedscope("unit test")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert doc["name"] == "unit test"
        frames = doc["shared"]["frames"]
        assert frames and all(
            {"name", "file", "line"} <= set(frame) for frame in frames
        )
        lanes = {profile["name"] for profile in doc["profiles"]}
        assert "busy-worker" in lanes
        for profile in doc["profiles"]:
            assert profile["type"] == "sampled"
            assert profile["unit"] == "seconds"
            assert len(profile["samples"]) == len(profile["weights"])
            for sample in profile["samples"]:
                for index in sample:
                    assert 0 <= index < len(frames)
            assert profile["endValue"] == pytest.approx(
                sum(profile["weights"])
            )
        assert doc["repro"]["hz"] == 200
        assert doc["repro"]["samples"] == profiler.sample_count

    def test_speedscope_weights_sum_to_sampled_time(self, busy_thread):
        with SamplingProfiler(hz=100) as profiler:
            time.sleep(0.3)
        doc = profiler.speedscope()
        lane = next(
            p for p in doc["profiles"] if p["name"] == "busy-worker"
        )
        # Each sample weighs 1/hz seconds; the lane total equals the
        # number of samples that saw the thread divided by the rate.
        assert sum(lane["weights"]) == pytest.approx(
            sum(
                n for n in profiler.stacks()["busy-worker"].values()
            ) / 100.0
        )

    def test_write_speedscope_is_loadable_json(self, busy_thread, tmp_path):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.15)
        out = tmp_path / "prof.speedscope.json"
        profiler.write_speedscope(str(out))
        doc = json.loads(out.read_text())
        assert doc["profiles"]

    def test_empty_profiler_exports_cleanly(self):
        profiler = SamplingProfiler()
        assert profiler.collapsed() == ""
        doc = profiler.speedscope()
        assert doc["profiles"] == []
        assert profiler.hot_functions() == []


class TestHotFunctions:
    def test_self_versus_total_attribution(self):
        profiler = SamplingProfiler(hz=100)
        # Synthesise deterministic stacks: parent calls leaf.
        parent = ("parent", "p.py", 1)
        leaf = ("leaf", "l.py", 10)
        profiler._counts["main"] = {
            (parent, leaf): 8,
            (parent,): 2,
        }
        rows = {label: (s, t) for label, s, t in profiler.hot_functions()}
        leaf_row = rows["leaf (l.py:10)"]
        parent_row = rows["parent (p.py:1)"]
        assert leaf_row == (8, 8)
        assert parent_row == (2, 10)
