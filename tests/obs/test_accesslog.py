"""Access-log size-based rotation: shifting, bounding, validation."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.accesslog import AccessLog


def _log_line(log: AccessLog, request_id: str = "r", path: str = "/x") -> None:
    log.log(
        request_id=request_id,
        method="GET",
        path=path,
        status=200,
        duration_ms=1.25,
        nbytes=64,
    )


def _lines(path) -> list:
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestRotation:
    def test_rotates_when_next_line_would_exceed_max_bytes(self, tmp_path):
        target = tmp_path / "access.log"
        log = AccessLog(str(target), max_bytes=256)
        try:
            while log.rotations == 0:
                _log_line(log)
        finally:
            log.close()
        assert (tmp_path / "access.log.1").exists()
        # Every file holds whole JSON lines — rotation never splits one.
        for name in ("access.log", "access.log.1"):
            for record in _lines(tmp_path / name):
                assert record["method"] == "GET"
        # The rotated file respects the bound; the live file is smaller.
        assert (tmp_path / "access.log.1").stat().st_size <= 256

    def test_backups_shift_and_oldest_is_dropped(self, tmp_path):
        target = tmp_path / "access.log"
        log = AccessLog(str(target), max_bytes=150, backups=2)
        try:
            count = 0
            while log.rotations < 4:
                _log_line(log, request_id=f"req-{count:04d}")
                count += 1
        finally:
            log.close()
        assert (tmp_path / "access.log.1").exists()
        assert (tmp_path / "access.log.2").exists()
        assert not (tmp_path / "access.log.3").exists()
        # .1 is newer than .2: its request ids come later in sequence.
        newest = _lines(tmp_path / "access.log.1")[0]["request_id"]
        older = _lines(tmp_path / "access.log.2")[0]["request_id"]
        assert newest > older

    def test_no_rotation_without_max_bytes(self, tmp_path):
        target = tmp_path / "access.log"
        log = AccessLog(str(target))
        try:
            for _ in range(50):
                _log_line(log)
        finally:
            log.close()
        assert log.rotations == 0
        assert not (tmp_path / "access.log.1").exists()
        assert len(_lines(target)) == 50

    def test_oversized_single_line_still_lands_whole(self, tmp_path):
        target = tmp_path / "access.log"
        log = AccessLog(str(target), max_bytes=16)  # smaller than any line
        try:
            _log_line(log)
            _log_line(log)
        finally:
            log.close()
        # Each line rotates the previous file out but is written intact.
        assert len(_lines(target)) == 1
        assert len(_lines(tmp_path / "access.log.1")) == 1

    def test_resumes_byte_accounting_across_reopen(self, tmp_path):
        target = tmp_path / "access.log"
        first = AccessLog(str(target), max_bytes=4096)
        _log_line(first)
        first.close()
        second = AccessLog(str(target), max_bytes=4096)
        try:
            assert second._nbytes == target.stat().st_size
            _log_line(second)
        finally:
            second.close()
        assert len(_lines(target)) == 2


class TestStreamsAndValidation:
    def test_stream_mode_never_rotates(self):
        buffer = io.StringIO()
        log = AccessLog("ignored", stream=buffer, max_bytes=8)
        for _ in range(10):
            _log_line(log)
        assert log.max_bytes is None
        assert log.rotations == 0
        assert len(buffer.getvalue().splitlines()) == 10

    @pytest.mark.parametrize("max_bytes", (0, -1))
    def test_nonpositive_max_bytes_rejected(self, tmp_path, max_bytes):
        with pytest.raises(ValueError):
            AccessLog(str(tmp_path / "a.log"), max_bytes=max_bytes)

    def test_backups_below_one_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            AccessLog(str(tmp_path / "a.log"), max_bytes=100, backups=0)
