"""Counter-name unification: every layer reports through the canonical
``repro_*`` registry names while its legacy dict keys stay as aliases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field
from repro.obs.metrics import REGISTRY
from repro.store import ArrayStore
from repro.volumes.pipeline import compress_volume


@pytest.fixture()
def field():
    return generate_gaussian_field((64, 64), correlation_range=8.0, seed=11)


class TestStoreInfo:
    def test_canonical_metrics_alongside_legacy_keys(self, tmp_path, field):
        store = ArrayStore.create(
            tmp_path / "s", chunk_shape=32, codec="sz", error_bound=1e-3
        )
        store.write(field)
        store.read((slice(0, 16), slice(0, 16)))
        info = store.info()

        metrics = info["metrics"]
        assert metrics["repro_store_chunks_decoded_total"] >= 1
        assert metrics["repro_store_orphaned_nbytes"] == info["orphaned_nbytes"]
        assert (
            metrics["repro_store_data_file_nbytes"] == info["data_file_nbytes"]
        )
        for quantity in ("hits", "misses", "evictions"):
            assert f'repro_cache_{quantity}_total{{cache="store-chunk"}}' in metrics

        # Legacy surfaces survive for one release: the attribute counter
        # and the old cache-counter dicts still carry the same numbers.
        assert store.chunks_decoded_total == (
            metrics["repro_store_chunks_decoded_total"]
        )
        assert info["store_cache_counters"]["hits"] == (
            metrics['repro_cache_hits_total{cache="store-chunk"}']
        )


class TestVolumeMetrics:
    def test_cache_counters_published_under_canonical_names(self):
        volume = generate_gaussian_field((16, 16), seed=3)
        cube = np.broadcast_to(volume, (16, 16, 16)).copy()
        compressed = compress_volume(cube, "sz", 1e-3, tile_shape=(8, 8, 8))

        legacy = compressed.cache_counters
        canonical = compressed.metrics
        assert set(legacy) == {
            "hits",
            "misses",
            "evictions",
            "in_call_duplicates",
        }
        for key, value in legacy.items():
            assert canonical[f'repro_cache_{key}_total{{cache="volume-tile"}}'] == value


class TestProcessRegistry:
    def test_library_collectors_feed_the_process_registry(self, tmp_path, field):
        store = ArrayStore.create(
            tmp_path / "reg", chunk_shape=32, codec="sz", error_bound=1e-3
        )
        store.write(field)
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_store_writes_total"] >= 1
        assert 'repro_cache_hits_total{cache="experiment"}' in snapshot
        assert 'repro_cache_hits_total{cache="store-chunk"}' in snapshot
        assert 'repro_cache_hits_total{cache="volume-tile"}' in snapshot
