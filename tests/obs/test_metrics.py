"""Metrics registry unit tests: series semantics, the Prometheus text
exposition contract, collectors, and the cache-counter naming bridge."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    publish_cache_counters,
    render_prometheus,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        reg.counter("repro_x_total", 4)
        assert reg.value("repro_x_total") == 5

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labels={"route": "read"})
        reg.counter("repro_x_total", labels={"route": "chunk"})
        reg.counter("repro_x_total", labels={"route": "read"})
        assert reg.value("repro_x_total", {"route": "read"}) == 2
        assert reg.value("repro_x_total", {"route": "chunk"}) == 1
        assert reg.value("repro_x_total") is None

    def test_set_counter_overwrites(self):
        reg = MetricsRegistry()
        reg.set_counter("repro_x_total", 10)
        reg.set_counter("repro_x_total", 12)
        assert reg.value("repro_x_total") == 12

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("repro_gate_active", 3)
        reg.gauge("repro_gate_active", 1)
        assert reg.value("repro_gate_active") == 1

    def test_reset_clears_series_keeps_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda r: r.gauge("repro_live", 7))
        reg.counter("repro_x_total")
        reg.reset()
        assert reg.value("repro_x_total") is None
        assert reg.snapshot()["repro_live"] == 7


class TestHistograms:
    def test_buckets_are_cumulative_in_render(self):
        reg = MetricsRegistry()
        for value in (0.03, 0.2, 9.0):
            reg.observe("repro_lat_seconds", value)
        text = reg.render()
        assert 'repro_lat_seconds_bucket{le="0.05"} 1' in text
        assert 'repro_lat_seconds_bucket{le="0.25"} 2' in text
        assert 'repro_lat_seconds_bucket{le="5"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 9.23" in text

    def test_le_label_renders_last_after_sorted_labels(self):
        reg = MetricsRegistry()
        reg.observe("repro_lat_seconds", 0.01, labels={"route": "read"})
        text = reg.render()
        assert 'repro_lat_seconds_bucket{route="read",le="0.01"} 1' in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExpositionContract:
    def test_help_type_and_ordering(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total", help="B things.")
        reg.counter("repro_a_total", help="A things.")
        reg.gauge("repro_level", 2.5, help="Level.")
        text = reg.render()
        lines = text.splitlines()
        assert "# HELP repro_a_total A things." in lines
        assert "# TYPE repro_a_total counter" in lines
        assert "# TYPE repro_level gauge" in lines
        assert lines.index("# TYPE repro_a_total counter") < lines.index(
            "# TYPE repro_b_total counter"
        )
        assert "repro_level 2.5" in lines
        assert text.endswith("\n")

    def test_first_help_wins(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", help="First.")
        reg.counter("repro_x_total", help="Second.")
        assert "# HELP repro_x_total First." in reg.render()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labels={"path": 'a"b\\c\nd'})
        assert '{path="a\\"b\\\\c\\nd"}' in reg.render()

    def test_integer_values_render_without_decimal(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", 3)
        assert "repro_x_total 3" in reg.render().splitlines()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_render_prometheus_concatenates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_a_total")
        b.counter("repro_b_total")
        text = render_prometheus((a, b))
        assert "repro_a_total 1" in text
        assert "repro_b_total 1" in text


class TestCollectors:
    def test_collectors_run_on_render_and_snapshot(self):
        reg = MetricsRegistry()
        state = {"hits": 0}
        reg.register_collector(
            lambda r: r.set_counter("repro_hits_total", state["hits"])
        )
        state["hits"] = 9
        assert reg.snapshot()["repro_hits_total"] == 9
        state["hits"] = 11
        assert "repro_hits_total 11" in reg.render()

    def test_duplicate_registration_ignored(self):
        reg = MetricsRegistry()
        calls = []

        def collect(r):
            calls.append(1)

        reg.register_collector(collect)
        reg.register_collector(collect)
        reg.snapshot()
        assert len(calls) == 1

    def test_snapshot_can_skip_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda r: r.gauge("repro_live", 1))
        assert "repro_live" not in reg.snapshot(run_collectors=False)


class TestCacheCounterBridge:
    def test_known_keys_map_unknown_keys_ignored(self):
        reg = MetricsRegistry()
        publish_cache_counters(
            reg,
            "hot-chunk",
            {
                "hits": 5,
                "misses": 2,
                "evictions": 1,
                "coalesced": 3,
                "entries": 4,
                "nbytes": 1024,
                "max_nbytes": 4096,
                "mystery": 99,
            },
        )
        labels = {"cache": "hot-chunk"}
        assert reg.value("repro_cache_hits_total", labels) == 5
        assert reg.value("repro_cache_misses_total", labels) == 2
        assert reg.value("repro_cache_evictions_total", labels) == 1
        assert reg.value("repro_cache_coalesced_total", labels) == 3
        assert reg.value("repro_cache_entries", labels) == 4
        assert reg.value("repro_cache_nbytes", labels) == 1024
        assert reg.value("repro_cache_max_nbytes", labels) == 4096
        assert all("mystery" not in key for key in reg.snapshot())

    def test_partial_dicts_publish_partially(self):
        reg = MetricsRegistry()
        publish_cache_counters(reg, "experiment", {"hits": 1, "misses": 0})
        assert reg.value("repro_cache_hits_total", {"cache": "experiment"}) == 1
        assert reg.value("repro_cache_entries", {"cache": "experiment"}) is None
