"""Tracer unit tests: nesting, the disabled no-op path, the worker
tuple protocol, adoption/re-parenting, and Chrome trace export."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.obs.trace import (
    MAIN_LANE,
    SPAN_TUPLE_VERSION,
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    span,
    traced,
    tracing_enabled,
    worker_capture,
)


class TestDisabled:
    def test_disabled_is_the_default(self):
        assert not tracing_enabled()
        assert active_tracer() is None

    def test_span_returns_shared_noop(self):
        first = span("anything", "cat", key="value")
        second = span("other")
        assert first is second  # one shared object, no allocation
        with first as handle:
            handle.add(extra=1)  # discards silently

    def test_traced_function_passes_through(self):
        @traced("work")
        def double(x):
            return 2 * x

        assert double(21) == 42


class TestNesting:
    def test_parent_child_and_siblings(self):
        tracer = Tracer()
        with install_tracer(tracer):
            with span("outer") as outer:
                outer.add(note="root")
                with span("first"):
                    pass
                with span("second"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["first"].parent_id == spans["outer"].span_id
        assert spans["second"].parent_id == spans["outer"].span_id
        assert spans["outer"].args == {"note": "root"}
        tree = tracer.span_tree()
        assert [s.name for s in tree[None]] == ["outer"]
        assert [s.name for s in tree[spans["outer"].span_id]] == [
            "first",
            "second",
        ]

    def test_install_is_restored_on_exit(self):
        tracer = Tracer()
        with install_tracer(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(f"outer-{label}"):
                barrier.wait(timeout=5)
                with tracer.span(f"inner-{label}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,), name=f"worker-{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in tracer.spans()}
        for i in range(2):
            assert spans[f"inner-{i}"].parent_id == spans[f"outer-{i}"].span_id
            assert spans[f"outer-{i}"].parent_id is None
            assert spans[f"inner-{i}"].lane == f"worker-{i}"

    def test_interleaved_asyncio_tasks_keep_their_own_subtrees(self):
        tracer = Tracer()

        async def request(label):
            with tracer.span(f"request-{label}"):
                await asyncio.sleep(0)  # force interleaving
                with tracer.span(f"stage-{label}"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(request("a"), request("b"))

        asyncio.run(main())
        spans = {s.name: s for s in tracer.spans()}
        for label in ("a", "b"):
            assert (
                spans[f"stage-{label}"].parent_id
                == spans[f"request-{label}"].span_id
            )


class TestTupleProtocol:
    def test_round_trip(self):
        original = Span(
            span_id=7,
            parent_id=3,
            name="codec.encode.predict",
            category="codec",
            start=12.5,
            duration=0.25,
            lane="wave1.tile2",
            args={"shape": "(64, 64)"},
        )
        raw = original.to_tuple()
        assert raw[0] == SPAN_TUPLE_VERSION
        assert Span.from_tuple(raw) == original

    def test_unknown_version_rejected(self):
        raw = (SPAN_TUPLE_VERSION + 1, 1, None, "x", "", 0.0, 0.0, "main", ())
        with pytest.raises(ValueError):
            Span.from_tuple(raw)


class TestAdopt:
    def _capture(self, start=100.0):
        worker = Tracer()
        with worker.span("tile") as tile:
            with worker.span("stage"):
                pass
        tuples = worker.export_tuples()
        # Rebase the capture to a known clock for shift assertions.
        rebased = []
        for raw in tuples:
            record = Span.from_tuple(raw)
            record.start = start + (record.start - worker.created_at)
            rebased.append(record.to_tuple())
        return rebased

    def test_roots_reparent_under_current_span(self):
        parent = Tracer()
        with parent.span("wave"):
            adopted = parent.adopt(self._capture(), lane="wave0.tile0")
        assert adopted == 2
        spans = {s.name: s for s in parent.spans()}
        assert spans["tile"].parent_id == spans["wave"].span_id
        assert spans["stage"].parent_id == spans["tile"].span_id
        assert spans["tile"].lane == "wave0.tile0"
        assert spans["stage"].lane == "wave0.tile0"

    def test_fresh_ids_never_collide(self):
        parent = Tracer()
        with parent.span("wave"):
            parent.adopt(self._capture(), lane="a")
            parent.adopt(self._capture(), lane="b")
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_unrelated_clock_is_shifted_to_submit_time(self):
        parent = Tracer()
        submit = 500.0
        parent.adopt(
            self._capture(start=100.0), lane="w", submit_time=submit
        )
        earliest = min(s.start for s in parent.spans())
        assert earliest == pytest.approx(submit)

    def test_shared_clock_is_trusted(self):
        parent = Tracer()
        parent.adopt(
            self._capture(start=600.0), lane="w", submit_time=500.0
        )
        earliest = min(s.start for s in parent.spans())
        assert earliest == pytest.approx(600.0)

    def test_empty_capture_is_a_noop(self):
        parent = Tracer()
        assert parent.adopt([], lane="w") == 0


class TestWorkerCapture:
    def test_serial_path_stashes_and_restores(self):
        outer = Tracer()
        with install_tracer(outer):
            with worker_capture() as inner:
                assert active_tracer() is inner
                with span("tile"):
                    pass
            assert active_tracer() is outer
        assert [s.name for s in inner.spans()] == ["tile"]
        assert outer.spans() == []  # nothing recorded twice


class TestChromeExport:
    def _traced_tracer(self):
        tracer = Tracer(process_label="test-proc")
        with tracer.span("outer", "cat", shape=(2, 3)):
            with tracer.span("inner"):
                pass
        tracer.adopt(
            [
                Span(
                    span_id=1,
                    parent_id=None,
                    name="tile",
                    category="volume",
                    start=tracer.created_at,
                    duration=0.001,
                    lane="ignored",
                    args={},
                ).to_tuple()
            ],
            lane="wave0.tile0",
        )
        return tracer

    def test_event_structure(self):
        events = self._traced_tracer().to_chrome_events()
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert events[: len(meta)] == meta  # metadata leads
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {MAIN_LANE, "wave0.tile0"}
        assert {e["name"] for e in complete} == {"outer", "inner", "tile"}
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"] == {"shape": "(2, 3)"}  # json-safe repr

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced_tracer().write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
