"""``repro top`` internals: exposition parsing and frame rendering."""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.top import parse_prometheus, render_frame


def _registry_text() -> str:
    registry = MetricsRegistry()
    registry.counter("repro_serve_requests_total", 120)
    registry.counter(
        "repro_serve_responses_total", 110, labels={"class": "2xx"}
    )
    registry.counter(
        "repro_serve_responses_total", 10, labels={"class": "5xx"}
    )
    registry.gauge("repro_serve_gate_active", 2)
    registry.gauge("repro_serve_gate_peak", 5)
    registry.gauge("repro_serve_gate_max_concurrency", 8)
    registry.counter(
        "repro_cache_hits_total", 30, labels={"cache": "hot-chunk"}
    )
    registry.counter(
        "repro_cache_misses_total", 10, labels={"cache": "hot-chunk"}
    )
    for _ in range(10):
        registry.observe(
            "repro_serve_request_seconds", 0.03, labels={"route": "read"}
        )
    return registry.render()


class TestParse:
    def test_round_trips_counters_and_gauges(self):
        scrape = parse_prometheus(_registry_text())
        assert scrape.value("repro_serve_requests_total") == 120
        assert (
            scrape.value('repro_serve_responses_total{class="2xx"}') == 110
        )
        assert scrape.value("repro_serve_gate_active") == 2

    def test_reassembles_histograms(self):
        scrape = parse_prometheus(_registry_text())
        key = 'repro_serve_request_seconds{route="read"}'
        hist = scrape.histograms[key]
        assert hist["count"] == 10
        assert abs(hist["sum"] - 0.3) < 1e-9
        bounds = [bound for bound, _ in hist["buckets"]]
        assert bounds == sorted(bounds)
        assert math.inf not in bounds  # +Inf folded into count
        # All observations were 0.03 -> p50 interpolates inside (.01,.05]
        q = scrape.quantile(key, 0.5)
        assert 0.01 < q <= 0.05

    def test_quantile_of_unknown_series_is_nan(self):
        scrape = parse_prometheus("")
        assert math.isnan(scrape.quantile("nope", 0.5))

    def test_ignores_comments_and_garbage(self):
        scrape = parse_prometheus(
            "# HELP x y\n# TYPE x counter\nnot a sample line\nx 5\n"
        )
        assert scrape.value("x") == 5


class TestRenderFrame:
    def test_single_scrape_shows_totals(self):
        scrape = parse_prometheus(_registry_text())
        frame = render_frame(scrape, title="t")
        assert frame.startswith("t\n")
        assert "120.0 total" in frame
        assert "gate: 2/8 (peak 5)" in frame
        assert "read" in frame
        assert "cache hot-chunk: 75.0% hit" in frame

    def test_two_scrapes_show_rates(self):
        early = MetricsRegistry()
        early.counter("repro_serve_requests_total", 100)
        late = MetricsRegistry()
        late.counter("repro_serve_requests_total", 150)
        frame = render_frame(
            parse_prometheus(late.render()),
            parse_prometheus(early.render()),
            dt=10.0,
        )
        assert "requests: 5.0/s" in frame

    def test_route_table_has_quantile_columns(self):
        frame = render_frame(parse_prometheus(_registry_text()))
        header = [
            line for line in frame.splitlines() if line.startswith("route")
        ]
        assert header and "p99 ms" in header[0]
