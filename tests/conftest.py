"""Shared fixtures for the test suite.

Fields are kept small (32-96 grid points per side) so the full suite runs
in seconds; the statistical behaviour under test (error bounds, variogram
recovery, monotonicity) does not depend on field size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import generate_gaussian_field, generate_multi_range_field
from repro.datasets.miranda import MirandaConfig, MirandaSurrogate


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smooth_field() -> np.ndarray:
    """Strongly correlated Gaussian field (range 16 on a 64x64 grid)."""

    return generate_gaussian_field((64, 64), correlation_range=16.0, seed=1)


@pytest.fixture(scope="session")
def rough_field() -> np.ndarray:
    """Weakly correlated Gaussian field (range 2 on a 64x64 grid)."""

    return generate_gaussian_field((64, 64), correlation_range=2.0, seed=2)


@pytest.fixture(scope="session")
def multi_range_field() -> np.ndarray:
    """Two-range Gaussian field (ranges 3 and 20 on a 64x64 grid)."""

    return generate_multi_range_field((64, 64), correlation_ranges=(3.0, 20.0), seed=3)


@pytest.fixture(scope="session")
def miranda_slice() -> np.ndarray:
    """One slice of a small Miranda-like surrogate volume."""

    surrogate = MirandaSurrogate(MirandaConfig(shape=(8, 64, 64)))
    slices = surrogate.generate_slices(seed=4, axis=0, count=3)
    return slices[1][1]


@pytest.fixture(scope="session")
def white_noise_field(rng: np.random.Generator) -> np.ndarray:
    """Uncorrelated Gaussian noise (the least compressible reference)."""

    return np.random.default_rng(7).normal(size=(64, 64))
