"""End-to-end integration tests: datasets -> statistics -> compressors -> analysis.

These tests exercise the full pipeline the way the benchmark harness does,
on deliberately small workloads, and assert the paper's qualitative
findings rather than exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.figures import series_from_result
from repro.core.limits import estimate_compressibility_plateau
from repro.core.pipeline import run_experiment_on_fields
from repro.core.predictor import CompressionRatioPredictor
from repro.core.regression import fit_log_regression
from repro.datasets.gaussian import generate_gaussian_field
from repro.utils.rng import derive_seeds


@pytest.fixture(scope="module")
def range_sweep_result():
    """CR measurements over a sweep of correlation ranges (the Fig. 3 workload)."""

    ranges = (2.0, 4.0, 8.0, 16.0, 32.0)
    seeds = derive_seeds(42, len(ranges))
    fields = [
        (f"a{r:g}", generate_gaussian_field((96, 96), r, seed=s))
        for r, s in zip(ranges, seeds)
    ]
    config = ExperimentConfig(
        compressors=("sz", "zfp", "mgard"),
        error_bounds=(1e-4, 1e-3, 1e-2),
        compute_local_variogram=False,
        compute_local_svd=False,
    )
    return run_experiment_on_fields(fields, dataset="gaussian-sweep", config=config)


class TestPaperQualitativeFindings:
    def test_cr_increases_with_correlation_range_for_sz_and_zfp(self, range_sweep_result):
        for compressor in ("sz", "zfp"):
            for bound in (1e-4, 1e-3, 1e-2):
                records = range_sweep_result.filter(compressor=compressor, error_bound=bound)
                x = [r.statistics.global_variogram_range for r in records]
                cr = [r.compression_ratio for r in records]
                fit = fit_log_regression(x, cr)
                assert fit.beta > 0, f"{compressor} at {bound} should have beta > 0"

    def test_larger_error_bound_gives_larger_cr(self, range_sweep_result):
        for compressor in ("sz", "zfp", "mgard"):
            for field_label in {r.field_label for r in range_sweep_result.records}:
                records = [
                    r
                    for r in range_sweep_result.filter(compressor=compressor)
                    if r.field_label == field_label
                ]
                records.sort(key=lambda r: r.error_bound)
                crs = [r.compression_ratio for r in records]
                assert crs == sorted(crs), f"{compressor} CR not monotone in bound"

    def test_sz_achieves_higher_cr_than_zfp_on_smooth_fields(self, range_sweep_result):
        # The paper's figures consistently show SZ reaching larger CRs than
        # ZFP on the Gaussian fields at equal absolute bounds.
        smooth_label = "a32"
        for bound in (1e-3, 1e-2):
            sz = [
                r.compression_ratio
                for r in range_sweep_result.filter(compressor="sz", error_bound=bound)
                if r.field_label == smooth_label
            ][0]
            zfp = [
                r.compression_ratio
                for r in range_sweep_result.filter(compressor="zfp", error_bound=bound)
                if r.field_label == smooth_label
            ][0]
            assert sz > zfp

    def test_regression_explains_sz_zfp_better_than_mgard(self, range_sweep_result):
        # MGARD's multilevel (global) structure makes its CR less tied to
        # the correlation-range statistic; its fit quality should not exceed
        # the best of SZ/ZFP.
        r2 = {}
        for compressor in ("sz", "zfp", "mgard"):
            values = []
            for bound in (1e-4, 1e-3, 1e-2):
                records = range_sweep_result.filter(compressor=compressor, error_bound=bound)
                x = [r.statistics.global_variogram_range for r in records]
                cr = [r.compression_ratio for r in records]
                values.append(fit_log_regression(x, cr).r_squared)
            r2[compressor] = float(np.mean(values))
        assert r2["mgard"] <= max(r2["sz"], r2["zfp"]) + 1e-9

    def test_series_extraction_and_prediction_pipeline(self, range_sweep_result):
        series = series_from_result(
            range_sweep_result, "global_variogram_range", figure="integration"
        )
        assert len(series) == 9  # 3 compressors x 3 bounds
        predictor = CompressionRatioPredictor(
            features=("log_global_variogram_range", "log10_error_bound")
        )
        reports = predictor.fit(range_sweep_result.records)
        # Correlation statistics + bound must explain the bulk of the CR
        # variance for the prediction-based compressors.
        by_name = {r.compressor: r for r in reports}
        assert by_name["sz"].r_squared > 0.6
        assert by_name["zfp"].r_squared > 0.6

    def test_plateau_detection_on_dense_range_sweep(self):
        # Dense sweep at one bound to look for CR saturation at large ranges.
        ranges = np.geomspace(1.5, 48.0, 10)
        seeds = derive_seeds(7, len(ranges))
        fields = [
            (f"a{r:.2f}", generate_gaussian_field((64, 64), float(r), seed=s))
            for r, s in zip(ranges, seeds)
        ]
        config = ExperimentConfig(
            compressors=("sz",),
            error_bounds=(1e-2,),
            compute_local_variogram=False,
            compute_local_svd=False,
        )
        result = run_experiment_on_fields(fields, dataset="dense", config=config)
        records = result.filter(compressor="sz", error_bound=1e-2)
        x = [r.statistics.global_variogram_range for r in records]
        cr = [r.compression_ratio for r in records]
        estimate = estimate_compressibility_plateau(x, cr, min_points=6)
        # Whether or not the plateau is reached on this small grid, the
        # estimator must return a consistent, finite diagnostic.
        assert np.isfinite(estimate.initial_slope)
        assert np.isfinite(estimate.final_slope)
        if estimate.detected:
            assert estimate.plateau_cr > 0


class TestCrossCompressorConsistency:
    def test_all_compressors_obey_bound_on_all_workloads(
        self, smooth_field, rough_field, multi_range_field, miranda_slice
    ):
        from repro.pressio.api import compress_and_measure

        for field in (smooth_field, rough_field, multi_range_field, miranda_slice):
            for name in ("sz", "zfp", "mgard"):
                for bound in (1e-4, 1e-2):
                    _, metrics = compress_and_measure(field, name, bound)
                    assert metrics.bound_satisfied
                    assert metrics.compression_ratio > 0.5
