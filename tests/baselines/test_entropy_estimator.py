"""Tests for repro.baselines.entropy_estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.entropy_estimator import entropy_cr_bound
from repro.compressors.sz import SZCompressor


class TestEntropyCrBound:
    def test_larger_bound_gives_larger_cr_bound(self, rough_field):
        assert entropy_cr_bound(rough_field, 1e-1) > entropy_cr_bound(rough_field, 1e-4)

    def test_constant_field_gives_huge_bound(self):
        assert entropy_cr_bound(np.full((16, 16), 1.0), 1e-3) > 1e5

    def test_float32_bits_parameter(self, rough_field):
        bound64 = entropy_cr_bound(rough_field, 1e-3, original_bits_per_value=64)
        bound32 = entropy_cr_bound(rough_field, 1e-3, original_bits_per_value=32)
        assert bound64 == pytest.approx(2.0 * bound32)

    def test_correlated_data_lets_sz_beat_the_marginal_entropy_bound(self, smooth_field):
        # The whole point of the paper: spatial correlation gives prediction-
        # based compressors headroom beyond the (correlation-blind) marginal
        # entropy bound.
        bound = 1e-3
        sz_cr = SZCompressor(bound).compression_ratio(smooth_field)
        marginal_bound = entropy_cr_bound(smooth_field, bound)
        assert sz_cr > marginal_bound

    def test_white_noise_stays_below_entropy_bound(self, white_noise_field):
        # Without spatial correlation there is nothing to predict: the
        # entropy of the quantized marginal is (close to) the real limit and
        # a practical compressor with per-stream overheads stays under it.
        bound = 1e-3
        sz_cr = SZCompressor(bound).compression_ratio(white_noise_field)
        marginal_bound = entropy_cr_bound(white_noise_field, bound)
        assert sz_cr < marginal_bound * 1.2

    def test_invalid_arguments(self, rough_field):
        with pytest.raises(ValueError):
            entropy_cr_bound(rough_field, 0.0)
        with pytest.raises(ValueError):
            entropy_cr_bound(rough_field, 1e-3, original_bits_per_value=0)
