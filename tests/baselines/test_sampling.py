"""Tests for repro.baselines.sampling_estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling_estimator import estimate_cr_by_sampling
from repro.compressors.sz import SZCompressor


class TestBlockSamplingEstimate:
    def test_reproducible_given_seed(self, smooth_field):
        a = estimate_cr_by_sampling(smooth_field, "sz", 1e-3, seed=0)
        b = estimate_cr_by_sampling(smooth_field, "sz", 1e-3, seed=0)
        assert a.estimated_cr == b.estimated_cr

    def test_estimate_correlates_with_true_cr(self):
        from repro.datasets.gaussian import generate_gaussian_field

        bound = 1e-3
        estimates, truths = [], []
        for a, seed in ((2.0, 0), (8.0, 1), (24.0, 2)):
            field = generate_gaussian_field((96, 96), a, seed=seed)
            estimates.append(
                estimate_cr_by_sampling(field, "sz", bound, n_blocks=12, seed=3).estimated_cr
            )
            truths.append(SZCompressor(bound).compression_ratio(field))
        # The estimator must preserve the ordering of compressibility.
        assert np.argsort(estimates).tolist() == np.argsort(truths).tolist()

    def test_result_fields(self, smooth_field):
        estimate = estimate_cr_by_sampling(
            smooth_field, "zfp", 1e-3, n_blocks=4, block_size=16, seed=0
        )
        assert estimate.compressor == "zfp"
        assert estimate.n_blocks == 4
        assert estimate.block_size == 16
        assert len(estimate.per_block_crs) == 4
        assert 0 < estimate.sampled_fraction <= 1.0
        assert estimate.cr_std >= 0

    def test_block_size_larger_than_field_rejected(self, smooth_field):
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 1e-3, block_size=128)

    def test_invalid_arguments(self, smooth_field):
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 0.0)
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 1e-3, n_blocks=0)

    def test_compressor_options_forwarded(self, smooth_field):
        estimate = estimate_cr_by_sampling(
            smooth_field, "sz", 1e-3, n_blocks=4, seed=0, predictors=("lorenzo",)
        )
        assert estimate.estimated_cr > 0
