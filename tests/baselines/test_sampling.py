"""Tests for repro.baselines.sampling_estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling_estimator import estimate_cr_by_sampling
from repro.compressors.sz import SZCompressor


class TestBlockSamplingEstimate:
    def test_reproducible_given_seed(self, smooth_field):
        a = estimate_cr_by_sampling(smooth_field, "sz", 1e-3, seed=0)
        b = estimate_cr_by_sampling(smooth_field, "sz", 1e-3, seed=0)
        assert a.estimated_cr == b.estimated_cr

    def test_estimate_correlates_with_true_cr(self):
        from repro.datasets.gaussian import generate_gaussian_field

        bound = 1e-3
        estimates, truths = [], []
        for a, seed in ((2.0, 0), (8.0, 1), (24.0, 2)):
            field = generate_gaussian_field((96, 96), a, seed=seed)
            estimates.append(
                estimate_cr_by_sampling(field, "sz", bound, n_blocks=12, seed=3).estimated_cr
            )
            truths.append(SZCompressor(bound).compression_ratio(field))
        # The estimator must preserve the ordering of compressibility.
        assert np.argsort(estimates).tolist() == np.argsort(truths).tolist()

    def test_result_fields(self, smooth_field):
        estimate = estimate_cr_by_sampling(
            smooth_field, "zfp", 1e-3, n_blocks=4, block_size=16, seed=0
        )
        assert estimate.compressor == "zfp"
        assert estimate.n_blocks == 4
        assert estimate.block_size == 16
        assert len(estimate.per_block_crs) == 4
        assert 0 < estimate.sampled_fraction <= 1.0
        assert estimate.cr_std >= 0

    def test_block_size_larger_than_field_rejected(self, smooth_field):
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 1e-3, block_size=128)

    def test_invalid_arguments(self, smooth_field):
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 0.0)
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(smooth_field, "sz", 1e-3, n_blocks=0)

    def test_compressor_options_forwarded(self, smooth_field):
        estimate = estimate_cr_by_sampling(
            smooth_field, "sz", 1e-3, n_blocks=4, seed=0, predictors=("lorenzo",)
        )
        assert estimate.estimated_cr > 0


class TestScales:
    def test_small_field_samples_base_and_double_scales(self, smooth_field):
        # 64x64 field, block 32: double tile fits, quad (128) does not.
        estimate = estimate_cr_by_sampling(smooth_field, "sz", 1e-3, seed=0)
        assert estimate.scales == (32, 64)

    def test_large_field_samples_quad_scale(self):
        from repro.datasets.gaussian import generate_gaussian_field

        field = generate_gaussian_field((128, 128), 8.0, seed=7)
        estimate = estimate_cr_by_sampling(field, "sz", 1e-3, seed=0)
        assert estimate.scales == (32, 64, 128)
        assert np.isfinite(estimate.estimated_cr) and estimate.estimated_cr > 0

    def test_quad_scale_can_be_disabled(self):
        from repro.datasets.gaussian import generate_gaussian_field

        field = generate_gaussian_field((128, 128), 8.0, seed=7)
        estimate = estimate_cr_by_sampling(
            field, "sz", 1e-3, seed=0, large_tile=False
        )
        assert estimate.scales == (32, 64)

    def test_uncorrected_form_samples_one_scale(self, smooth_field):
        estimate = estimate_cr_by_sampling(
            smooth_field, "sz", 1e-3, seed=0, overhead_correction=False
        )
        assert estimate.scales == (32,)
        assert estimate.overhead_bytes_per_block == 0.0

    def test_quad_scale_reduces_rough_field_sz_bias(self):
        """The ROADMAP open item: SZ under-estimation on rough fields.

        Cross-tile redundancy operates above the 64^2 calibration scale,
        so the quad-tile extrapolation must estimate SZ's CR on a rough
        field at least as accurately as the two-scale form.
        """

        from repro.datasets.gaussian import generate_gaussian_field

        field = generate_gaussian_field((128, 128), 2.0, seed=11)
        true_cr = SZCompressor(1e-3).compression_ratio(field)
        with_quad = estimate_cr_by_sampling(
            field, "sz", 1e-3, seed=0
        ).estimated_cr
        without = estimate_cr_by_sampling(
            field, "sz", 1e-3, seed=0, large_tile=False
        ).estimated_cr
        assert abs(with_quad - true_cr) <= abs(without - true_cr)


class TestVolumeSampling:
    def test_3d_estimation_round_trips(self):
        from repro.datasets.miranda import generate_miranda_like_volume

        volume = generate_miranda_like_volume((40, 40, 40), seed=5)
        estimate = estimate_cr_by_sampling(volume, "sz", 1e-3, n_blocks=6, seed=0)
        assert estimate.block_size == 16  # 3D default tile edge
        assert estimate.scales == (16, 32)
        assert np.isfinite(estimate.estimated_cr) and estimate.estimated_cr > 0

    def test_3d_estimate_tracks_true_cr(self):
        from repro.compressors.registry import make_compressor
        from repro.datasets.miranda import generate_miranda_like_volume

        volume = generate_miranda_like_volume((48, 48, 48), seed=6)
        true_cr = make_compressor("sz", 1e-3).compress(volume).compression_ratio
        estimate = estimate_cr_by_sampling(
            volume, "sz", 1e-3, n_blocks=8, seed=0
        ).estimated_cr
        assert 0.5 * true_cr <= estimate <= 2.0 * true_cr

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            estimate_cr_by_sampling(np.zeros((4, 4, 4, 4)), "sz", 1e-3)
