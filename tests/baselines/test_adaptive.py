"""Tests for repro.baselines.adaptive_selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.adaptive_selection import select_compressor


class TestSelectCompressor:
    def test_selected_is_a_candidate(self, smooth_field):
        result = select_compressor(smooth_field, 1e-3, seed=0)
        assert result.selected in ("sz", "zfp")
        assert set(result.estimated_crs) == {"sz", "zfp"}

    def test_verification_reports_accuracy_and_regret(self, smooth_field):
        result = select_compressor(smooth_field, 1e-3, seed=0, verify=True)
        assert result.true_crs is not None
        assert result.correct in (True, False)
        assert result.regret is not None and result.regret >= 0.0
        if result.correct:
            assert result.regret == pytest.approx(0.0)

    def test_entropy_statistic_reported(self, smooth_field):
        result = select_compressor(smooth_field, 1e-2, seed=0)
        assert result.quantized_entropy_bits >= 0.0

    def test_field_smaller_than_sampling_tile(self):
        # The default tile (48) must clamp to the field instead of raising.
        field = np.random.default_rng(4).normal(size=(32, 32))
        result = select_compressor(field, 1e-3, seed=0)
        assert result.selected in ("sz", "zfp")

    def test_single_candidate(self, smooth_field):
        result = select_compressor(smooth_field, 1e-3, candidates=("mgard",), seed=0)
        assert result.selected == "mgard"

    def test_empty_candidates_rejected(self, smooth_field):
        with pytest.raises(ValueError):
            select_compressor(smooth_field, 1e-3, candidates=())

    def test_selection_usually_correct_on_smooth_fields(self):
        from repro.datasets.gaussian import generate_gaussian_field

        correct = 0
        trials = 4
        for seed in range(trials):
            field = generate_gaussian_field((96, 96), 12.0, seed=seed)
            result = select_compressor(field, 1e-3, seed=seed, verify=True, n_blocks=10)
            correct += int(bool(result.correct))
        assert correct >= trials - 1
