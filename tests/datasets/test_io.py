"""Tests for repro.datasets.io."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.io import load_field, load_raw, save_field, save_raw


class TestRawIO:
    def test_roundtrip_float32(self, tmp_path):
        field = np.random.default_rng(0).normal(size=(12, 18)).astype(np.float32)
        path = tmp_path / "field.raw"
        save_raw(path, field, dtype="float32")
        loaded = load_raw(path, (12, 18), dtype="float32")
        np.testing.assert_allclose(loaded, field, rtol=1e-6)

    def test_roundtrip_float64(self, tmp_path):
        field = np.random.default_rng(1).normal(size=(7, 9))
        path = tmp_path / "field64.raw"
        save_raw(path, field, dtype="float64")
        loaded = load_raw(path, (7, 9), dtype="float64")
        np.testing.assert_array_equal(loaded, field)

    def test_sdrbench_layout_is_headerless_little_endian(self, tmp_path):
        field = np.arange(6, dtype=np.float32).reshape(2, 3)
        path = tmp_path / "sdr.raw"
        save_raw(path, field, dtype="float32")
        raw = path.read_bytes()
        assert len(raw) == 6 * 4
        np.testing.assert_array_equal(
            np.frombuffer(raw, dtype="<f4").reshape(2, 3), field
        )

    def test_wrong_shape_raises(self, tmp_path):
        field = np.zeros((4, 4), dtype=np.float32)
        path = tmp_path / "bad.raw"
        save_raw(path, field, dtype="float32")
        with pytest.raises(ValueError, match="expected"):
            load_raw(path, (5, 5), dtype="float32")

    def test_3d_volume_roundtrip(self, tmp_path):
        volume = np.random.default_rng(2).normal(size=(3, 4, 5)).astype(np.float32)
        path = tmp_path / "vol.raw"
        save_raw(path, volume, dtype="float32")
        loaded = load_raw(path, (3, 4, 5), dtype="float32")
        np.testing.assert_allclose(loaded, volume, rtol=1e-6)


class TestNpyIO:
    def test_roundtrip(self, tmp_path):
        field = np.random.default_rng(3).normal(size=(10, 11))
        path = tmp_path / "field.npy"
        save_field(path, field)
        np.testing.assert_array_equal(load_field(path), field)

    def test_suffix_is_added(self, tmp_path):
        field = np.ones((2, 2))
        path = tmp_path / "noext"
        save_field(path, field)
        assert (tmp_path / "noext.npy").exists()
