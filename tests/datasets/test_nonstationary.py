"""Tests for repro.datasets.nonstationary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.nonstationary import (
    NonstationaryFieldConfig,
    blob_range_map,
    generate_nonstationary_field,
    gradient_range_map,
    split_range_map,
)
from repro.stats.local import local_variogram_ranges, std_local_variogram_range
from repro.stats.variogram_models import estimate_variogram_range


class TestRangeMaps:
    def test_gradient_map_bounds_and_monotonicity(self):
        range_map = gradient_range_map((40, 30), 2.0, 20.0, axis=0)
        assert range_map.shape == (40, 30)
        assert range_map.min() == pytest.approx(2.0)
        assert range_map.max() == pytest.approx(20.0)
        assert np.all(np.diff(range_map[:, 0]) >= 0)

    def test_gradient_map_axis_1(self):
        range_map = gradient_range_map((20, 50), 1.0, 10.0, axis=1)
        assert np.all(np.diff(range_map[0, :]) >= 0)
        np.testing.assert_array_equal(range_map[0], range_map[-1])

    def test_blob_map_centre_is_long_range(self):
        range_map = blob_range_map((64, 64), 3.0, 24.0)
        assert range_map[32, 32] > 20.0
        assert range_map[0, 0] < 5.0
        assert np.all(range_map >= 3.0 - 1e-9)
        assert np.all(range_map <= 24.0 + 1e-9)

    def test_split_map_halves(self):
        range_map = split_range_map((10, 20), 2.0, 16.0)
        assert np.all(range_map[:, :10] == 2.0)
        assert np.all(range_map[:, 10:] == 16.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gradient_range_map((10, 10), -1.0, 5.0)
        with pytest.raises(ValueError):
            gradient_range_map((10, 10), 1.0, 5.0, axis=2)
        with pytest.raises(ValueError):
            blob_range_map((10, 10), 1.0, 5.0, blob_fraction=1.5)


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            NonstationaryFieldConfig(component_ranges=(5.0,))
        with pytest.raises(ValueError):
            NonstationaryFieldConfig(component_ranges=(5.0, -1.0))
        with pytest.raises(ValueError):
            NonstationaryFieldConfig(variance=0.0)


class TestGeneration:
    def test_shape_determinism_and_finiteness(self):
        range_map = gradient_range_map((64, 64), 2.0, 24.0)
        a = generate_nonstationary_field(range_map, seed=0)
        b = generate_nonstationary_field(range_map, seed=0)
        c = generate_nonstationary_field(range_map, seed=1)
        assert a.shape == (64, 64)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(np.isfinite(a))

    def test_marginal_variance_near_one(self):
        range_map = gradient_range_map((128, 128), 2.0, 16.0)
        field = generate_nonstationary_field(range_map, seed=2)
        assert field.var() == pytest.approx(1.0, abs=0.4)

    def test_rejects_invalid_range_map(self):
        with pytest.raises(ValueError):
            generate_nonstationary_field(np.ones((4, 4, 4)))
        with pytest.raises(ValueError):
            generate_nonstationary_field(np.zeros((8, 8)))

    def test_local_smoothness_follows_the_range_map(self):
        # Rough half vs smooth half: the rough half must have a visibly
        # larger mean absolute increment.
        range_map = split_range_map((96, 96), 2.0, 24.0)
        field = generate_nonstationary_field(range_map, seed=3)
        rough_half = field[:, : 96 // 2]
        smooth_half = field[:, 96 // 2 :]
        grad = lambda f: np.abs(np.diff(f, axis=0)).mean()  # noqa: E731
        assert grad(smooth_half) < 0.5 * grad(rough_half)

    def test_local_variogram_ranges_track_the_map(self):
        range_map = split_range_map((96, 96), 2.0, 24.0)
        field = generate_nonstationary_field(range_map, seed=4)
        result = local_variogram_ranges(field, window=32)
        left = result.ranges[:, 0]   # rough side
        right = result.ranges[:, -1]  # smooth side
        assert np.nanmean(right) > np.nanmean(left)

    def test_nonstationary_field_raises_local_statistic_vs_stationary(self):
        from repro.datasets.gaussian import generate_gaussian_field

        stationary = generate_gaussian_field((96, 96), 8.0, seed=5)
        range_map = gradient_range_map((96, 96), 2.0, 32.0)
        nonstationary = generate_nonstationary_field(range_map, seed=5)
        assert std_local_variogram_range(nonstationary, 32) > std_local_variogram_range(
            stationary, 32
        )

    def test_global_range_is_an_average_of_the_map(self):
        range_map = gradient_range_map((96, 96), 2.0, 24.0)
        field = generate_nonstationary_field(range_map, seed=6)
        global_range = estimate_variogram_range(field)
        assert 1.0 < global_range < 30.0
