"""Tests for repro.datasets.covariance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.covariance import (
    ExponentialCovariance,
    MaternCovariance,
    MixtureCovariance,
    SphericalCovariance,
    SquaredExponentialCovariance,
)

ALL_MODELS = [
    SquaredExponentialCovariance(range=8.0, variance=2.0),
    ExponentialCovariance(range=8.0, variance=2.0),
    MaternCovariance(range=8.0, variance=2.0, nu=1.5),
    SphericalCovariance(range=8.0, variance=2.0),
]


class TestCommonProperties:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_value_at_zero_is_variance(self, model):
        assert model(np.array([0.0]))[0] == pytest.approx(model.variance)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_monotonically_decreasing(self, model):
        h = np.linspace(0, 50, 200)
        values = model(h)
        assert np.all(np.diff(values) <= 1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_non_negative(self, model):
        h = np.linspace(0, 100, 500)
        assert np.all(model(h) >= -1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_semivariogram_complements_covariance(self, model):
        h = np.linspace(0, 30, 100)
        np.testing.assert_allclose(model.semivariogram(h), model.variance - model(h), atol=1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_effective_range_has_low_correlation(self, model):
        h = np.array([model.effective_range])
        assert model(h)[0] <= 0.06 * model.variance


class TestSquaredExponential:
    def test_correlation_at_range_is_1_over_e(self):
        model = SquaredExponentialCovariance(range=10.0, variance=1.0)
        assert model(np.array([10.0]))[0] == pytest.approx(np.exp(-1.0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SquaredExponentialCovariance(range=-1.0)
        with pytest.raises(ValueError):
            SquaredExponentialCovariance(variance=0.0)

    @given(st.floats(min_value=0.5, max_value=100.0), st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_variance_property(self, rng_, h):
        model = SquaredExponentialCovariance(range=rng_, variance=1.0)
        value = model(np.array([h]))[0]
        assert 0.0 <= value <= 1.0


class TestMatern:
    def test_finite_at_zero_distance(self):
        model = MaternCovariance(range=5.0, nu=0.5)
        assert np.isfinite(model(np.array([0.0]))[0])

    def test_nu_half_matches_exponential(self):
        # With nu=1/2 the Matern kernel reduces to exp(-sqrt(2*nu)*h/range)
        # = exp(-h/range), i.e. the exponential covariance with equal range.
        matern = MaternCovariance(range=7.0, variance=1.0, nu=0.5)
        expo = ExponentialCovariance(range=7.0, variance=1.0)
        h = np.linspace(0.1, 30, 50)
        np.testing.assert_allclose(matern(h), expo(h), rtol=1e-6)


class TestMixture:
    def test_equal_weights_by_default(self):
        mix = MixtureCovariance(
            [SquaredExponentialCovariance(range=2.0), SquaredExponentialCovariance(range=20.0)]
        )
        assert mix.weights == (0.5, 0.5)

    def test_variance_is_weighted_sum(self):
        mix = MixtureCovariance(
            [
                SquaredExponentialCovariance(range=2.0, variance=1.0),
                SquaredExponentialCovariance(range=20.0, variance=3.0),
            ],
            weights=[0.25, 0.75],
        )
        assert mix.variance == pytest.approx(0.25 * 1.0 + 0.75 * 3.0)

    def test_effective_range_is_dominated_by_longest_component(self):
        short = SquaredExponentialCovariance(range=2.0)
        long = SquaredExponentialCovariance(range=30.0)
        mix = MixtureCovariance([short, long])
        assert mix.effective_range == pytest.approx(long.effective_range)

    def test_rejects_empty_and_bad_weights(self):
        with pytest.raises(ValueError):
            MixtureCovariance([])
        with pytest.raises(ValueError):
            MixtureCovariance([SquaredExponentialCovariance()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            MixtureCovariance([SquaredExponentialCovariance()], weights=[-1.0])
