"""Tests for repro.datasets.slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.slicing import slice_indices, slice_volume


class TestSliceIndices:
    def test_all_indices_by_default(self):
        assert slice_indices(5) == [0, 1, 2, 3, 4]

    def test_count_larger_than_axis_returns_all(self):
        assert slice_indices(3, count=10) == [0, 1, 2]

    def test_equally_spaced_includes_endpoints(self):
        indices = slice_indices(100, count=5)
        assert indices[0] == 0
        assert indices[-1] == 99
        assert len(indices) == 5

    def test_single_slice_is_middle(self):
        assert slice_indices(11, count=1) == [5]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            slice_indices(0)
        with pytest.raises(ValueError):
            slice_indices(10, count=0)


class TestSliceVolume:
    def test_slices_match_take(self):
        volume = np.random.default_rng(0).normal(size=(4, 6, 8))
        slices = slice_volume(volume, axis=0)
        assert len(slices) == 4
        for idx, plane in slices:
            np.testing.assert_array_equal(plane, volume[idx])

    def test_axis_1_and_2(self):
        volume = np.random.default_rng(1).normal(size=(3, 5, 7))
        assert slice_volume(volume, axis=1)[0][1].shape == (3, 7)
        assert slice_volume(volume, axis=2)[0][1].shape == (3, 5)

    def test_negative_axis(self):
        volume = np.zeros((2, 3, 4))
        assert slice_volume(volume, axis=-1)[0][1].shape == (2, 3)

    def test_slices_are_contiguous_copies(self):
        volume = np.random.default_rng(2).normal(size=(3, 4, 5))
        _, plane = slice_volume(volume, axis=2, count=1)[0]
        assert plane.flags["C_CONTIGUOUS"]
        plane[0, 0] = 99.0
        assert volume[0, 0, 2] != 99.0

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            slice_volume(np.zeros((4, 4)), axis=0)
        with pytest.raises(ValueError):
            slice_volume(np.zeros((2, 2, 2)), axis=3)
