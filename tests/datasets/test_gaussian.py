"""Tests for repro.datasets.gaussian."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.covariance import SquaredExponentialCovariance
from repro.datasets.gaussian import (
    GaussianFieldConfig,
    GaussianRandomFieldGenerator,
    generate_gaussian_field,
    generate_multi_range_field,
)


class TestConfig:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            GaussianFieldConfig(shape=(0, 10))
        with pytest.raises(ValueError):
            GaussianFieldConfig(shape=(4, 4, 4))


class TestSampling:
    def test_shape_and_dtype(self):
        field = generate_gaussian_field((48, 72), 8.0, seed=0)
        assert field.shape == (48, 72)
        assert field.dtype == np.float64

    def test_deterministic_given_seed(self):
        a = generate_gaussian_field((32, 32), 8.0, seed=5)
        b = generate_gaussian_field((32, 32), 8.0, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_gaussian_field((32, 32), 8.0, seed=5)
        b = generate_gaussian_field((32, 32), 8.0, seed=6)
        assert not np.array_equal(a, b)

    def test_mean_offset_applied(self):
        cov = SquaredExponentialCovariance(range=4.0)
        config = GaussianFieldConfig(shape=(64, 64), covariance=cov, mean=10.0)
        field = GaussianRandomFieldGenerator(config).sample(seed=0)
        assert abs(field.mean() - 10.0) < 1.0

    def test_marginal_variance_close_to_one(self):
        # Average the sample variance over several realisations.
        config = GaussianFieldConfig(
            shape=(64, 64), covariance=SquaredExponentialCovariance(range=3.0, variance=1.0)
        )
        generator = GaussianRandomFieldGenerator(config)
        fields = generator.sample_many(8, seed=0)
        assert fields.shape == (8, 64, 64)
        assert abs(fields.var() - 1.0) < 0.15

    def test_larger_range_gives_smoother_field(self):
        rough = generate_gaussian_field((96, 96), 2.0, seed=1)
        smooth = generate_gaussian_field((96, 96), 24.0, seed=1)
        grad_rough = np.abs(np.diff(rough, axis=0)).mean()
        grad_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        assert grad_smooth < grad_rough / 3

    def test_empirical_correlation_matches_model(self):
        # Lag-h sample correlation should track exp(-(h/a)^2).
        a = 8.0
        fields = GaussianRandomFieldGenerator(
            GaussianFieldConfig(shape=(96, 96), covariance=SquaredExponentialCovariance(range=a))
        ).sample_many(6, seed=2)
        for lag in (2, 4, 8):
            x = fields[:, :, :-lag].ravel()
            y = fields[:, :, lag:].ravel()
            empirical = np.corrcoef(x, y)[0, 1]
            expected = np.exp(-((lag / a) ** 2))
            assert abs(empirical - expected) < 0.1

    def test_sample_many_count_zero(self):
        generator = GaussianRandomFieldGenerator(GaussianFieldConfig(shape=(16, 16)))
        assert generator.sample_many(0).shape == (0, 16, 16)


class TestCholeskyReference:
    def test_matches_fft_sampler_statistically(self):
        # Both samplers target the same covariance; compare lag-1 correlation.
        config = GaussianFieldConfig(
            shape=(24, 24), covariance=SquaredExponentialCovariance(range=5.0)
        )
        generator = GaussianRandomFieldGenerator(config)
        fft_fields = np.stack([generator.sample(seed=i) for i in range(12)])
        chol_fields = np.stack([generator.sample_cholesky(seed=100 + i) for i in range(12)])

        def lag1(fields):
            return np.corrcoef(fields[:, :, :-1].ravel(), fields[:, :, 1:].ravel())[0, 1]

        assert abs(lag1(fft_fields) - lag1(chol_fields)) < 0.1

    def test_rejects_large_grids(self):
        generator = GaussianRandomFieldGenerator(GaussianFieldConfig(shape=(128, 128)))
        with pytest.raises(ValueError, match="limited"):
            generator.sample_cholesky()


class TestMultiRange:
    def test_requires_two_ranges(self):
        with pytest.raises(ValueError):
            generate_multi_range_field((32, 32), correlation_ranges=(5.0,))

    def test_shape_and_determinism(self):
        a = generate_multi_range_field((48, 48), (3.0, 20.0), seed=9)
        b = generate_multi_range_field((48, 48), (3.0, 20.0), seed=9)
        assert a.shape == (48, 48)
        np.testing.assert_array_equal(a, b)

    def test_smoothness_between_components(self):
        short = generate_gaussian_field((96, 96), 2.0, seed=3)
        long = generate_gaussian_field((96, 96), 24.0, seed=3)
        mixed = generate_multi_range_field((96, 96), (2.0, 24.0), seed=3)
        grad = lambda f: np.abs(np.diff(f, axis=0)).mean()  # noqa: E731
        assert grad(long) < grad(mixed) < grad(short)
