"""Tests for repro.datasets.miranda."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.miranda import MirandaConfig, MirandaSurrogate, generate_miranda_like_volume
from repro.stats.variogram_models import estimate_variogram_range


class TestConfig:
    def test_rejects_bad_shapes_and_bands(self):
        with pytest.raises(ValueError):
            MirandaConfig(shape=(10, 10))
        with pytest.raises(ValueError):
            MirandaConfig(k_min=10.0, k_max=5.0)
        with pytest.raises(ValueError):
            MirandaConfig(background_turbulence=2.0)


class TestVolumeGeneration:
    def test_shape_and_determinism(self):
        volume = generate_miranda_like_volume((8, 48, 48), seed=0)
        assert volume.shape == (8, 48, 48)
        np.testing.assert_array_equal(volume, generate_miranda_like_volume((8, 48, 48), seed=0))

    def test_different_seeds_change_turbulence(self):
        a = generate_miranda_like_volume((4, 32, 32), seed=1)
        b = generate_miranda_like_volume((4, 32, 32), seed=2)
        assert not np.array_equal(a, b)

    def test_finite_values(self):
        volume = generate_miranda_like_volume((4, 48, 48), seed=3)
        assert np.all(np.isfinite(volume))

    def test_mixing_layer_has_more_fluctuation_than_far_field(self):
        config = MirandaConfig(shape=(32, 64, 64), interface_amplitude=0.0)
        volume = MirandaSurrogate(config).generate(seed=4)
        # Remove the mean shear per slice, then compare fluctuation energy.
        centre = volume[16] - volume[16].mean()
        edge = volume[1] - volume[1].mean()
        # High-pass: subtract a smoothed version to isolate turbulence.
        def roughness(plane):
            return np.abs(np.diff(plane, axis=0)).mean() + np.abs(np.diff(plane, axis=1)).mean()

        assert roughness(centre) > 2.0 * roughness(edge)

    def test_slices_have_heterogeneous_correlation_ranges(self):
        surrogate = MirandaSurrogate(MirandaConfig(shape=(16, 64, 64)))
        slices = surrogate.generate_slices(seed=5, axis=0, count=5)
        ranges = [estimate_variogram_range(plane) for _, plane in slices]
        assert len(slices) == 5
        # The surrogate must produce a spread of correlation ranges across
        # slices (this is what gives Figures 4 and 7 their x-axis spread).
        assert max(ranges) / max(min(ranges), 1e-9) > 1.2


class TestSliceInterface:
    def test_generate_slices_axis_and_count(self):
        surrogate = MirandaSurrogate(MirandaConfig(shape=(6, 32, 40)))
        slices = surrogate.generate_slices(seed=0, axis=0, count=3)
        assert len(slices) == 3
        for _, plane in slices:
            assert plane.shape == (32, 40)

    def test_generate_slices_other_axes(self):
        surrogate = MirandaSurrogate(MirandaConfig(shape=(6, 32, 40)))
        slices_y = surrogate.generate_slices(seed=0, axis=1, count=2)
        assert slices_y[0][1].shape == (6, 40)
        slices_x = surrogate.generate_slices(seed=0, axis=2, count=2)
        assert slices_x[0][1].shape == (6, 32)
