"""Tests for repro.datasets.registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import DatasetRegistry, default_registry


class TestDatasetRegistry:
    def test_register_and_create(self):
        registry = DatasetRegistry()
        registry.register("toy", lambda seed: [("only", np.zeros((4, 4)))])
        assert "toy" in registry
        fields = registry.create("toy")
        assert fields[0][0] == "only"

    def test_duplicate_registration_rejected(self):
        registry = DatasetRegistry()
        registry.register("toy", lambda seed: [])
        with pytest.raises(KeyError):
            registry.register("toy", lambda seed: [])
        registry.register("toy", lambda seed: [("x", np.ones((2, 2)))], overwrite=True)
        assert registry.create("toy")[0][0] == "x"

    def test_unknown_dataset_raises_with_known_names(self):
        registry = DatasetRegistry()
        with pytest.raises(KeyError, match="known datasets"):
            registry.create("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            DatasetRegistry().register("", lambda seed: [])


class TestDefaultRegistry:
    def test_contains_paper_datasets(self):
        registry = default_registry()
        assert {"gaussian-single", "gaussian-multi", "miranda"} <= set(registry.names())
        # Future-work extension workload is also registered by default.
        assert "gaussian-nonstationary" in registry

    def test_gaussian_single_fields_are_labelled_and_2d(self):
        registry = default_registry(gaussian_shape=(64, 64))
        fields = registry.create("gaussian-single", seed=0)
        assert len(fields) >= 4
        for label, field in fields:
            assert label.startswith("gaussian-single")
            assert field.shape == (64, 64)

    def test_deterministic_given_seed(self):
        registry = default_registry(gaussian_shape=(32, 32), miranda_shape=(8, 32, 32))
        a = registry.create("gaussian-multi", seed=1)
        b = registry.create("gaussian-multi", seed=1)
        for (la, fa), (lb, fb) in zip(a, b):
            assert la == lb
            np.testing.assert_array_equal(fa, fb)

    def test_miranda_fields_shape(self):
        registry = default_registry(miranda_shape=(8, 48, 48))
        fields = registry.create("miranda", seed=0)
        for label, field in fields:
            assert label.startswith("miranda")
            assert field.shape == (48, 48)
