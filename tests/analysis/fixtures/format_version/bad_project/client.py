"""Deliberately BAD fixture: leaks the format module's struct layout and
re-declares a registered tag as a loose literal."""

from mypkg.store.format import _HEADER

DEFAULT_TAG = b"XXQ1"


def header_size():
    return _HEADER.size
