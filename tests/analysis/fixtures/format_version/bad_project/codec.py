"""Deliberately BAD fixture project: registers a container tag but the
project has no golden fixture pinning its bytes."""

CONTAINER_MAGIC = b"XXQ1"
