"""GOOD fixture project: the registered tag is pinned by a golden file
under tests/data/."""

CONTAINER_MAGIC = b"XXQ1"
