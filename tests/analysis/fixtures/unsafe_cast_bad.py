"""Deliberately BAD fixture: the PR 2 pattern — float values cast to an
integer dtype with no dominating finite/clip mask.  Never import this."""

import numpy as np


def quantize(values, step):
    ratios = values / step
    return ratios.astype(np.int64)


def construct(values):
    return np.int32(np.rint(values))
