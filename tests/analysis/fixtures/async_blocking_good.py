"""GOOD fixture: the serve layer's sanctioned shapes — blocking work
wrapped in a nested sync function routed through the executor, and locks
entered with 'async with'."""


class Handler:
    async def handle(self, loop, path):
        def work():
            with open(path, "rb") as fh:
                return fh.read()

        return await loop.run_in_executor(None, work)

    async def locked(self, lock):
        async with lock.write():
            return None
