"""Deliberately BAD fixture: a leaked file handle and a swallowed broad
except."""


def read_all(path):
    fh = open(path, "rb")
    data = fh.read()
    fh.close()
    return data


def ignore_errors(store):
    try:
        store.flush()
    except Exception:
        pass
