"""GOOD fixture: monotonic clocks for durations, and the one legitimate
wall-clock timestamp suppressed with a reason."""

import time


def measure_encode(codec, block):
    start = time.perf_counter()
    codec.encode(block)
    return time.perf_counter() - start


def poll_deadline(deadline):
    return time.monotonic() >= deadline


def stamp_log_line(record):
    # repro-lint: disable=timing-discipline -- log timestamp is a point in time, not a duration
    record["ts"] = time.time()
    return record
