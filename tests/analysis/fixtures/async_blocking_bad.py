"""Deliberately BAD fixture: blocking work directly on the event loop —
stdlib I/O, a store classmethod, raw lock acquisition and a sync 'with'
over an async RW-lock context."""

import time

from repro.store import ArrayStore


class Handler:
    async def handle(self, path):
        time.sleep(0.05)
        with open(path, "rb") as fh:
            return fh.read()

    async def load(self, root):
        return ArrayStore.open(root)

    async def locked(self, lock):
        await lock.acquire()
        try:
            return None
        finally:
            lock.release()

    async def guarded(self, dataset_lock):
        with dataset_lock.read():
            return None
