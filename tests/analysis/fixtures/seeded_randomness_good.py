"""GOOD fixture: all randomness flows from an explicit seed."""

import numpy as np


def sample_field(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape)
