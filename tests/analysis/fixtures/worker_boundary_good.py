"""GOOD fixture: the repo's worker protocol — a module-level function
over self-contained task tuples, returning the documented payload tuple;
bulk arrays cross the boundary as SharedArraySpec descriptors managed by
a SharedArraySession, never as hand-rolled SharedMemory segments."""

import numpy as np

from repro.utils.parallel import (
    ParallelConfig,
    SharedArraySession,
    WorkerPool,
    parallel_map,
    read_shared,
    write_shared,
)


def run_all(tasks):
    return list(parallel_map(_encode_worker, tasks))


def run_shared(volume, regions, scale):
    with SharedArraySession() as session, WorkerPool(ParallelConfig(2)) as pool:
        spec = session.share(volume)
        out_spec, out_view = session.allocate(volume.shape, volume.dtype)
        tasks = [(spec, out_spec, region, scale) for region in regions]
        payloads = pool.map(_scale_worker, tasks)
        result = out_view.copy()
        del out_view
    return result, payloads


def _encode_worker(task):
    tile, scale = task
    payload = np.asarray(tile) * scale
    return payload.tobytes(), payload.shape


def _scale_worker(task):
    spec, out_spec, region, scale = task
    values = read_shared(spec, region) * scale
    write_shared(out_spec, region, values)
    return region, float(values.max())
