"""GOOD fixture: the repo's worker protocol — a module-level function
over self-contained task tuples, returning the documented payload tuple."""

import numpy as np

from repro.utils.parallel import parallel_map


def run_all(tasks):
    return list(parallel_map(_encode_worker, tasks))


def _encode_worker(task):
    tile, scale = task
    payload = np.asarray(tile) * scale
    return payload.tobytes(), payload.shape
