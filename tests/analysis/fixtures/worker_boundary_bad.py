"""Deliberately BAD fixture: unpicklable callables submitted to the
worker pool, a rogue ProcessPoolExecutor, a hand-rolled SharedMemory
segment, and a worker returning a bare ndarray instead of the documented
payload tuple."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.utils.parallel import parallel_map


def run_all(tiles, scale):
    def encode(tile):
        return tile * scale

    results = list(parallel_map(encode, tiles))
    results += list(parallel_map(lambda tile: tile * scale, tiles))
    results += list(parallel_map(_encode_worker, tiles))
    with ProcessPoolExecutor() as pool:
        results += list(pool.map(_encode_worker, tiles))
    return results


def share_volume(volume):
    segment = shared_memory.SharedMemory(create=True, size=volume.nbytes)
    buffer = np.ndarray(volume.shape, dtype=volume.dtype, buffer=segment.buf)
    buffer[...] = volume
    return segment.name


def _encode_worker(tile):
    return np.asarray(tile)
