"""Deliberately BAD fixture: unpicklable callables submitted to the
worker pool, a rogue ProcessPoolExecutor, and a worker returning a bare
ndarray instead of the documented payload tuple."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.utils.parallel import parallel_map


def run_all(tiles, scale):
    def encode(tile):
        return tile * scale

    results = list(parallel_map(encode, tiles))
    results += list(parallel_map(lambda tile: tile * scale, tiles))
    results += list(parallel_map(_encode_worker, tiles))
    with ProcessPoolExecutor() as pool:
        results += list(pool.map(_encode_worker, tiles))
    return results


def _encode_worker(tile):
    return np.asarray(tile)
