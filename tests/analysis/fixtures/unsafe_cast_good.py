"""GOOD fixture: the same casts with the discipline applied — a finite
mask dominates the cast, and int-to-int casts stay unflagged."""

import numpy as np


def quantize(values, step):
    ratios = values / step
    ratios = np.where(np.isfinite(ratios), ratios, 0.0)
    return ratios.astype(np.int64)


def shrink(codes):
    # Int-to-int: no float source, no finding.
    return codes.astype(np.uint8)
