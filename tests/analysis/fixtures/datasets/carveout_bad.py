"""Deliberately BAD fixture: even under datasets/, a module-level legacy
draw (no seed-accepting enclosing function) is flagged."""

import numpy as np

WARMUP = np.random.normal(size=(4, 4))
