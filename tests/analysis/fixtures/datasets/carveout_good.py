"""GOOD fixture (datasets/ carve-out): a generator whose enclosing
function accepts an explicit seed may still use the legacy API while it
migrates."""

import numpy as np


def generate(shape, seed=0):
    np.random.seed(seed)
    return np.random.normal(size=shape)
