"""Deliberately BAD fixture: wall-clock durations in four spellings."""

import time
import time as clock
from time import time as now
from time import time_ns


def measure_encode(codec, block):
    start = time.time()
    codec.encode(block)
    return time.time() - start


def measure_aliased(codec, block):
    start = clock.time()
    codec.encode(block)
    return clock.time() - start


def measure_from_import(codec, block):
    start = now()
    codec.encode(block)
    return now() - start


def measure_nanoseconds(codec, block):
    start = time_ns()
    codec.encode(block)
    return time_ns() - start
