"""GOOD fixture: handles in 'with' (or ownership-transferred via
return), and broad excepts that keep the fault visible."""


def read_all(path):
    with open(path, "rb") as fh:
        return fh.read()


def open_stream(path):
    # Ownership transfer: the caller enters the handle.
    return open(path, "rb")


def report_errors(store, log):
    try:
        store.flush()
    except Exception as exc:
        log.append(str(exc))
