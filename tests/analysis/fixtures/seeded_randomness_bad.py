"""Deliberately BAD fixture: global-state np.random calls and an
unseeded default_rng outside the datasets/ carve-out."""

import numpy as np


def sample_field(shape):
    np.random.seed(1234)
    return np.random.normal(size=shape)


def unseeded():
    return np.random.default_rng()
