"""Self-check: the shipped source tree passes its own invariant lint.

This is the CI gate in test form — ``repro lint src/`` must report zero
unsuppressed findings, and every suppression in the tree must carry a
reason (the driver turns reasonless ones into findings, so exit 0 proves
both)."""

from __future__ import annotations

import pathlib

from repro.analysis import all_checkers, run_lint

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestSelfCheck:
    def test_src_tree_is_lint_clean(self):
        result = run_lint(
            [str(REPO_ROOT / "src")],
            all_checkers(),
            project_root=str(REPO_ROOT),
        )
        assert result.files_checked > 50
        assert result.unsuppressed == [], [
            f"{f.path}:{f.line}: {f.rule}: {f.message}"
            for f in result.unsuppressed
        ]
        assert result.exit_code == 0

    def test_every_suppression_in_tree_carries_a_reason(self):
        result = run_lint(
            [str(REPO_ROOT / "src")],
            all_checkers(),
            project_root=str(REPO_ROOT),
        )
        suppressed = [f for f in result.findings if f.suppressed]
        assert suppressed, "expected the documented suppressions to be visible"
        assert all(f.suppression_reason for f in suppressed)
