"""Per-rule fixture tests: every rule has a bad fixture that trips it and
a good fixture that passes it (the acceptance surface of the checker
suite), plus the PR 2 regression scratch-file check."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import all_checkers, run_lint

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint_paths(paths, rule, project_root=None):
    return run_lint(
        [str(p) for p in paths],
        all_checkers(),
        rules=[rule],
        project_root=str(project_root) if project_root else None,
    )


PAIRS = [
    ("unsafe-cast", "unsafe_cast_bad.py", "unsafe_cast_good.py", 2),
    ("async-blocking", "async_blocking_bad.py", "async_blocking_good.py", 5),
    ("worker-boundary", "worker_boundary_bad.py", "worker_boundary_good.py", 5),
    (
        "seeded-randomness",
        "seeded_randomness_bad.py",
        "seeded_randomness_good.py",
        3,
    ),
    (
        "resource-hygiene",
        "resource_hygiene_bad.py",
        "resource_hygiene_good.py",
        2,
    ),
    (
        "timing-discipline",
        "timing_discipline_bad.py",
        "timing_discipline_good.py",
        8,
    ),
]


class TestFixturePairs:
    @pytest.mark.parametrize(
        "rule,bad,good,n_bad", PAIRS, ids=[p[0] for p in PAIRS]
    )
    def test_bad_fixture_fails_good_fixture_passes(self, rule, bad, good, n_bad):
        bad_result = lint_paths([FIXTURES / bad], rule)
        assert len(bad_result.unsuppressed) == n_bad, [
            f"{f.line}: {f.message}" for f in bad_result.findings
        ]
        assert all(f.rule == rule for f in bad_result.unsuppressed)
        assert bad_result.exit_code == 1

        good_result = lint_paths([FIXTURES / good], rule)
        assert good_result.unsuppressed == []
        assert good_result.exit_code == 0


class TestDatasetsCarveOut:
    def test_seed_accepting_generator_is_exempt(self):
        result = lint_paths(
            [FIXTURES / "datasets" / "carveout_good.py"], "seeded-randomness"
        )
        assert result.unsuppressed == []

    def test_module_level_draw_still_flagged_under_datasets(self):
        result = lint_paths(
            [FIXTURES / "datasets" / "carveout_bad.py"], "seeded-randomness"
        )
        assert len(result.unsuppressed) == 1


class TestFormatVersionProjects:
    def test_bad_project_unpinned_tag_layout_leak_and_literal(self):
        root = FIXTURES / "format_version" / "bad_project"
        result = lint_paths([root], "format-version", project_root=root)
        messages = sorted(f.message for f in result.unsuppressed)
        assert len(messages) == 3
        assert any("no golden fixture" in m for m in messages)
        assert any("_HEADER" in m for m in messages)
        assert any("re-declared" in m for m in messages)

    def test_good_project_tag_pinned_by_golden(self):
        root = FIXTURES / "format_version" / "good_project"
        result = lint_paths([root], "format-version", project_root=root)
        assert result.unsuppressed == []


class TestPR2Regression:
    """Acceptance check: deliberately reintroducing the PR 2 bug pattern
    in a scratch file is flagged."""

    def test_reintroduced_pattern_is_flagged(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            "import numpy as np\n"
            "\n"
            "def requantize(coeffs, precisions):\n"
            "    ratios = np.rint(coeffs / precisions)\n"
            "    return ratios.astype(np.int64)\n"
        )
        result = lint_paths([scratch], "unsafe-cast")
        assert [f.rule for f in result.unsuppressed] == ["unsafe-cast"]
        assert result.exit_code == 1

    def test_masked_variant_passes(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            "import numpy as np\n"
            "\n"
            "def requantize(coeffs, precisions):\n"
            "    with np.errstate(invalid='ignore', over='ignore'):\n"
            "        ratios = np.rint(coeffs / precisions)\n"
            "    return np.where(np.isfinite(ratios), ratios, 0.0)"
            ".astype(np.int64)\n"
        )
        result = lint_paths([scratch], "unsafe-cast")
        assert result.unsuppressed == []
