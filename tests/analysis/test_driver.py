"""Driver-level tests: suppression semantics (reason required, coverage
rules, file-level disables), per-file config, rule filtering and the CLI
text/JSON output contract."""

from __future__ import annotations

import json

import pytest

from repro.analysis import BAD_SUPPRESSION, all_checkers, run_lint
from repro.analysis.cli import JSON_SCHEMA_VERSION
from repro.cli import main

BAD_CAST = (
    "import numpy as np\n"
    "\n"
    "def quantize(values, step):\n"
    "    ratios = values / step\n"
    "    return ratios.astype(np.int64){trailer}\n"
)


def lint_file(path):
    return run_lint([str(path)], all_checkers())


def write(tmp_path, text, name="mod.py"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestSuppressions:
    def test_trailing_suppression_with_reason_suppresses(self, tmp_path):
        path = write(
            tmp_path,
            BAD_CAST.format(
                trailer="  # repro-lint: disable=unsafe-cast -- step validated finite"
            ),
        )
        result = lint_file(path)
        assert result.exit_code == 0
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.suppressed
        assert finding.suppression_reason == "step validated finite"

    def test_comment_only_line_covers_next_line(self, tmp_path):
        path = write(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def quantize(values, step):\n"
            "    ratios = values / step\n"
            "    # repro-lint: disable=unsafe-cast -- inputs masked upstream\n"
            "    return ratios.astype(np.int64)\n",
        )
        result = lint_file(path)
        assert result.exit_code == 0
        assert result.findings[0].suppressed

    def test_suppression_without_reason_is_itself_a_finding(self, tmp_path):
        path = write(
            tmp_path,
            BAD_CAST.format(trailer="  # repro-lint: disable=unsafe-cast"),
        )
        result = lint_file(path)
        rules = sorted(f.rule for f in result.unsuppressed)
        assert rules == [BAD_SUPPRESSION, "unsafe-cast"]
        assert result.exit_code == 1

    def test_unknown_rule_suppression_is_itself_a_finding(self, tmp_path):
        path = write(
            tmp_path,
            BAD_CAST.format(
                trailer="  # repro-lint: disable=made-up-rule -- because"
            ),
        )
        result = lint_file(path)
        rules = sorted(f.rule for f in result.unsuppressed)
        assert rules == [BAD_SUPPRESSION, "unsafe-cast"]

    def test_disable_file_covers_every_line(self, tmp_path):
        path = write(
            tmp_path,
            "# repro-lint: disable-file=unsafe-cast -- generated lookup tables\n"
            + BAD_CAST.format(trailer="")
            + "\n"
            "def again(values, step):\n"
            "    return (values / step).astype(np.int64)\n",
        )
        result = lint_file(path)
        assert result.exit_code == 0
        assert len(result.findings) == 2
        assert all(f.suppressed for f in result.findings)

    def test_docstring_mention_of_syntax_is_not_a_suppression(self, tmp_path):
        path = write(
            tmp_path,
            '"""Docs: write # repro-lint: disable=unsafe-cast -- reason."""\n'
            + BAD_CAST.format(trailer=""),
        )
        result = lint_file(path)
        assert [f.rule for f in result.unsuppressed] == ["unsafe-cast"]

    def test_suppression_for_a_different_rule_does_not_apply(self, tmp_path):
        path = write(
            tmp_path,
            BAD_CAST.format(
                trailer="  # repro-lint: disable=resource-hygiene -- wrong rule"
            ),
        )
        result = lint_file(path)
        assert [f.rule for f in result.unsuppressed] == ["unsafe-cast"]


class TestDriver:
    def test_per_file_ignores_silence_the_configured_rule(self, tmp_path):
        nest = tmp_path / "repro" / "utils"
        nest.mkdir(parents=True)
        path = write(
            nest,
            "import numpy as np\n\nSTATE = np.random.RandomState(0)\n",
            name="rng.py",
        )
        assert lint_file(path).exit_code == 0
        # The same content under any other name is flagged.
        other = write(
            nest,
            "import numpy as np\n\nSTATE = np.random.RandomState(0)\n",
            name="other.py",
        )
        assert [f.rule for f in lint_file(other).unsuppressed] == [
            "seeded-randomness"
        ]

    def test_unknown_rule_filter_raises(self, tmp_path):
        path = write(tmp_path, "x = 1\n")
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint([str(path)], all_checkers(), rules=["no-such-rule"])

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        path = write(tmp_path, "def broken(:\n")
        result = lint_file(path)
        assert [f.rule for f in result.unsuppressed] == ["parse-error"]

    def test_findings_sorted_by_location(self, tmp_path):
        path = write(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def a(values, step):\n"
            "    fh = open('x', 'rb')\n"
            "    return (values / step).astype(np.int64), fh\n",
        )
        result = lint_file(path)
        assert [f.line for f in result.findings] == sorted(
            f.line for f in result.findings
        )


class TestCLI:
    def test_text_output_and_exit_code(self, tmp_path, capsys):
        path = write(tmp_path, BAD_CAST.format(trailer=""))
        code = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "unsafe-cast" in out
        assert "1 finding(s)" in out

    def test_json_output_schema(self, tmp_path, capsys):
        path = write(
            tmp_path,
            BAD_CAST.format(trailer="")
            + "\n"
            "def masked(values, step):\n"
            "    # repro-lint: disable=unsafe-cast -- masked upstream\n"
            "    return (values / step).astype(np.int64)\n",
        )
        code = main(["lint", "--format", "json", str(path)])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert document["files_checked"] == 1
        assert document["counts"] == {
            "total": 2,
            "unsuppressed": 1,
            "suppressed": 1,
        }
        by_suppressed = {f["suppressed"]: f for f in document["findings"]}
        live, muted = by_suppressed[False], by_suppressed[True]
        for finding in (live, muted):
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "message",
                "suppressed",
                "suppression_reason",
            }
            assert finding["rule"] == "unsafe-cast"
        assert muted["suppression_reason"] == "masked upstream"
        assert live["suppression_reason"] is None

    def test_rule_filter_flag(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "def leak(path):\n    fh = open(path)\n    return fh.name\n",
        )
        assert main(["lint", "--rule", "unsafe-cast", str(path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--rule", "resource-hygiene", str(path)]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "unsafe-cast",
            "async-blocking",
            "format-version",
            "worker-boundary",
            "seeded-randomness",
            "resource-hygiene",
        ):
            assert rule in out
