"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import csv
import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.io import save_field, save_raw


@pytest.fixture()
def field_npy(tmp_path):
    field = generate_gaussian_field((64, 64), 12.0, seed=0)
    path = tmp_path / "field.npy"
    save_field(path, field)
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("compress", "stats", "experiment", "figure", "store"):
            assert command in parser.format_help()


class TestCompressCommand:
    def test_compress_npy(self, field_npy, capsys):
        code = main(["compress", str(field_npy), "--compressor", "sz", "--error-bound", "1e-3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compression ratio" in out
        assert "bound satisfied" in out and "True" in out

    def test_compress_raw_with_shape(self, tmp_path, capsys):
        field = generate_gaussian_field((32, 40), 6.0, seed=1)
        path = tmp_path / "field.raw"
        save_raw(path, field, dtype="float32")
        code = main(
            [
                "compress",
                str(path),
                "--raw-shape",
                "32",
                "40",
                "--raw-dtype",
                "float32",
                "--compressor",
                "zfp",
            ]
        )
        assert code == 0
        assert "compression ratio" in capsys.readouterr().out

    def test_compress_3d_takes_middle_slice(self, tmp_path, capsys):
        volume = np.random.default_rng(2).normal(size=(6, 24, 24))
        path = tmp_path / "vol.npy"
        save_field(path, volume)
        code = main(["compress", str(path), "--error-bound", "1e-2"])
        assert code == 0

    def test_compress_3d_volume_natively(self, tmp_path, capsys):
        volume = np.random.default_rng(3).normal(size=(8, 20, 20))
        path = tmp_path / "vol.npy"
        save_field(path, volume)
        code = main(
            [
                "compress",
                str(path),
                "--volume",
                "--tile",
                "16",
                "--error-bound",
                "1e-2",
                "--baseline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "volume shape" in out and "8x20x20" in out
        assert "tiles" in out
        assert "slice-by-slice baseline CR" in out

    def test_compress_volume_flag_rejects_2d(self, field_npy):
        with pytest.raises(SystemExit):
            main(["compress", str(field_npy), "--volume"])


class TestStatsCommand:
    def test_stats_output(self, field_npy, capsys):
        code = main(["stats", str(field_npy), "--window", "32"])
        out = capsys.readouterr().out
        assert code == 0
        assert "global variogram range" in out
        assert "std local variogram range" in out
        assert "quantized entropy" in out

    def test_stats_small_field_skips_local(self, tmp_path, capsys):
        field = generate_gaussian_field((24, 24), 4.0, seed=3)
        path = tmp_path / "small.npy"
        save_field(path, field)
        code = main(["stats", str(path), "--window", "32"])
        out = capsys.readouterr().out
        assert code == 0
        assert "std local variogram range" not in out


class TestExperimentCommand:
    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "records.csv"
        code = main(
            [
                "experiment",
                "gaussian-single",
                "--output",
                str(output),
                "--size",
                "48",
                "--bounds",
                "1e-3",
                "1e-2",
                "--compressors",
                "sz",
                "--skip-local-stats",
            ]
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(output.read_text())))
        assert len(rows) == 6 * 2  # 6 fields x 1 compressor x 2 bounds
        assert {row["compressor"] for row in rows} == {"sz"}


class TestFigureCommand:
    def test_figure3_table(self, capsys):
        code = main(["figure", "3", "--size", "48"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "alpha" in out and "beta" in out

    def test_figure3_markdown(self, capsys):
        code = main(["figure", "3", "--size", "48", "--markdown"])
        out = capsys.readouterr().out
        assert code == 0
        assert "| compressor |" in out


class TestStoreCommand:
    def test_put_get_info_ls_round_trip(self, tmp_path, field_npy, capsys):
        store_dir = tmp_path / "store"
        code = main(
            [
                "store",
                "put",
                str(store_dir),
                "--field",
                str(field_npy),
                "--chunk",
                "32",
                "--codec",
                "sz",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compression ratio" in out
        assert "sz:4" in out  # 64x64 field in 32^2 chunks

        output = tmp_path / "region.npy"
        code = main(
            [
                "store",
                "get",
                str(store_dir),
                "--region",
                "0:16,0:16",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded 1/4 chunks" in out
        region = np.load(output)
        original = np.load(field_npy)
        assert region.shape == (16, 16)
        assert np.abs(region - original[:16, :16]).max() <= 1e-3 * (1 + 1e-9)

        assert main(["store", "info", str(store_dir)]) == 0
        assert "codec policy" in capsys.readouterr().out
        assert main(["store", "ls", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "chunk" in out and "32x32" in out

    def test_put_from_dataset_registry_adaptive(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(
            [
                "store",
                "put",
                str(store_dir),
                "--dataset",
                "gaussian-single",
                "--label",
                "gaussian-single-a16",
                "--chunk",
                "64",
                "--codec",
                "adaptive:sz+zfp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gaussian-single-a16" in out
        assert "adaptive estimate rel. error" in out

    def test_put_unknown_label_lists_available(self, tmp_path):
        with pytest.raises(SystemExit, match="available"):
            main(
                [
                    "store",
                    "put",
                    str(tmp_path / "s"),
                    "--dataset",
                    "gaussian-single",
                    "--label",
                    "nope",
                ]
            )

    def test_get_bad_region_component(self, tmp_path, field_npy):
        store_dir = tmp_path / "store"
        main(["store", "put", str(store_dir), "--field", str(field_npy)])
        with pytest.raises(SystemExit, match="region"):
            main(["store", "get", str(store_dir), "--region", "0:1:2"])

    def test_info_on_empty_store(self, tmp_path, capsys):
        from repro.store import ArrayStore

        ArrayStore.create(tmp_path / "empty")
        assert main(["store", "info", str(tmp_path / "empty")]) == 0
        assert "no data yet" in capsys.readouterr().out
