"""Tests for repro.encoding.varint."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.varint import (
    decode_signed_varint,
    decode_varint,
    encode_signed_varint,
    encode_varint,
)


class TestUnsignedVarint:
    def test_small_values_are_one_byte(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1

    def test_larger_values_grow(self):
        assert len(encode_varint(128)) == 2
        assert len(encode_varint(1 << 20)) == 3

    def test_roundtrip_examples(self):
        for value in (0, 1, 127, 128, 300, 2**31, 2**60):
            blob = encode_varint(value)
            decoded, offset = decode_varint(blob)
            assert decoded == value
            assert offset == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        blob = encode_varint(300)[:-1]
        with pytest.raises(EOFError):
            decode_varint(blob)

    def test_decode_with_offset(self):
        blob = b"\x00" + encode_varint(500)
        value, offset = decode_varint(blob, 1)
        assert value == 500
        assert offset == len(blob)

    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value


class TestSignedVarint:
    def test_roundtrip_examples(self):
        for value in (0, 1, -1, 63, -64, 12345, -98765, 2**40, -(2**40)):
            decoded, _ = decode_signed_varint(encode_signed_varint(value))
            assert decoded == value

    def test_zigzag_keeps_small_magnitudes_short(self):
        assert len(encode_signed_varint(-1)) == 1
        assert len(encode_signed_varint(63)) == 1

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_signed_varint(encode_signed_varint(value))
        assert decoded == value

    def test_stream_of_values(self):
        values = [3, -7, 0, 1000, -123456]
        blob = b"".join(encode_signed_varint(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            value, pos = decode_signed_varint(blob, pos)
            out.append(value)
        assert out == values
