"""Tests for repro.encoding.lz77 (vectorized match finder, array stream)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.lz77 import LZ77Sequences, lz77_compress, lz77_decompress


def _sequences(literals=b"", lit_lens=(), match_lens=(), dists=()):
    return LZ77Sequences(
        literals=np.frombuffer(bytes(literals), dtype=np.uint8),
        literal_lengths=np.asarray(lit_lens, dtype=np.int64),
        match_lengths=np.asarray(match_lens, dtype=np.int64),
        distances=np.asarray(dists, dtype=np.int64),
    )


class TestCompress:
    def test_empty_input(self):
        seqs = lz77_compress(b"")
        assert seqs.n_sequences == 0
        assert seqs.literals.size == 0
        assert seqs.output_size == 0

    def test_incompressible_short_input_is_all_literals(self):
        seqs = lz77_compress(b"abc")
        assert seqs.n_sequences == 0
        assert seqs.literals.tobytes() == b"abc"

    def test_repetitive_input_produces_matches(self):
        data = b"abcd" * 100
        seqs = lz77_compress(data)
        assert seqs.n_sequences > 0
        # The matches cover almost everything: few literal bytes remain.
        assert seqs.literals.size < len(data) // 4

    def test_run_of_single_byte(self):
        seqs = lz77_compress(b"\x00" * 1000)
        assert seqs.n_sequences < 20
        assert seqs.output_size == 1000

    def test_output_size_accounts_every_byte(self):
        data = b"the quick brown fox " * 37 + b"tail"
        seqs = lz77_compress(data)
        assert seqs.output_size == len(data)
        assert int(seqs.literal_lengths.sum()) <= seqs.literals.size


class TestDecompress:
    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 20
        assert lz77_decompress(lz77_compress(data)) == data

    def test_roundtrip_binary(self):
        data = np.random.default_rng(0).integers(0, 8, size=5000).astype(np.uint8).tobytes()
        assert lz77_decompress(lz77_compress(data)) == data

    def test_overlapping_match_roundtrip(self):
        # 'aaaaa...' forces matches whose source overlaps the output cursor.
        data = b"a" * 300 + b"b" + b"a" * 300
        assert lz77_decompress(lz77_compress(data)) == data

    def test_trailing_literals_roundtrip(self):
        data = b"xyzw" * 50 + b"unique-tail-@#"
        assert lz77_decompress(lz77_compress(data)) == data

    @given(st.binary(max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data


class TestMalformedStreams:
    """Token fields arrive straight from a decoded container; every field
    must be validated so corrupt streams raise instead of emitting garbage."""

    def test_distance_beyond_decoded_output_rejected(self):
        seqs = _sequences(b"abc", lit_lens=[3], match_lens=[5], dists=[5])
        with pytest.raises(ValueError, match="back-reference"):
            lz77_decompress(seqs)

    def test_distance_zero_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[4], match_lens=[4], dists=[0])
        with pytest.raises(ValueError, match="distance"):
            lz77_decompress(seqs)

    def test_oversized_distance_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[4], match_lens=[4], dists=[1 << 20])
        with pytest.raises(ValueError, match="distance"):
            lz77_decompress(seqs)

    def test_negative_literal_length_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[-1], match_lens=[4], dists=[1])
        with pytest.raises(ValueError, match="negative literal"):
            lz77_decompress(seqs)

    def test_undersized_match_length_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[4], match_lens=[2], dists=[1])
        with pytest.raises(ValueError, match="match length"):
            lz77_decompress(seqs)

    def test_oversized_match_length_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[4], match_lens=[10_000], dists=[1])
        with pytest.raises(ValueError, match="match length"):
            lz77_decompress(seqs)

    def test_literal_runs_longer_than_literal_stream_rejected(self):
        seqs = _sequences(b"ab", lit_lens=[5], match_lens=[4], dists=[1])
        with pytest.raises(ValueError, match="literal"):
            lz77_decompress(seqs)

    def test_mismatched_array_lengths_rejected(self):
        seqs = _sequences(b"abcd", lit_lens=[4, 0], match_lens=[4], dists=[1])
        with pytest.raises(ValueError, match="disagree"):
            lz77_decompress(seqs)

    def test_valid_overlapping_stream_decodes(self):
        # Sanity check that the validator admits a legal overlapping match.
        seqs = _sequences(b"ab", lit_lens=[2], match_lens=[6], dists=[2])
        assert lz77_decompress(seqs) == b"ab" + b"ab" * 3
