"""Tests for repro.encoding.lz77."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.lz77 import LZ77Token, lz77_compress, lz77_decompress


class TestTokens:
    def test_literal_flag(self):
        assert LZ77Token(literal=65).is_literal
        assert not LZ77Token(distance=3, length=5).is_literal


class TestCompress:
    def test_empty_input(self):
        assert lz77_compress(b"") == []

    def test_incompressible_short_input_is_all_literals(self):
        tokens = lz77_compress(b"abc")
        assert all(t.is_literal for t in tokens)

    def test_repetitive_input_produces_matches(self):
        data = b"abcd" * 100
        tokens = lz77_compress(data)
        assert any(not t.is_literal for t in tokens)
        assert len(tokens) < len(data) // 2

    def test_run_of_single_byte(self):
        data = b"\x00" * 1000
        tokens = lz77_compress(data)
        assert len(tokens) < 20


class TestDecompress:
    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 20
        assert lz77_decompress(lz77_compress(data)) == data

    def test_roundtrip_binary(self):
        import numpy as np

        data = np.random.default_rng(0).integers(0, 8, size=5000).astype(np.uint8).tobytes()
        assert lz77_decompress(lz77_compress(data)) == data

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError, match="back-reference"):
            lz77_decompress([LZ77Token(distance=5, length=3)])

    def test_overlapping_match_roundtrip(self):
        # 'aaaaa...' forces matches whose source overlaps the output cursor.
        data = b"a" * 300 + b"b" + b"a" * 300
        assert lz77_decompress(lz77_compress(data)) == data

    @given(st.binary(max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data
