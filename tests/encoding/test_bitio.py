"""Tests for repro.encoding.bitio."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits_pack_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b10110001])

    def test_partial_byte_is_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1111, 4)
        assert writer.bit_length == 4
        writer.write_bits(0, 9)
        assert writer.bit_length == 13

    def test_value_too_large_for_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            writer.write_bits(8, 3)

    def test_negative_values_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(-1, 4)

    def test_zero_count_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_length == 0


class TestBitReader:
    def test_roundtrip_mixed_widths(self):
        writer = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1), (77, 7)]
        for value, width in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_bits(width) == value

    def test_eof_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 1, 5, 13):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]

    def test_elias_gamma_roundtrip(self):
        writer = BitWriter()
        values = [1, 2, 3, 7, 64, 1000, 123456]
        for value in values:
            writer.write_elias_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_elias_gamma() for _ in range(len(values))] == values

    def test_elias_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            BitWriter().write_elias_gamma(0)

    def test_align_to_byte(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0xAB, 8)
        reader = BitReader(writer.getvalue())
        reader.read_bit()
        reader.align_to_byte()
        # Alignment must have skipped to bit 8 exactly.
        assert reader.bits_remaining == len(writer.getvalue()) * 8 - 8

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20), st.integers(min_value=21, max_value=32)), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in pairs:
            assert reader.read_bits(width) == value
