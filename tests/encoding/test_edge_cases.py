"""Edge-case coverage for the encoding layer.

Targets the corners the compressor hot paths rely on: empty inputs,
degenerate single-symbol Huffman alphabets, bit-stream flushes at non-byte
boundaries, varint extremes, the vectorized array codecs matching their
scalar counterparts byte-for-byte, and the lossless backend's stream-tag
dispatch (Huffman+RLE vs direct Huffman vs fixed-width packing).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.base import LosslessBackend
from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.encoding.rle import rle_decode, rle_encode
from repro.encoding.varint import (
    decode_signed_varint_array,
    decode_varint,
    decode_varint_array,
    encode_signed_varint,
    encode_signed_varint_array,
    encode_varint,
    encode_varint_array,
)


class TestEmptyInputs:
    def test_huffman_empty(self):
        blob = huffman_encode([])
        assert huffman_decode(blob).size == 0

    def test_rle_empty(self):
        values, runs = rle_encode(np.empty(0, dtype=np.int64))
        assert values.size == runs.size == 0
        assert rle_decode(values, runs).size == 0

    def test_varint_array_empty(self):
        assert encode_varint_array(np.empty(0, dtype=np.int64)) == b""
        out, pos = decode_varint_array(b"anything", 0, 3)
        assert out.size == 0 and pos == 3

    def test_backend_empty_roundtrip(self):
        for name in ("huffman", "zstd", "raw"):
            backend = LosslessBackend(name)
            blob = backend.encode_symbols(np.empty(0, dtype=np.int64))
            assert backend.decode_symbols(blob).size == 0

    def test_bitio_empty_bulk(self):
        writer = BitWriter()
        writer.write_bits_array(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64))
        assert writer.getvalue() == b""
        reader = BitReader(b"")
        assert reader.read_bits_array(np.empty(0, dtype=np.int64)).size == 0


class TestSingleSymbolAlphabet:
    def test_single_symbol_roundtrip(self):
        for count in (1, 7, 64, 1000):
            blob = huffman_encode([42] * count)
            np.testing.assert_array_equal(huffman_decode(blob), np.full(count, 42))

    def test_single_symbol_through_backend(self):
        backend = LosslessBackend("huffman")
        symbols = np.zeros(321, dtype=np.int64)
        np.testing.assert_array_equal(
            backend.decode_symbols(backend.encode_symbols(symbols)), symbols
        )

    def test_two_symbol_alphabet(self):
        symbols = np.array([5, 9] * 100)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(symbols)), symbols)


class TestBitioBoundaries:
    def test_flush_at_non_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.bit_length == 3
        # getvalue pads the final partial byte with zeros on the right.
        assert writer.getvalue() == bytes([0b10100000])
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101

    def test_bulk_write_leaves_partial_byte_pending(self):
        writer = BitWriter()
        writer.write_bits_array(np.array([1, 1, 1], dtype=np.uint64), 3)
        assert writer.bit_length == 9
        writer.write_bits(0b1111111, 7)  # crosses the byte boundary
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_bits_array(np.full(3, 3)), [1, 1, 1])
        assert reader.read_bits(7) == 0b1111111

    def test_bulk_matches_scalar_bit_for_bit(self):
        rng = np.random.default_rng(11)
        counts = rng.integers(0, 24, size=300)
        values = np.array(
            [rng.integers(0, 1 << c) if c else 0 for c in counts], dtype=np.uint64
        )
        scalar = BitWriter()
        for v, c in zip(values, counts):
            scalar.write_bits(int(v), int(c))
        bulk = BitWriter()
        bulk.write_bits_array(values, counts)
        assert scalar.getvalue() == bulk.getvalue()
        reader = BitReader(bulk.getvalue())
        np.testing.assert_array_equal(reader.read_bits_array(counts), values)

    def test_bulk_read_past_end_raises(self):
        reader = BitReader(b"\xff")
        with pytest.raises(EOFError):
            reader.read_bits_array(np.array([5, 5]))

    def test_bulk_write_rejects_oversized_values(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits_array(np.array([8], dtype=np.uint64), 3)
        with pytest.raises(ValueError):
            writer.write_bits_array(np.array([-1], dtype=np.int64), 8)

    def test_64_bit_fields(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        writer = BitWriter()
        writer.write_bits_array(values, 64)
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_bits_array(np.full(3, 64)), values)


class TestVarintExtremes:
    def test_max_uint64_roundtrip(self):
        value = 2**64 - 1
        blob = encode_varint(value)
        assert len(blob) == 10
        decoded, pos = decode_varint(blob)
        assert decoded == value and pos == 10
        arr = np.array([2**64 - 1, 0, 1], dtype=np.uint64)
        out, _ = decode_varint_array(encode_varint_array(arr), 3)
        np.testing.assert_array_equal(out, arr)

    def test_int64_extremes_signed(self):
        extremes = np.array(
            [np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0, -1, 1], dtype=np.int64
        )
        blob = encode_signed_varint_array(extremes)
        ref = b"".join(encode_signed_varint(int(v)) for v in extremes)
        assert blob == ref
        out, _ = decode_signed_varint_array(blob, extremes.size)
        np.testing.assert_array_equal(out, extremes)

    def test_array_codec_matches_scalar_bytes(self):
        rng = np.random.default_rng(13)
        arr = rng.integers(0, 2**62, size=500)
        assert encode_varint_array(arr) == b"".join(encode_varint(int(v)) for v in arr)

    def test_truncated_array_raises(self):
        blob = encode_varint_array(np.array([300, 300]))
        with pytest.raises(EOFError):
            decode_varint_array(blob[:-1], 2)

    def test_overlong_varint_rejected(self):
        blob = b"\x80" * 11 + b"\x01"
        with pytest.raises(ValueError):
            decode_varint(blob)
        with pytest.raises(ValueError):
            decode_varint_array(blob, 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)
        with pytest.raises(ValueError):
            encode_varint_array(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_array_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        out, pos = decode_varint_array(encode_varint_array(arr), arr.size)
        assert pos == len(encode_varint_array(arr))
        np.testing.assert_array_equal(out.astype(np.int64), arr)


class TestHuffmanRobustness:
    def test_truncated_payload_raises(self):
        blob = huffman_encode([1, 2, 3, 1, 2, 1] * 20)
        with pytest.raises((EOFError, ValueError)):
            huffman_decode(blob[:-2])

    def test_garbage_header_raises(self):
        with pytest.raises((EOFError, ValueError)):
            huffman_decode(b"\xff\xff\xff")

    def test_long_codes_fall_back_to_scalar_decoder(self):
        # A hand-built header with code lengths above the table limit still
        # decodes through the scalar path (foreign/legacy streams).
        from repro.encoding.huffman import HuffmanCode, _MAX_TABLE_BITS

        code = HuffmanCode.from_lengths({0: 1, 1: 2, 2: _MAX_TABLE_BITS + 2, 3: _MAX_TABLE_BITS + 2})
        header = bytearray()
        header.extend(encode_varint(4))  # n_symbols
        header.extend(encode_varint(len(code.symbols)))
        for sym, length in zip(code.symbols, code.lengths):
            header.extend(encode_varint(sym))
            header.extend(encode_varint(length))
        writer = BitWriter()
        lookup = code.as_lookup()
        for sym in [0, 1, 2, 3]:
            cw, ln = lookup[sym]
            writer.write_bits(cw, ln)
        payload = writer.getvalue()
        header.extend(encode_varint(len(payload)))
        header.extend(payload)
        np.testing.assert_array_equal(huffman_decode(bytes(header)), [0, 1, 2, 3])


class TestBackendTagDispatch:
    def _tag(self, blob: bytes) -> bytes:
        return blob[:1]

    def test_runny_stream_uses_rle_huffman(self):
        symbols = np.repeat(np.array([3, 7, 3, 9]), 200)
        backend = LosslessBackend("huffman")
        blob = backend.encode_symbols(symbols)
        assert self._tag(blob) == b"H"
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)

    def test_non_runny_stream_uses_direct_huffman(self):
        rng = np.random.default_rng(17)
        symbols = np.abs(rng.geometric(0.3, size=2000) - 1)
        backend = LosslessBackend("huffman")
        blob = backend.encode_symbols(symbols)
        assert self._tag(blob) == b"D"
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)

    def test_high_entropy_stream_uses_packed(self):
        rng = np.random.default_rng(19)
        symbols = rng.integers(0, 2**20, size=300)
        backend = LosslessBackend("huffman")
        blob = backend.encode_symbols(symbols)
        assert self._tag(blob) == b"P"
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)

    def test_raw_backend(self):
        symbols = np.array([0, 5, 2**40])
        backend = LosslessBackend("raw")
        blob = backend.encode_symbols(symbols)
        assert self._tag(blob) == b"R"
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            LosslessBackend("huffman").decode_symbols(b"X123")

    @given(
        st.lists(st.integers(min_value=0, max_value=5000), max_size=400),
        st.sampled_from(["huffman", "zstd", "raw"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_backend_roundtrip_property(self, symbols, name):
        arr = np.asarray(symbols, dtype=np.int64)
        backend = LosslessBackend(name)
        np.testing.assert_array_equal(
            backend.decode_symbols(backend.encode_symbols(arr)), arr
        )
