"""Tests for repro.encoding.huffman."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import (
    HuffmanCode,
    huffman_code_lengths,
    huffman_decode,
    huffman_encode,
)


class TestCodeLengths:
    def test_empty_frequencies(self):
        assert huffman_code_lengths({}) == {}

    def test_single_symbol_gets_length_one(self):
        assert huffman_code_lengths({5: 100}) == {5: 1}

    def test_two_symbols_get_one_bit_each(self):
        lengths = huffman_code_lengths({0: 5, 1: 5})
        assert lengths == {0: 1, 1: 1}

    def test_rare_symbols_get_longer_codes(self):
        lengths = huffman_code_lengths({0: 1000, 1: 10, 2: 1})
        assert lengths[0] < lengths[2]

    def test_kraft_inequality_holds(self):
        freqs = {i: (i + 1) ** 2 for i in range(20)}
        lengths = huffman_code_lengths(freqs)
        kraft = sum(2.0 ** -l for l in lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_optimality_against_entropy(self):
        # Average Huffman length is within 1 bit of the entropy.
        rng = np.random.default_rng(0)
        symbols = rng.geometric(0.3, size=5000) - 1
        values, counts = np.unique(symbols, return_counts=True)
        freqs = {int(v): int(c) for v, c in zip(values, counts)}
        lengths = huffman_code_lengths(freqs)
        total = counts.sum()
        probs = counts / total
        entropy = -(probs * np.log2(probs)).sum()
        avg_len = sum(freqs[s] * lengths[s] for s in freqs) / total
        assert entropy <= avg_len <= entropy + 1.0


class TestCanonicalCode:
    def test_codes_are_prefix_free(self):
        lengths = huffman_code_lengths({i: i + 1 for i in range(10)})
        code = HuffmanCode.from_lengths(lengths)
        entries = sorted(zip(code.lengths, code.codes))
        for i, (li, ci) in enumerate(entries):
            for lj, cj in entries[i + 1 :]:
                assert cj >> (lj - li) != ci, "prefix property violated"

    def test_lookup_tables_are_consistent(self):
        lengths = huffman_code_lengths({1: 4, 2: 3, 3: 2, 4: 1})
        code = HuffmanCode.from_lengths(lengths)
        lookup = code.as_lookup()
        decoding = code.decoding_table()
        for symbol, (codeword, length) in lookup.items():
            assert decoding[(length, codeword)] == symbol


class TestEncodeDecode:
    def test_empty_stream(self):
        blob = huffman_encode([])
        assert huffman_decode(blob).size == 0

    def test_single_symbol_stream(self):
        blob = huffman_encode([7] * 100)
        decoded = huffman_decode(blob)
        np.testing.assert_array_equal(decoded, np.full(100, 7))

    def test_roundtrip_skewed_distribution(self):
        rng = np.random.default_rng(1)
        symbols = np.abs(rng.geometric(0.2, size=2000) - 1)
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    def test_compresses_skewed_better_than_uniform(self):
        rng = np.random.default_rng(2)
        skewed = np.zeros(4000, dtype=np.int64)
        skewed[:100] = rng.integers(0, 64, size=100)
        uniform = rng.integers(0, 64, size=4000)
        assert len(huffman_encode(skewed)) < len(huffman_encode(uniform))

    def test_rejects_negative_symbols(self):
        with pytest.raises(ValueError):
            huffman_encode([-1, 2])

    def test_large_alphabet(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 5000, size=3000)
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, symbols):
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, np.asarray(symbols, dtype=np.int64))
