"""Tests for repro.encoding.rle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.rle import rle_decode, rle_encode


class TestRleEncode:
    def test_empty(self):
        values, runs = rle_encode(np.array([], dtype=np.int64))
        assert values.size == 0 and runs.size == 0

    def test_single_run(self):
        values, runs = rle_encode(np.full(10, 3))
        np.testing.assert_array_equal(values, [3])
        np.testing.assert_array_equal(runs, [10])

    def test_alternating_values(self):
        values, runs = rle_encode(np.array([1, 2, 1, 2]))
        np.testing.assert_array_equal(values, [1, 2, 1, 2])
        np.testing.assert_array_equal(runs, [1, 1, 1, 1])

    def test_mixed_runs(self):
        values, runs = rle_encode(np.array([0, 0, 0, 5, 5, -1]))
        np.testing.assert_array_equal(values, [0, 5, -1])
        np.testing.assert_array_equal(runs, [3, 2, 1])

    def test_run_lengths_sum_to_input_size(self):
        data = np.random.default_rng(0).integers(0, 3, size=500)
        _, runs = rle_encode(data)
        assert runs.sum() == data.size


class TestRleDecode:
    def test_roundtrip(self):
        data = np.random.default_rng(1).integers(-2, 3, size=1000)
        np.testing.assert_array_equal(rle_decode(*rle_encode(data)), data)

    def test_empty_roundtrip(self):
        out = rle_decode(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            rle_decode(np.array([1, 2]), np.array([1]))

    def test_rejects_non_positive_runs(self):
        with pytest.raises(ValueError):
            rle_decode(np.array([1]), np.array([0]))

    @given(st.lists(st.integers(min_value=-5, max_value=5), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        arr = np.asarray(data, dtype=np.int64)
        np.testing.assert_array_equal(rle_decode(*rle_encode(arr)), arr)
