"""Tests for repro.encoding.zstd_like."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.zstd_like import zstd_like_compress, zstd_like_decompress


class TestZstdLike:
    def test_empty_roundtrip(self):
        assert zstd_like_decompress(zstd_like_compress(b"")) == b""

    def test_text_roundtrip(self):
        data = b"correlation structures in scientific datasets " * 50
        assert zstd_like_decompress(zstd_like_compress(data)) == data

    def test_repetitive_data_compresses(self):
        data = bytes(range(16)) * 512
        blob = zstd_like_compress(data)
        assert len(blob) < len(data) / 4

    def test_random_data_does_not_explode(self):
        data = np.random.default_rng(0).integers(0, 256, size=4096).astype(np.uint8).tobytes()
        blob = zstd_like_compress(data)
        # Entropy-coded random bytes should stay within ~35% of the input size.
        assert len(blob) < len(data) * 1.35
        assert zstd_like_decompress(blob) == data

    def test_quantization_code_stream_compresses_well(self):
        # A stream shaped like SZ's output: many zeros, few spikes.
        rng = np.random.default_rng(1)
        codes = np.zeros(8192, dtype=np.uint8)
        spikes = rng.integers(0, 8192, size=200)
        codes[spikes] = rng.integers(1, 255, size=200)
        data = codes.tobytes()
        blob = zstd_like_compress(data)
        assert len(blob) < len(data) / 4
        assert zstd_like_decompress(blob) == data

    def test_corrupt_header_rejected(self):
        with pytest.raises((ValueError, EOFError)):
            zstd_like_decompress(b"\xff\xff\xff")

    @given(st.binary(max_size=1500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        assert zstd_like_decompress(zstd_like_compress(data)) == data
