"""Tests for repro.encoding.zstd_like and the LosslessBackend stream tags."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.base import LosslessBackend
from repro.encoding.zstd_like import zstd_like_compress, zstd_like_decompress


class TestZstdLike:
    def test_empty_roundtrip(self):
        assert zstd_like_decompress(zstd_like_compress(b"")) == b""

    def test_text_roundtrip(self):
        data = b"correlation structures in scientific datasets " * 50
        assert zstd_like_decompress(zstd_like_compress(data)) == data

    def test_repetitive_data_compresses(self):
        data = bytes(range(16)) * 512
        blob = zstd_like_compress(data)
        assert len(blob) < len(data) / 4

    def test_random_data_does_not_explode(self):
        data = np.random.default_rng(0).integers(0, 256, size=4096).astype(np.uint8).tobytes()
        blob = zstd_like_compress(data)
        # Entropy-coded random bytes should stay within ~35% of the input size.
        assert len(blob) < len(data) * 1.35
        assert zstd_like_decompress(blob) == data

    def test_quantization_code_stream_compresses_well(self):
        # A stream shaped like SZ's output: many zeros, few spikes.
        rng = np.random.default_rng(1)
        codes = np.zeros(8192, dtype=np.uint8)
        spikes = rng.integers(0, 8192, size=200)
        codes[spikes] = rng.integers(1, 255, size=200)
        data = codes.tobytes()
        blob = zstd_like_compress(data)
        assert len(blob) < len(data) / 4
        assert zstd_like_decompress(blob) == data

    def test_corrupt_header_rejected(self):
        with pytest.raises((ValueError, EOFError)):
            zstd_like_decompress(b"\xff\xff\xff")

    @given(st.binary(max_size=1500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        assert zstd_like_decompress(zstd_like_compress(data)) == data

    @given(st.integers(0, 2**32), st.integers(0, 4000), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_repetitive_property(self, seed, size, period):
        rng = np.random.default_rng(seed)
        pattern = rng.integers(0, 256, size=period).astype(np.uint8)
        data = np.tile(pattern, -(-max(size, 1) // period))[:size].tobytes()
        assert zstd_like_decompress(zstd_like_compress(data)) == data

    @given(st.integers(0, 2**32), st.integers(0, 4000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random_property(self, seed, size):
        data = np.random.default_rng(seed).integers(0, 256, size=size).astype(np.uint8).tobytes()
        assert zstd_like_decompress(zstd_like_compress(data)) == data


class TestBackendStreamTags:
    """Round-trip every LosslessBackend stream-tag path explicitly.

    ``encode_symbols`` is self-describing via a leading tag byte; each
    symbol distribution below deterministically lands on one tag, and the
    test asserts both the tag and the round trip (mirroring the shape-wise
    sweep in tests/compressors/test_roundtrip_properties.py).
    """

    @staticmethod
    def _streams():
        rng = np.random.default_rng(11)
        runs = np.repeat(rng.integers(0, 4, size=64), rng.integers(8, 40, size=64))
        skewed = np.abs(rng.geometric(0.4, size=3000) - 1)
        wide_uniform = rng.integers(0, 1 << 14, size=2000)
        return {
            "H": ("huffman", runs),  # long runs -> RLE + Huffman
            "D": ("huffman", skewed),  # runs don't pay, alphabet peaked
            "P": ("huffman", wide_uniform),  # near-uniform wide -> packed
            "R": ("raw", skewed),
            "Z": ("zstd", runs),
        }

    @pytest.mark.parametrize("tag", ["H", "D", "P", "R", "Z"])
    def test_tag_path_roundtrip(self, tag):
        backend_name, symbols = self._streams()[tag]
        backend = LosslessBackend(backend_name)
        blob = backend.encode_symbols(symbols)
        assert blob[:1] == tag.encode()
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)

    @pytest.mark.parametrize("name", LosslessBackend.NAMES)
    @given(
        symbols=st.lists(st.integers(0, 300), max_size=400),
        repeat=st.integers(1, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_backend_roundtrip_property(self, name, symbols, repeat):
        backend = LosslessBackend(name)
        arr = np.repeat(np.asarray(symbols, dtype=np.int64), repeat)
        np.testing.assert_array_equal(backend.decode_symbols(backend.encode_symbols(arr)), arr)

    def test_zstd_tag_wraps_direct_body_when_runs_do_not_pay(self):
        # A periodic permutation stream has no runs (every run has length 1,
        # so the encoder picks the direct body) but is highly redundant, so
        # the LZ77 stage beats fixed-width packing: the blob must be a Z
        # stream carrying a D body.
        rng = np.random.default_rng(3)
        symbols = np.tile(rng.permutation(64), 100)
        backend = LosslessBackend("zstd")
        blob = backend.encode_symbols(symbols)
        assert blob[:1] == b"Z"
        inner = zstd_like_decompress(blob[1:])
        assert inner[:1] == b"D"
        np.testing.assert_array_equal(backend.decode_symbols(blob), symbols)
