"""Tests for the entropy-context layer (repro.encoding.context + the
lossless backend's context-coded ``C`` streams)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.base import LosslessBackend
from repro.encoding.context import EntropyContext, stream_width
from repro.encoding.huffman import (
    canonical_code_from_counts,
    huffman_decode_with_code,
    huffman_encode_with_code,
)


def _peaked(rng, n, scale=3, outlier_rate=0.01, outlier_span=(500, 4000)):
    """Peaked stream with rare large outliers — the shape where a
    table-free context code beats both packing and self-coded Huffman."""

    base = np.abs(rng.normal(0, scale, n)).astype(np.int64)
    outliers = rng.random(n) < outlier_rate
    base[outliers] += rng.integers(*outlier_span, int(outliers.sum()))
    return base


class TestEntropyContext:
    def test_pools_by_width(self):
        context = EntropyContext.from_streams(
            [np.array([1, 2, 3]), np.array([100, 200]), np.array([2, 2])]
        )
        assert context.widths == (2, 8)
        pool = context.pool(2)
        assert pool is not None
        assert pool.symbols.tolist() == [1, 2, 3]
        assert pool.counts.tolist() == [1, 3, 1]
        assert context.pool(5) is None

    def test_empty_streams_ignored(self):
        context = EntropyContext.from_streams([np.empty(0, dtype=np.int64)])
        assert not context
        assert context.widths == ()

    def test_stream_width(self):
        assert stream_width(np.empty(0, dtype=np.int64)) == 0
        assert stream_width(np.array([0])) == 1
        assert stream_width(np.array([255])) == 8
        assert stream_width(np.array([256])) == 9

    def test_digest_distinguishes_contents(self):
        a = EntropyContext.from_streams([np.array([1, 2, 3])])
        b = EntropyContext.from_streams([np.array([1, 2, 4])])
        c = EntropyContext.from_streams([np.array([1, 2, 3])])
        assert a.digest() == c.digest()
        assert a.digest() != b.digest()

    def test_escape_parameters(self):
        pool = EntropyContext.from_streams([np.full(1000, 7)]).pool(3)
        assert pool.escape_symbol == 8
        assert pool.escape_count == 1000 // 64


class TestHuffmanWithCode:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        symbols = np.arange(20, dtype=np.int64)
        counts = rng.integers(1, 100, 20).astype(np.int64)
        syms_c, lens_c, codes_c = canonical_code_from_counts(symbols, counts)
        stream = rng.integers(0, 20, 500).astype(np.int64)
        payload = huffman_encode_with_code(stream, syms_c, lens_c, codes_c)
        decoded = huffman_decode_with_code(payload, stream.size, syms_c, lens_c)
        assert np.array_equal(decoded, stream)

    def test_single_symbol_code(self):
        syms_c, lens_c, codes_c = canonical_code_from_counts(
            np.array([5]), np.array([10])
        )
        stream = np.full(17, 5, dtype=np.int64)
        payload = huffman_encode_with_code(stream, syms_c, lens_c, codes_c)
        decoded = huffman_decode_with_code(payload, 17, syms_c, lens_c)
        assert np.array_equal(decoded, stream)

    def test_out_of_alphabet_symbol_rejected(self):
        syms_c, lens_c, codes_c = canonical_code_from_counts(
            np.array([1, 2]), np.array([3, 4])
        )
        with pytest.raises(ValueError, match="outside the agreed code"):
            huffman_encode_with_code(np.array([1, 7]), syms_c, lens_c, codes_c)

    def test_empty_frequency_table_rejected(self):
        with pytest.raises(ValueError):
            canonical_code_from_counts(np.empty(0), np.empty(0))


class TestContextStreams:
    def test_context_candidate_wins_and_round_trips(self):
        rng = np.random.default_rng(1)
        backend = LosslessBackend("huffman")
        context = EntropyContext.from_streams([_peaked(rng, 50000)])
        stream = _peaked(rng, 1500)
        plain = backend.encode_symbols(stream)
        coded = backend.encode_symbols(stream, context=context)
        assert coded[:1] == b"C"
        assert len(coded) < len(plain)
        assert np.array_equal(
            backend.decode_symbols(coded, context=context), stream
        )

    def test_context_never_hurts(self):
        rng = np.random.default_rng(2)
        backend = LosslessBackend("huffman")
        context = EntropyContext.from_streams([rng.integers(0, 4, 100)])
        for stream in (
            rng.integers(0, 1 << 14, 4000),  # mismatched stats
            np.zeros(100, dtype=np.int64),
            rng.poisson(2, 500).astype(np.int64),
        ):
            plain = backend.encode_symbols(stream)
            coded = backend.encode_symbols(stream, context=context)
            assert len(coded) <= len(plain)
            assert np.array_equal(
                backend.decode_symbols(coded, context=context), stream
            )

    def test_context_none_is_bit_identical(self):
        rng = np.random.default_rng(3)
        backend = LosslessBackend("huffman")
        for stream in (
            rng.poisson(8, 3000).astype(np.int64),
            _peaked(rng, 2000),
            np.empty(0, dtype=np.int64),
        ):
            assert backend.encode_symbols(stream) == backend.encode_symbols(
                stream, context=None
            )

    def test_escapes_round_trip(self):
        rng = np.random.default_rng(4)
        backend = LosslessBackend("huffman")
        context = EntropyContext.from_streams([_peaked(rng, 40000)])
        stream = _peaked(rng, 1000)
        stream[::37] += 1  # force symbols the reference never saw
        coded = backend.encode_symbols(stream, context=context)
        assert np.array_equal(
            backend.decode_symbols(coded, context=context), stream
        )

    def test_decode_without_context_raises(self):
        rng = np.random.default_rng(5)
        backend = LosslessBackend("huffman")
        context = EntropyContext.from_streams([_peaked(rng, 50000)])
        coded = backend.encode_symbols(_peaked(rng, 1500), context=context)
        assert coded[:1] == b"C"
        with pytest.raises(ValueError, match="entropy context"):
            backend.decode_symbols(coded)

    def test_decode_with_wrong_width_pool_raises(self):
        rng = np.random.default_rng(6)
        backend = LosslessBackend("huffman")
        context = EntropyContext.from_streams([_peaked(rng, 50000)])
        coded = backend.encode_symbols(_peaked(rng, 1500), context=context)
        assert coded[:1] == b"C"
        narrow = EntropyContext.from_streams([np.array([0, 1, 1])])
        with pytest.raises(ValueError, match="no pool"):
            backend.decode_symbols(coded, context=narrow)

    def test_zstd_backend_supports_context(self):
        rng = np.random.default_rng(7)
        backend = LosslessBackend("zstd")
        context = EntropyContext.from_streams([_peaked(rng, 50000)])
        stream = _peaked(rng, 1500)
        coded = backend.encode_symbols(stream, context=context)
        assert np.array_equal(
            backend.decode_symbols(coded, context=context), stream
        )

    def test_raw_backend_ignores_context(self):
        rng = np.random.default_rng(8)
        backend = LosslessBackend("raw")
        context = EntropyContext.from_streams([_peaked(rng, 10000)])
        stream = _peaked(rng, 200)
        assert backend.encode_symbols(stream, context=context) == (
            backend.encode_symbols(stream)
        )
