"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 support (no ``wheel`` package).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
