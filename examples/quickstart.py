#!/usr/bin/env python
"""Quickstart: compress one field, measure it, relate CR to its correlation range.

This is the 60-second tour of the library:

1. generate a 2D Gaussian random field with a known correlation range,
2. estimate that range back from the data with the variogram toolbox,
3. compress the field with the SZ-like, ZFP-like and MGARD-like
   compressors at several absolute error bounds, and
4. print the compression ratios next to the correlation statistics --
   the core measurement behind every figure of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations


from repro.datasets import generate_gaussian_field
from repro.pressio import compress_and_measure
from repro.stats import (
    estimate_variogram_range,
    std_local_svd_truncation,
    std_local_variogram_range,
)


def main() -> None:
    true_range = 16.0
    field = generate_gaussian_field((256, 256), correlation_range=true_range, seed=2024)

    print("=== dataset ===")
    print(f"shape={field.shape}, mean={field.mean():+.3f}, std={field.std():.3f}")

    print("\n=== correlation statistics ===")
    global_range = estimate_variogram_range(field)
    local_range_std = std_local_variogram_range(field, window=32)
    local_svd_std = std_local_svd_truncation(field, window=32)
    print(f"true correlation range          : {true_range:8.2f}")
    print(f"estimated global variogram range: {global_range:8.2f}")
    print(f"std of local variogram ranges   : {local_range_std:8.2f}  (H=32)")
    print(f"std of local SVD truncation     : {local_svd_std:8.2f}  (H=32, 99% energy)")

    print("\n=== compression ===")
    header = f"{'compressor':>10} {'error bound':>12} {'CR':>8} {'bitrate':>8} {'PSNR':>8} {'max err':>10}"
    print(header)
    print("-" * len(header))
    for compressor in ("sz", "zfp", "mgard"):
        for bound in (1e-5, 1e-4, 1e-3, 1e-2):
            compressed, metrics = compress_and_measure(field, compressor, bound)
            print(
                f"{compressor:>10} {bound:>12.0e} {metrics.compression_ratio:>8.2f} "
                f"{metrics.bit_rate:>8.3f} {metrics.psnr:>8.2f} {metrics.max_abs_error:>10.2e}"
            )
            assert metrics.bound_satisfied, "error bound must hold"

    print(
        "\nSmoother (more correlated) fields give larger CR; rerun with a "
        "different correlation_range to see the relationship the paper studies."
    )


if __name__ == "__main__":
    main()
