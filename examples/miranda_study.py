#!/usr/bin/env python
"""Miranda study: local correlation statistics on heterogeneous data (Figs. 4 & 7).

Generates a Miranda-like turbulence volume (or loads the real SDRBench
velocityx file if you have it), slices it into 2D planes, and relates the
compression ratio of every plane to

* the global variogram range (Figure 4), and
* the std of local variogram ranges and of local SVD truncation levels
  (Figure 7),

printing the fitted logarithmic-regression coefficients per compressor and
error bound.

Run with:  python examples/miranda_study.py [--slices 8]
           python examples/miranda_study.py --raw-file velocityx.f32 --raw-shape 256 384 384
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ExperimentConfig
from repro.core.figures import series_from_result
from repro.core.pipeline import run_experiment_on_fields
from repro.datasets.io import load_raw
from repro.datasets.miranda import MirandaConfig, MirandaSurrogate
from repro.datasets.slicing import slice_volume


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slices", type=int, default=8, help="number of 2D slices to analyse")
    parser.add_argument("--size", type=int, default=128, help="surrogate volume edge length")
    parser.add_argument("--depth", type=int, default=32, help="surrogate volume depth (slice axis)")
    parser.add_argument(
        "--raw-file", type=str, default=None, help="optional SDRBench raw file (float32)"
    )
    parser.add_argument(
        "--raw-shape",
        type=int,
        nargs=3,
        default=(256, 384, 384),
        help="shape of the raw file volume",
    )
    return parser.parse_args()


def load_volume(args: argparse.Namespace) -> np.ndarray:
    if args.raw_file:
        print(f"loading real Miranda data from {args.raw_file}")
        return load_raw(args.raw_file, args.raw_shape, dtype="float32")
    print("generating Miranda-like surrogate volume (see DESIGN.md for the substitution)")
    config = MirandaConfig(shape=(args.depth, args.size, args.size))
    return MirandaSurrogate(config).generate(seed=11)


def main() -> None:
    args = parse_args()
    volume = load_volume(args)
    slices = slice_volume(volume, axis=0, count=args.slices)
    fields = [(f"velocityx-z{idx}", plane) for idx, plane in slices]
    print(f"analysing {len(fields)} slices of shape {fields[0][1].shape}")

    config = ExperimentConfig(error_bounds=(1e-5, 1e-4, 1e-3, 1e-2))
    result = run_experiment_on_fields(fields, dataset="miranda", config=config)

    panels = {
        "Figure 4: CR vs global variogram range": "global_variogram_range",
        "Figure 7 (left): CR vs std of local variogram range (H=32)": "std_local_variogram_range",
        "Figure 7 (right): CR vs std of local SVD truncation (H=32)": "std_local_svd_truncation",
    }
    for title, statistic in panels.items():
        print(f"\n=== {title} ===")
        print(f"{'compressor':>10} {'bound':>8} {'alpha':>10} {'beta':>10} {'R^2':>8}")
        for series in series_from_result(result, statistic, figure=title):
            if series.fit is None:
                continue
            print(
                f"{series.compressor:>10} {series.error_bound:>8.0e} "
                f"{series.fit.alpha:>10.3f} {series.fit.beta:>10.3f} {series.fit.r_squared:>8.3f}"
            )

    print("\nper-slice detail (error bound 1e-3):")
    print(f"{'slice':>16} {'global range':>13} {'std local rng':>14} {'std local svd':>14} "
          f"{'CR sz':>8} {'CR zfp':>8} {'CR mgard':>9}")
    labels = sorted({r.field_label for r in result.records})
    for label in labels:
        records = [r for r in result.records if r.field_label == label and r.error_bound == 1e-3]
        if not records:
            continue
        stats = records[0].statistics
        crs = {r.compressor: r.compression_ratio for r in records}
        print(
            f"{label:>16} {stats.global_variogram_range:>13.2f} "
            f"{stats.std_local_variogram_range:>14.2f} {stats.std_local_svd_truncation:>14.2f} "
            f"{crs.get('sz', float('nan')):>8.2f} {crs.get('zfp', float('nan')):>8.2f} "
            f"{crs.get('mgard', float('nan')):>9.2f}"
        )


if __name__ == "__main__":
    main()
