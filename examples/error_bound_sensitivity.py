#!/usr/bin/env python
"""Error-bound sensitivity: how the CR-vs-correlation relationship changes with the bound.

The paper observes that lower error bounds show lower dispersion of the
points around the fitted logarithmic curves and fewer outliers.  This
example quantifies that: for a sweep of correlation ranges it fits the
logarithmic regression at each error bound and prints the residual
standard deviation and R^2 per bound, plus the quality metrics (PSNR) of
the reconstructions — the quantity the paper's future-work section targets
next.

Run with:  python examples/error_bound_sensitivity.py [--size 96]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ExperimentConfig
from repro.core.pipeline import run_experiment_on_fields
from repro.core.regression import fit_log_regression
from repro.datasets import generate_gaussian_field
from repro.utils.rng import derive_seeds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()

    ranges = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)
    seeds = derive_seeds(99, len(ranges))
    fields = [
        (f"a{r:g}", generate_gaussian_field((args.size, args.size), r, seed=s))
        for r, s in zip(ranges, seeds)
    ]
    bounds = (1e-5, 1e-4, 1e-3, 1e-2)
    config = ExperimentConfig(
        error_bounds=bounds, compute_local_variogram=False, compute_local_svd=False
    )
    result = run_experiment_on_fields(fields, dataset="sensitivity", config=config)

    print("=== dispersion of CR around the fitted log curve, per error bound ===")
    print(f"{'compressor':>10} {'bound':>8} {'beta':>9} {'R^2':>7} {'resid std':>10} "
          f"{'resid std / mean CR':>20}")
    for compressor in result.compressors:
        for bound in bounds:
            records = result.filter(compressor=compressor, error_bound=bound)
            x = [r.statistics.global_variogram_range for r in records]
            cr = [r.compression_ratio for r in records]
            fit = fit_log_regression(x, cr)
            mean_cr = float(np.mean(cr))
            print(
                f"{compressor:>10} {bound:>8.0e} {fit.beta:>9.3f} {fit.r_squared:>7.3f} "
                f"{fit.residual_std:>10.3f} {fit.residual_std / mean_cr:>20.3f}"
            )

    print("\n=== reconstruction quality (PSNR) by bound, averaged over the sweep ===")
    print(f"{'compressor':>10} {'bound':>8} {'mean PSNR':>10} {'mean bitrate':>13}")
    for compressor in result.compressors:
        for bound in bounds:
            records = result.filter(compressor=compressor, error_bound=bound)
            psnr = float(np.mean([r.metrics.psnr for r in records]))
            bitrate = float(np.mean([r.metrics.bit_rate for r in records]))
            print(f"{compressor:>10} {bound:>8.0e} {psnr:>10.2f} {bitrate:>13.3f}")


if __name__ == "__main__":
    main()
