#!/usr/bin/env python
"""Gaussian-field study: reproduce the Figure 3 relationship end to end.

Sweeps single-range and multi-range Gaussian random fields over a grid of
correlation ranges, measures the compression ratio of every compressor at
the paper's error bounds, fits the logarithmic regression
``CR = alpha + beta * log(range)`` per (compressor, bound), and prints the
series in the format of the paper's Figure 3 legends.

Run with:  python examples/gaussian_field_study.py [--size 128] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.core import ExperimentConfig, figure3_global_range_gaussian
from repro.core.limits import estimate_compressibility_plateau
from repro.datasets.registry import default_registry
from repro.utils.parallel import ParallelConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128, help="field edge length (grid points)")
    parser.add_argument("--workers", type=int, default=1, help="process-pool workers")
    parser.add_argument(
        "--bounds",
        type=float,
        nargs="+",
        default=[1e-5, 1e-4, 1e-3, 1e-2],
        help="absolute error bounds to sweep",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    registry = default_registry(gaussian_shape=(args.size, args.size))
    config = ExperimentConfig(
        error_bounds=tuple(args.bounds),
        compute_local_variogram=False,
        compute_local_svd=False,
    )
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None

    output = figure3_global_range_gaussian(
        config=config, registry=registry, seed=7, parallel=parallel
    )

    for panel in ("single", "multi"):
        print(f"\n=== Figure 3 ({panel}-range Gaussian fields) ===")
        print(f"{'compressor':>10} {'bound':>8} {'alpha':>10} {'beta':>10} {'R^2':>8} {'points':>7}")
        for series in output[panel]:
            fit = series.fit
            if fit is None:
                print(f"{series.compressor:>10} {series.error_bound:>8.0e}  (fit unavailable)")
                continue
            print(
                f"{series.compressor:>10} {series.error_bound:>8.0e} {fit.alpha:>10.3f} "
                f"{fit.beta:>10.3f} {fit.r_squared:>8.3f} {fit.n_points:>7d}"
            )

    # The paper notes a plateau of CR for strongly correlated fields: check
    # for it on the largest-bound SZ curve of the single-range panel.
    sz_series = [
        s for s in output["single"] if s.compressor == "sz" and s.error_bound == max(args.bounds)
    ]
    if sz_series:
        series = sz_series[0]
        plateau = estimate_compressibility_plateau(series.x, series.compression_ratios)
        print("\n=== compressibility plateau (SZ, loosest bound, single-range) ===")
        if plateau.detected:
            print(
                f"plateau detected: CR saturates near {plateau.plateau_cr:.1f} "
                f"beyond range ~{plateau.onset_x:.1f}"
            )
        else:
            print(
                "no plateau inside the swept range "
                f"(initial slope {plateau.initial_slope:.2f}, final slope {plateau.final_slope:.2f})"
            )


if __name__ == "__main__":
    main()
