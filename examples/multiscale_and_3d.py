#!/usr/bin/env python
"""Multiscale and 3D extensions: wavelet statistics, anisotropy, volumetric variograms.

The paper closes with two methodological directions: richer multiscale
statistics (wavelet / SVD decompositions) and extending the analysis to a
3D context.  This example exercises both extensions the library provides:

1. the **wavelet energy spectrum** of single- and multi-range Gaussian
   fields and of Miranda-like slices, and its relationship to the
   compression ratio (a multiscale alternative to the variogram range);
2. the **directional variogram / anisotropy ratio** as a diagnostic for
   when the isotropic range is a questionable summary;
3. the **3D variogram range** of a Miranda-like volume, compared with the
   per-slice 2D ranges the paper uses.

Run with:  python examples/multiscale_and_3d.py
"""

from __future__ import annotations

import numpy as np

from repro.core.regression import fit_log_regression
from repro.datasets import generate_gaussian_field, generate_multi_range_field
from repro.datasets.miranda import MirandaConfig, MirandaSurrogate
from repro.pressio import compress_and_measure
from repro.stats import (
    anisotropy_ratio,
    estimate_variogram_range,
    estimate_variogram_range_3d,
    wavelet_energy_statistics,
)
from repro.utils.rng import derive_seeds


def wavelet_vs_compression() -> None:
    print("=== wavelet spectral slope vs compression ratio (bound 1e-3) ===")
    ranges = (2.0, 4.0, 8.0, 16.0, 32.0)
    seeds = derive_seeds(31, len(ranges))
    slopes, crs = [], []
    print(f"{'field':>12} {'wavelet slope':>14} {'approx frac':>12} {'CR (sz)':>9}")
    for r, seed in zip(ranges, seeds):
        field = generate_gaussian_field((128, 128), r, seed=seed)
        summary = wavelet_energy_statistics(field, levels=4)
        _, metrics = compress_and_measure(field, "sz", 1e-3)
        slopes.append(summary.spectral_slope)
        crs.append(metrics.compression_ratio)
        print(
            f"{'a=' + format(r, 'g'):>12} {summary.spectral_slope:>14.3f} "
            f"{summary.approximation_fraction:>12.3f} {metrics.compression_ratio:>9.2f}"
        )
    fit = fit_log_regression(np.exp(slopes), crs)  # log of exp(slope) = slope
    print(f"linear fit CR vs wavelet slope: beta={fit.beta:.3f}, R^2={fit.r_squared:.3f}")


def anisotropy_diagnostics() -> None:
    print("\n=== anisotropy diagnostics ===")
    iso = generate_gaussian_field((128, 128), 8.0, seed=5)
    multi = generate_multi_range_field((128, 128), (3.0, 24.0), seed=6)
    # Build an anisotropic field by smoothing noise along one axis only.
    from scipy.signal import convolve2d

    noise = np.random.default_rng(7).normal(size=(128, 128))
    aniso = convolve2d(noise, np.ones((1, 11)) / 11.0, mode="same", boundary="symm")
    for name, field in (("isotropic", iso), ("multi-range", multi), ("anisotropic", aniso)):
        ratio = anisotropy_ratio(field)
        global_range = estimate_variogram_range(field)
        print(
            f"{name:>12}: isotropic range={global_range:6.2f}  "
            f"row/col range ratio={ratio:5.2f}"
        )


def volumetric_analysis() -> None:
    print("\n=== 3D variogram range vs per-slice 2D ranges (Miranda surrogate) ===")
    surrogate = MirandaSurrogate(MirandaConfig(shape=(24, 96, 96)))
    volume = surrogate.generate(seed=9)
    volumetric = estimate_variogram_range_3d(volume)
    slice_ranges = [estimate_variogram_range(volume[i]) for i in (2, 8, 14, 20)]
    print(f"3D fitted range          : {volumetric:.2f}")
    print(
        "2D per-slice fitted ranges: "
        + ", ".join(f"{value:.2f}" for value in slice_ranges)
    )
    print(
        "The volumetric statistic summarises the whole snapshot in one number, "
        "while the per-slice ranges expose the heterogeneity the paper's local "
        "statistics target."
    )


def main() -> None:
    wavelet_vs_compression()
    anisotropy_diagnostics()
    volumetric_analysis()


if __name__ == "__main__":
    main()
