#!/usr/bin/env python
"""Compressor selection and CR prediction: the related-work baselines in action.

This example contrasts three ways of anticipating compression performance:

1. the **correlation-based model** the paper works toward (CR predicted
   from variogram statistics and the error bound),
2. the **block-sampling estimator** of Lu et al. (compress a sample of
   blocks, extrapolate), and
3. the **entropy bound** of the quantized representation (the
   correlation-blind information-theoretic reference).

It then runs the Tao et al.-style **online SZ/ZFP selection** over a mixed
workload and reports how often the estimated winner matches the true one.

Run with:  python examples/compressor_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import entropy_cr_bound, estimate_cr_by_sampling, select_compressor
from repro.core import CompressionRatioPredictor, ExperimentConfig
from repro.core.pipeline import run_experiment_on_fields
from repro.datasets import generate_gaussian_field, generate_multi_range_field
from repro.pressio import compress_and_measure
from repro.utils.rng import derive_seeds


def build_workload(size: int = 96):
    """A mixed bag of fields spanning smooth to rough, single to multi range."""

    seeds = derive_seeds(123, 8)
    return [
        ("single-a2", generate_gaussian_field((size, size), 2.0, seed=seeds[0])),
        ("single-a6", generate_gaussian_field((size, size), 6.0, seed=seeds[1])),
        ("single-a12", generate_gaussian_field((size, size), 12.0, seed=seeds[2])),
        ("single-a24", generate_gaussian_field((size, size), 24.0, seed=seeds[3])),
        ("multi-2-16", generate_multi_range_field((size, size), (2.0, 16.0), seed=seeds[4])),
        ("multi-4-32", generate_multi_range_field((size, size), (4.0, 32.0), seed=seeds[5])),
        ("multi-2-8", generate_multi_range_field((size, size), (2.0, 8.0), seed=seeds[6])),
        ("multi-8-24", generate_multi_range_field((size, size), (8.0, 24.0), seed=seeds[7])),
    ]


def main() -> None:
    workload = build_workload()
    bound = 1e-3

    # ------------------------------------------------------------------
    # 1. correlation-based CR prediction (train on half, test on half)
    # ------------------------------------------------------------------
    config = ExperimentConfig(compressors=("sz", "zfp"), error_bounds=(1e-4, 1e-3, 1e-2))
    train = run_experiment_on_fields(workload[::2], dataset="train", config=config)
    test = run_experiment_on_fields(workload[1::2], dataset="test", config=config)

    predictor = CompressionRatioPredictor()
    reports = predictor.fit(train.records)
    print("=== correlation-based CR model (trained on half the workload) ===")
    for report in reports:
        print(
            f"{report.compressor:>5}: R^2={report.r_squared:.3f} "
            f"MAE={report.mean_absolute_error:.2f} on {report.n_samples} samples"
        )
    predictions = predictor.predict(list(test.records))
    actual = np.array([r.compression_ratio for r in test.records])
    rel_err = np.abs(predictions - actual) / actual
    print(f"held-out median relative error: {np.median(rel_err) * 100:.1f}%")

    # ------------------------------------------------------------------
    # 2. block-sampling estimator vs truth vs entropy bound
    # ------------------------------------------------------------------
    print("\n=== per-field estimates at error bound 1e-3 (SZ) ===")
    print(f"{'field':>12} {'true CR':>9} {'sampled est.':>13} {'entropy bound':>14}")
    for label, field in workload:
        _, metrics = compress_and_measure(field, "sz", bound)
        sampled = estimate_cr_by_sampling(field, "sz", bound, n_blocks=12, seed=1)
        bound_cr = entropy_cr_bound(field, bound)
        print(
            f"{label:>12} {metrics.compression_ratio:>9.2f} "
            f"{sampled.estimated_cr:>13.2f} {bound_cr:>14.2f}"
        )

    # ------------------------------------------------------------------
    # 3. online SZ/ZFP selection (Tao et al. style)
    # ------------------------------------------------------------------
    print("\n=== adaptive SZ/ZFP selection ===")
    correct = 0
    total_regret = 0.0
    for label, field in workload:
        decision = select_compressor(field, bound, seed=5, verify=True)
        correct += int(bool(decision.correct))
        total_regret += float(decision.regret or 0.0)
        print(
            f"{label:>12}: picked {decision.selected:>4} "
            f"(estimates sz={decision.estimated_crs['sz']:.2f}, "
            f"zfp={decision.estimated_crs['zfp']:.2f}) "
            f"correct={decision.correct}"
        )
    print(
        f"\nselection accuracy: {correct}/{len(workload)}; "
        f"total CR regret: {total_regret:.2f}"
    )


if __name__ == "__main__":
    main()
