"""Throughput micro-benchmarks of the compressor substrate.

These benchmarks time a single compress (and decompress) call per
compressor on a fixed 128x128 Gaussian field, using pytest-benchmark's
repeated timing (they are cheap enough to run multiple rounds).  They are
not a figure of the paper; they document the cost of the reproduction's
pure-NumPy compressors so users can size their own sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.compressors.registry import make_compressor
from repro.datasets.gaussian import generate_gaussian_field

ERROR_BOUND = 1e-3


@pytest.fixture(scope="module")
def bench_field():
    return generate_gaussian_field((128, 128), 12.0, seed=BENCH_SEED)


@pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
def test_compress_throughput(benchmark, bench_field, name):
    compressor = make_compressor(name, ERROR_BOUND)
    compressed = benchmark(compressor.compress, bench_field)
    mb = bench_field.nbytes / 1e6
    if benchmark.stats:  # absent under --benchmark-disable (CI smoke runs)
        print(
            f"\n{name}: CR={compressed.compression_ratio:.2f} on {mb:.2f} MB field "
            f"(mean {benchmark.stats['mean'] * 1e3:.1f} ms -> "
            f"{mb / benchmark.stats['mean']:.1f} MB/s)"
        )
    assert compressed.compression_ratio > 1.0


@pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
def test_decompress_throughput(benchmark, bench_field, name):
    compressor = make_compressor(name, ERROR_BOUND)
    compressed = compressor.compress(bench_field)
    decompressed = benchmark(compressor.decompress, compressed)
    assert np.abs(decompressed - bench_field).max() <= ERROR_BOUND * (1 + 1e-9)


def test_zfp_zstd_backend_compress_throughput(benchmark, bench_field):
    """ZFP with the zstd-like lossless backend — the cell the CI smoke job
    watches for both the sequency-partitioned ZFP stream and the vectorized
    LZ77 staying functional and fast."""

    compressor = make_compressor("zfp", ERROR_BOUND, backend="zstd")
    compressed = benchmark(compressor.compress, bench_field)
    decompressed = compressor.decompress(compressed)
    assert np.abs(decompressed - bench_field).max() <= ERROR_BOUND * (1 + 1e-9)


def test_zstd_like_roundtrip_throughput(benchmark, bench_field):
    """Round-trip of the zstd-like backend over the reference field's raw
    bytes (the lossless-backend ablation's former long-pole)."""

    from repro.encoding.zstd_like import zstd_like_compress, zstd_like_decompress

    data = bench_field.astype("<f4").tobytes()

    def roundtrip():
        return zstd_like_decompress(zstd_like_compress(data))

    out = benchmark(roundtrip)
    assert out == data
