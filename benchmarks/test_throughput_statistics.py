"""Throughput micro-benchmarks of the correlation-statistics substrate.

Times the three statistics the paper relies on (global variogram range,
std of local variogram ranges, std of local SVD truncation levels) on a
128x128 field.  The paper's future-work section flags the cost of the SVD
statistic relative to modern compressors; these numbers quantify that
observation for the reproduction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.local import std_local_variogram_range
from repro.stats.svd import std_local_svd_truncation
from repro.stats.variogram_models import estimate_variogram_range


@pytest.fixture(scope="module")
def bench_field():
    return generate_gaussian_field((128, 128), 12.0, seed=BENCH_SEED)


def test_global_variogram_range_throughput(benchmark, bench_field):
    value = benchmark(estimate_variogram_range, bench_field)
    assert value > 0


def test_local_variogram_std_throughput(benchmark, bench_field):
    value = benchmark(std_local_variogram_range, bench_field, 32)
    assert value >= 0


def test_local_svd_std_throughput(benchmark, bench_field):
    value = benchmark(std_local_svd_truncation, bench_field, 32)
    assert value >= 0
