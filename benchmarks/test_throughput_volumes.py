"""Throughput micro-benchmarks of the native 3D volume path.

Times the sz/zfp/mgard volume modes on a 32^3 Miranda-like volume (the
CI smoke cell) and the tiled volume pipeline on a 64^3 volume, and
asserts the subsystem's headline property: the native volume pipeline's
compression ratio beats the paper's slice-by-slice procedure at the
reference bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.compressors.registry import make_compressor
from repro.datasets.miranda import generate_miranda_like_volume
from repro.volumes.pipeline import (
    compress_volume,
    decompress_volume,
    slice_baseline,
)

ERROR_BOUND = 1e-3


@pytest.fixture(scope="module")
def small_volume():
    return generate_miranda_like_volume((32, 32, 32), seed=BENCH_SEED)


@pytest.fixture(scope="module")
def bench_volume():
    return generate_miranda_like_volume((64, 64, 64), seed=BENCH_SEED)


@pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
def test_volume_compress_throughput(benchmark, small_volume, name):
    """32^3 native volume round trip — the CI smoke cell."""

    compressor = make_compressor(name, ERROR_BOUND)
    compressed = benchmark(compressor.compress, small_volume)
    decompressed = compressor.decompress(compressed)
    assert np.abs(decompressed - small_volume).max() <= ERROR_BOUND * (1 + 1e-9)
    mb = small_volume.nbytes / 1e6
    if benchmark.stats:  # absent under --benchmark-disable (CI smoke runs)
        print(
            f"\n{name} 32^3: CR={compressed.compression_ratio:.2f} "
            f"(mean {benchmark.stats['mean'] * 1e3:.1f} ms -> "
            f"{mb / benchmark.stats['mean']:.1f} MB/s)"
        )
    assert compressed.compression_ratio > 1.0


@pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
def test_volume_decompress_throughput(benchmark, small_volume, name):
    compressor = make_compressor(name, ERROR_BOUND)
    compressed = compressor.compress(small_volume)
    decompressed = benchmark(compressor.decompress, compressed)
    assert np.abs(decompressed - small_volume).max() <= ERROR_BOUND * (1 + 1e-9)


def test_tiled_pipeline_beats_slice_baseline(benchmark, bench_volume):
    """The tiled 64^3 pipeline must out-compress the paper's 2D slicing."""

    def run():
        return compress_volume(bench_volume, "sz", ERROR_BOUND, cache=False)

    compressed = benchmark.pedantic(run, rounds=1, iterations=1)
    reconstruction = decompress_volume(compressed)
    assert np.abs(reconstruction - bench_volume).max() <= ERROR_BOUND * (1 + 1e-9)
    baseline = slice_baseline(bench_volume, "sz", ERROR_BOUND)
    if benchmark.stats:
        print(
            f"\nsz 64^3 tiled: CR={compressed.compression_ratio:.2f} "
            f"vs slice baseline {baseline:.2f}"
        )
    assert compressed.compression_ratio > baseline
