"""Figure 3: CR vs estimated global variogram range on Gaussian fields.

Reproduces both panels of the paper's Figure 3: compression ratios of SZ,
ZFP and MGARD at four error bounds, plotted (here: tabulated) against the
global variogram range of single-range (left) and multi-range (right)
synthetic Gaussian fields, with the fitted logarithmic regression
coefficients alpha and beta per curve.

Paper-shape assertions:

* beta > 0 (CR increases with range) for SZ and ZFP on single-range fields
  at the two loosest bounds (where the effect is strongest);
* curves are ordered by error bound (looser bound, larger CR) for every
  compressor;
* the single-range fits explain the data at least as well as the
  multi-range fits for SZ (the paper: regressions fit the single-scale
  fields better);
* the fitted slope on the multi-range fields is weaker for ZFP at loose
  bounds (the paper notes the global range loses explanatory power there).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SEED,
    global_range_config,
    mean_beta,
    print_series_table,
    series_by_key,
)
from repro.core.figures import figure3_global_range_gaussian


def _run(bench_registry):
    return figure3_global_range_gaussian(
        config=global_range_config(), registry=bench_registry, seed=BENCH_SEED
    )


def test_fig3_global_range_gaussian(benchmark, bench_registry):
    output = benchmark.pedantic(_run, args=(bench_registry,), rounds=1, iterations=1)

    print_series_table("Figure 3 (left): single-range Gaussian fields", output["single"])
    print_series_table("Figure 3 (right): multi-range Gaussian fields", output["multi"])

    single = series_by_key(output["single"])
    multi = series_by_key(output["multi"])

    # CR increases with global range for the prediction/transform
    # compressors at the loose bounds.
    for compressor in ("sz", "zfp"):
        for bound in (1e-3, 1e-2):
            assert single[(compressor, bound)].fit.beta > 0, (compressor, bound)

    # Curves ordered by error bound: looser bound -> higher mean CR.
    for compressor in ("sz", "zfp", "mgard"):
        mean_crs = [
            float(np.mean(single[(compressor, bound)].compression_ratios))
            for bound in (1e-5, 1e-4, 1e-3, 1e-2)
        ]
        assert mean_crs == sorted(mean_crs), f"{compressor} CR not ordered by bound"

    # Single-range fields are explained better than multi-range fields by
    # the global-range statistic (averaged over the loose bounds, SZ).
    def mean_r2(series_map, compressor):
        values = [
            series_map[(compressor, bound)].fit.r_squared
            for bound in (1e-3, 1e-2)
            if series_map[(compressor, bound)].fit is not None
        ]
        return float(np.mean(values))

    assert mean_r2(single, "sz") >= mean_r2(multi, "sz") - 0.1

    # SZ reaches the largest compression ratios overall (as in the figure).
    max_sz = max(float(s.compression_ratios.max()) for s in output["single"] if s.compressor == "sz")
    max_zfp = max(
        float(s.compression_ratios.max()) for s in output["single"] if s.compressor == "zfp"
    )
    assert max_sz > max_zfp

    print("\nmean fitted slope per compressor (single-range panel):")
    for compressor in ("sz", "zfp", "mgard"):
        print(f"  {compressor:>6}: beta_mean = {mean_beta(output['single'], compressor):.3f}")
