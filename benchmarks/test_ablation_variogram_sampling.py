"""Ablation: variogram estimator (exact FFT vs pair subsampling).

The library's default estimator enumerates all grid-point pairs exactly via
FFT correlations; the classical alternative subsamples random pairs (what
one would do for scattered data, and the cheaper choice for huge grids).
This ablation measures the fitted-range error and the runtime of both
estimators across sampling rates, quantifying the accuracy/cost trade-off
of the estimator behind every figure.
"""

from __future__ import annotations

import time


from benchmarks.conftest import BENCH_SEED
from repro.datasets.gaussian import generate_gaussian_field
from repro.stats.variogram import VariogramConfig, empirical_variogram
from repro.stats.variogram_models import fit_variogram

TRUE_RANGE = 12.0
PAIR_BUDGETS = (2_000, 20_000, 200_000)


def _estimate(field, config, seed=0):
    start = time.perf_counter()
    variogram = empirical_variogram(field, config, seed=seed)
    fitted = fit_variogram(variogram)
    elapsed = time.perf_counter() - start
    return fitted.range, elapsed


def _run():
    field = generate_gaussian_field((128, 128), TRUE_RANGE, seed=BENCH_SEED)
    rows = []
    fft_range, fft_time = _estimate(field, VariogramConfig(method="fft"))
    rows.append(("fft (exact)", fft_range, fft_time))
    for budget in PAIR_BUDGETS:
        est_range, est_time = _estimate(
            field, VariogramConfig(method="pairs", n_pairs=budget), seed=1
        )
        rows.append((f"pairs n={budget}", est_range, est_time))
    return rows, fft_range


def test_ablation_variogram_sampling(benchmark):
    rows, fft_range = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== ablation: variogram estimator (true range %.1f) ===" % TRUE_RANGE)
    print(f"{'estimator':>18} {'fitted range':>13} {'abs error':>10} {'time (s)':>9}")
    for name, fitted_range, elapsed in rows:
        print(
            f"{name:>18} {fitted_range:>13.2f} {abs(fitted_range - TRUE_RANGE):>10.2f} "
            f"{elapsed:>9.4f}"
        )

    # The exact estimator must land near the generative range.
    assert abs(fft_range - TRUE_RANGE) <= 0.5 * TRUE_RANGE
    # Subsampled estimates converge towards the exact one as the pair
    # budget grows.
    pair_errors = [abs(r - fft_range) for name, r, _ in rows if name.startswith("pairs")]
    assert pair_errors[-1] <= pair_errors[0] + 1.0
    # The largest-budget subsample agrees with the exact estimator to
    # within 50%.
    assert pair_errors[-1] <= 0.5 * fft_range
