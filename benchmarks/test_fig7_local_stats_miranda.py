"""Figure 7: Miranda CR vs the two local statistics.

Reproduces the paper's Figure 7 on the Miranda-like surrogate: compression
ratios of every slice against (left) the std of local variogram ranges and
(right) the std of local SVD truncation levels, both on 32x32 windows,
plus the SZ panels restricted to bounds < 1e-2.

Paper-shape assertions:

* both local statistics vary across slices (the heterogeneity the
  statistics were introduced to capture);
* the local-variogram statistic explains SZ/ZFP compression ratios on this
  heterogeneous data at loose bounds (R^2 floor);
* the restricted SZ panels contain exactly the bounds below 1e-2;
* CR remains ordered by error bound.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SEED,
    local_stats_config,
    print_series_table,
    series_by_key,
)
from repro.core.figures import figure7_local_stats_miranda


def _run(bench_registry):
    return figure7_local_stats_miranda(
        config=local_stats_config(), registry=bench_registry, seed=BENCH_SEED
    )


def test_fig7_local_stats_miranda(benchmark, bench_registry):
    output = benchmark.pedantic(_run, args=(bench_registry,), rounds=1, iterations=1)

    print_series_table(
        "Figure 7 (left): CR vs std of local variogram range", output["local_variogram"]
    )
    print_series_table(
        "Figure 7 (right): CR vs std of local SVD truncation", output["local_svd"]
    )
    print_series_table(
        "Figure 7: SZ restricted (< 1e-2), local variogram",
        output["sz_restricted_local_variogram"],
    )

    variogram_series = series_by_key(output["local_variogram"])
    svd_series = series_by_key(output["local_svd"])

    # Statistics vary across slices.
    for series_map in (variogram_series, svd_series):
        x = series_map[("sz", 1e-2)].x
        finite = x[np.isfinite(x)]
        assert finite.size >= 4
        assert finite.max() > 1.05 * finite.min()

    # Local variogram statistic keeps explanatory power on heterogeneous data.
    for compressor in ("sz", "zfp"):
        fit = variogram_series[(compressor, 1e-2)].fit
        assert fit is not None and fit.r_squared > 0.2, compressor

    # Restricted panels: SZ only, bounds strictly below 1e-2.
    for key in ("sz_restricted_local_variogram", "sz_restricted_local_svd"):
        assert {s.compressor for s in output[key]} == {"sz"}
        assert all(s.error_bound < 1e-2 for s in output[key])

    # CR ordered by bound for every compressor on the variogram panel.
    for compressor in ("sz", "zfp", "mgard"):
        mean_crs = [
            float(np.mean(variogram_series[(compressor, bound)].compression_ratios))
            for bound in (1e-5, 1e-4, 1e-3, 1e-2)
        ]
        assert mean_crs == sorted(mean_crs)
