"""Ablation: SZ predictor choice (Lorenzo-only vs regression-only vs hybrid).

SZ selects, per 16x16 block, between the Lorenzo predictor and the
hyperplane regression predictor.  This ablation measures the compression
ratio of each predictor configuration across the single-range Gaussian
workload, quantifying how much the per-block selection is worth and how
the answer depends on the correlation range — the compressor-internal
mechanism behind the CR-vs-range curves of Figure 3.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, GAUSSIAN_SHAPE
from repro.compressors.sz import SZCompressor
from repro.datasets.registry import default_registry

ERROR_BOUND = 1e-3
CONFIGS = {
    "lorenzo": ("lorenzo",),
    "regression": ("regression",),
    "hybrid": ("lorenzo", "regression"),
}


def _run():
    registry = default_registry(gaussian_shape=GAUSSIAN_SHAPE)
    fields = registry.create("gaussian-single", seed=BENCH_SEED)
    results = {}
    for name, predictors in CONFIGS.items():
        compressor = SZCompressor(ERROR_BOUND, predictors=predictors)
        results[name] = [
            (label, compressor.compress(field)) for label, field in fields
        ]
    return results


def test_ablation_sz_predictor(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(f"\n=== ablation: SZ predictor choice (bound {ERROR_BOUND:g}) ===")
    labels = [label for label, _ in results["hybrid"]]
    print(f"{'field':>24} {'lorenzo':>9} {'regression':>11} {'hybrid':>9} {'reg blocks %':>13}")
    for i, label in enumerate(labels):
        lorenzo_cr = results["lorenzo"][i][1].compression_ratio
        regression_cr = results["regression"][i][1].compression_ratio
        hybrid = results["hybrid"][i][1]
        print(
            f"{label:>24} {lorenzo_cr:>9.2f} {regression_cr:>11.2f} "
            f"{hybrid.compression_ratio:>9.2f} "
            f"{100 * hybrid.extras['regression_block_fraction']:>13.1f}"
        )

    mean_cr = {
        name: float(np.mean([c.compression_ratio for _, c in entries]))
        for name, entries in results.items()
    }
    print(f"\nmean CR: {mean_cr}")

    # The hybrid must not lose to the better single predictor by more than a
    # small margin (its per-block selection should pay for its mode bits).
    assert mean_cr["hybrid"] >= max(mean_cr["lorenzo"], mean_cr["regression"]) * 0.93
    # Every configuration must respect the error bound (spot check extras).
    for entries in results.values():
        for _, compressed in entries:
            assert compressed.error_bound == ERROR_BOUND
