"""Extension: reconstruction quality (PSNR) vs correlation structure.

The paper's future-work section asks how correlation structure affects
quality metrics of the reconstructed data such as PSNR.  This benchmark
runs that analysis on the single-range Gaussian workload: PSNR and bit
rate per (compressor, bound) against the global variogram range, plus the
rate-distortion summary per compressor.

Expectations checked:

* at a fixed absolute error bound the PSNR is roughly independent of the
  correlation range for SZ (the bound pins the worst-case error while the
  value range stays ~constant), whereas the *bit rate* drops with the
  range — i.e. correlation buys rate, not distortion;
* the rate-distortion curves are monotone (more bits, better PSNR).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, global_range_config, print_series_table
from repro.core.pipeline import run_experiment
from repro.core.quality import quality_series_from_result, rate_distortion_table


def _run(bench_registry):
    result = run_experiment(
        "gaussian-single",
        config=global_range_config(),
        registry=bench_registry,
        seed=BENCH_SEED,
    )
    psnr_series = quality_series_from_result(result, "global_variogram_range", metric="psnr")
    rate_series = quality_series_from_result(
        result, "global_variogram_range", metric="bit_rate"
    )
    return result, psnr_series, rate_series


def test_extension_psnr_correlation(benchmark, bench_registry):
    result, psnr_series, rate_series = benchmark.pedantic(
        _run, args=(bench_registry,), rounds=1, iterations=1
    )

    print_series_table("Extension: PSNR vs global variogram range", psnr_series)
    print_series_table("Extension: bit rate vs global variogram range", rate_series)

    table = rate_distortion_table(result)
    print("\n=== rate-distortion summary (mean over the sweep) ===")
    print(f"{'compressor':>10} {'bound':>8} {'bits/value':>11} {'PSNR (dB)':>10} {'CR':>8}")
    for compressor, points in table.items():
        for point in points:
            print(
                f"{compressor:>10} {point.error_bound:>8.0e} {point.mean_bit_rate:>11.3f} "
                f"{point.mean_psnr:>10.2f} {point.mean_compression_ratio:>8.2f}"
            )

    # Bit rate falls with correlation range for the prediction-based
    # compressors at every bound.
    for series in rate_series:
        if series.compressor in ("sz", "zfp") and series.fit is not None:
            assert series.fit.beta < 0, (series.compressor, series.error_bound)

    # PSNR at a fixed bound varies far less (relatively) than the bit rate.
    for compressor in ("sz", "zfp"):
        psnr = next(
            s for s in psnr_series if s.compressor == compressor and s.error_bound == 1e-3
        )
        rate = next(
            s for s in rate_series if s.compressor == compressor and s.error_bound == 1e-3
        )
        psnr_rel_spread = float(np.ptp(psnr.compression_ratios) / np.mean(psnr.compression_ratios))
        rate_rel_spread = float(np.ptp(rate.compression_ratios) / np.mean(rate.compression_ratios))
        assert psnr_rel_spread < rate_rel_spread

    # Monotone rate-distortion curves.
    for points in table.values():
        psnrs = [p.mean_psnr for p in points]
        assert psnrs == sorted(psnrs)
