"""Load benchmark for the array server (ISSUE 6 acceptance cell).

Measures request latency (p50/p99) and decoded throughput for the
cached-read workload at 1, 4 and 16 concurrent clients against one
:class:`ThreadedServer`.  On a single-CPU runner the scaling headroom
comes from **singleflight coalescing**, not parallel decode: concurrent
identical in-flight reads share one decode+serialize task, so sixteen
clients cost roughly one client's decode work.  The acceptance gate is
>= 2x decoded MB/s at 16 clients vs 1 on the warm-cache workload; the
same measurement feeds the ``serve-*`` cells of the CI trend file.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.datasets.miranda import generate_miranda_like_volume
from repro.serve.client import StoreClient
from repro.serve.server import ServerConfig, ThreadedServer
from repro.store import ArrayStore

ERROR_BOUND = 1e-3
#: Decoded-throughput scaling the 16-client run must reach over the
#: 1-client run (the ISSUE 6 acceptance threshold).
MIN_SCALING_16C = 2.0


def run_load(url, name, *, n_clients, rounds, region=None):
    """Drive ``n_clients`` threads of identical reads; return the stats.

    The workload is round-aligned: each round, every client passes a
    barrier and issues the same request, so all ``n_clients`` requests
    are in flight together — the shape the singleflight path is built
    for (and the shape real fan-out readers produce).  Without the
    barrier the threads drift apart after the first round and the
    measurement degenerates into scheduler noise.  Returns
    ``{"p50_ms", "p99_ms", "mb_per_s", "n_requests"}`` where throughput
    counts *decoded* bytes delivered across all clients.
    """

    latencies = []
    errors = []
    decoded_nbytes = []
    start_gate = threading.Barrier(n_clients + 1)
    round_gate = threading.Barrier(n_clients)

    def client_loop() -> None:
        try:
            with StoreClient(url) as client:
                # Untimed warm-up: TCP connect + first request on the
                # keep-alive connection stay out of the measured window.
                client.get(name, region)
                start_gate.wait(timeout=120)
                for _ in range(rounds):
                    round_gate.wait(timeout=120)
                    start = time.perf_counter()
                    values = client.get(name, region)
                    latencies.append(time.perf_counter() - start)
                    decoded_nbytes.append(values.nbytes)
        except Exception as exc:  # noqa: BLE001 — surfaced by caller
            errors.append(exc)
            start_gate.abort()
            round_gate.abort()

    threads = [threading.Thread(target=client_loop) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    try:
        start_gate.wait(timeout=120)
    except threading.BrokenBarrierError:
        pass  # a client failed during warm-up; reported below
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    duration = time.perf_counter() - started
    if errors:
        raise errors[0]
    lat_ms = 1000.0 * np.asarray(latencies)
    return {
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "mb_per_s": sum(decoded_nbytes) / duration / 1e6,
        "n_requests": len(latencies),
    }


def best_load(url, name, *, n_clients, rounds, trials=3, region=None):
    """Best-of-N :func:`run_load` (same policy as the trend exporter's
    ``_best_ms``): a single stalled round — GC pause, scheduler hiccup —
    tanks a wall-clock aggregate on a one-CPU runner, so throughput is
    taken from the best trial while latency percentiles pool all trials.
    """

    results = [
        run_load(url, name, n_clients=n_clients, rounds=rounds, region=region)
        for _ in range(trials)
    ]
    best = max(results, key=lambda r: r["mb_per_s"])
    return {
        "p50_ms": min(r["p50_ms"] for r in results),
        "p99_ms": max(r["p99_ms"] for r in results),
        "mb_per_s": best["mb_per_s"],
        "n_requests": sum(r["n_requests"] for r in results),
    }


@pytest.fixture(scope="module")
def loaded_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-bench")
    volume = generate_miranda_like_volume((64, 64, 64), seed=BENCH_SEED)
    # Small chunks (8^3 -> 512 per volume) make warm reads assembly-bound
    # rather than transfer-bound: per-chunk cache lookup + copy is the
    # work coalescing amortizes, so the scaling headroom is real instead
    # of being capped by loopback memcpy bandwidth.
    store = ArrayStore.create(
        root / "vol", chunk_shape=8, codec="sz", error_bound=ERROR_BOUND
    )
    store.write(volume, cache=False)
    config = ServerConfig(root=str(root), max_concurrency=16)
    with ThreadedServer(config) as threaded:
        # Warm the hot-chunk cache so the measured workload is cache-bound.
        with StoreClient(threaded.url) as client:
            client.get("vol")
            client.get("vol")
            assert int(client.last_headers["x-chunks-decoded"]) == 0
        yield threaded


def test_serve_load_scaling(benchmark, loaded_server):
    """Warm-cache reads at 1/4/16 clients; >= 2x decoded MB/s at 16."""

    def sweep():
        results = {}
        for n_clients in (1, 4, 16):
            results[n_clients] = best_load(
                loaded_server.url,
                "vol",
                n_clients=n_clients,
                rounds=5,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nclients    p50 ms    p99 ms   decoded MB/s")
    for n_clients, stats in results.items():
        print(
            f"{n_clients:>7} {stats['p50_ms']:>9.2f} {stats['p99_ms']:>9.2f} "
            f"{stats['mb_per_s']:>14.1f}"
        )
    scaling = results[16]["mb_per_s"] / results[1]["mb_per_s"]
    print(f"16c/1c decoded-throughput scaling: {scaling:.2f}x")
    assert scaling >= MIN_SCALING_16C, (
        f"coalesced serving scaled only {scaling:.2f}x at 16 clients "
        f"(acceptance floor {MIN_SCALING_16C}x)"
    )
    coalesced = loaded_server.server.coalesced_reads
    assert coalesced > 0, "no reads coalesced — singleflight inactive"


def test_serve_partial_read_latency(benchmark, loaded_server):
    """A small warm region read stays cheap under modest concurrency."""

    def measure():
        return best_load(
            loaded_server.url,
            "vol",
            n_clients=4,
            rounds=8,
            trials=2,
            region=(slice(8, 24), slice(8, 24), slice(8, 24)),
        )

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\n4-client 16^3 region: p50 {stats['p50_ms']:.2f} ms, "
        f"p99 {stats['p99_ms']:.2f} ms"
    )
    assert stats["p99_ms"] < 5000, "pathological tail latency on tiny reads"
