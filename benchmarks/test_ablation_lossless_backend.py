"""Ablation: lossless backend of the SZ-like compressor.

SZ hands its quantization codes to Huffman + Zstd; the reproduction's
default backend is the vectorised RLE + Huffman coder, with an LZ77+Huffman
"zstd"-like backend and a no-entropy-coding "raw" mode available.  This
ablation compares the three on a smooth and a rough field, quantifying how
much of the compression ratio is produced by the entropy-coding stage
versus the prediction stage — and therefore how much of the
CR-vs-correlation relationship flows through each.

The zstd-like backend's LZ77 stage is NumPy-vectorized, so the ablation
runs on the full 128x128 reference field size.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_SEED
from repro.compressors.sz import SZCompressor
from repro.datasets.gaussian import generate_gaussian_field

ERROR_BOUND = 1e-3
BACKENDS = ("raw", "huffman", "zstd")


def _run():
    smooth = generate_gaussian_field((128, 128), 16.0, seed=BENCH_SEED)
    rough = generate_gaussian_field((128, 128), 2.0, seed=BENCH_SEED + 1)
    results = {}
    for backend in BACKENDS:
        compressor = SZCompressor(ERROR_BOUND, backend=backend)
        results[backend] = {
            "smooth": compressor.compress(smooth),
            "rough": compressor.compress(rough),
        }
    return results


def test_ablation_lossless_backend(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(f"\n=== ablation: SZ lossless backend (bound {ERROR_BOUND:g}, 128x128 fields) ===")
    print(f"{'backend':>9} {'CR smooth':>10} {'CR rough':>9} {'bytes smooth':>13} {'bytes rough':>12}")
    for backend in BACKENDS:
        smooth = results[backend]["smooth"]
        rough = results[backend]["rough"]
        print(
            f"{backend:>9} {smooth.compression_ratio:>10.2f} {rough.compression_ratio:>9.2f} "
            f"{smooth.compressed_nbytes:>13d} {rough.compressed_nbytes:>12d}"
        )

    # Entropy coding must beat the raw symbol storage on both workloads.
    for workload in ("smooth", "rough"):
        assert (
            results["huffman"][workload].compression_ratio
            > results["raw"][workload].compression_ratio
        )
    # The correlation effect (smooth compresses better than rough) holds for
    # both entropy-coding backends — i.e. it does not depend on which
    # entropy coder is used.  The "raw" backend stores fixed-width symbols,
    # so by construction its size cannot react to the code distribution at
    # all; that is exactly what this ablation demonstrates.
    for backend in ("huffman", "zstd"):
        assert (
            results[backend]["smooth"].compression_ratio
            > results[backend]["rough"].compression_ratio
        )
    assert (
        results["raw"]["smooth"].compressed_nbytes
        == results["raw"]["rough"].compressed_nbytes
    )
    # The zstd-like backend stays in the same size regime as plain Huffman
    # (its extra LZ77 token streams cost some overhead on already
    # entropy-coded data, so it is not required to win — only to be
    # reasonably close).
    assert (
        results["zstd"]["smooth"].compressed_nbytes
        <= results["huffman"]["smooth"].compressed_nbytes * 1.5
    )
