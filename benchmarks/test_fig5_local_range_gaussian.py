"""Figure 5: CR vs std of the local variogram range (H=32), Gaussian fields.

Reproduces the paper's Figure 5: the windowed variogram-range statistic on
single-range (left) and multi-range (right) Gaussian fields against the
compression ratios of SZ, ZFP and MGARD, with logarithmic-regression fits.

Paper-shape assertions:

* the local statistic varies across the multi-range fields (it is designed
  to expose heterogeneity the global range misses);
* for the multi-range fields the local statistic retains explanatory power
  (R^2 of SZ at the loose bounds above a modest floor);
* the single-range fields show *weaker* sensitivity of CR to this local
  statistic than the multi-range fields (the paper: "results for the
  single-range correlation Gaussian fields show a weaker sensitivity"),
  measured by comparing R^2 at the loosest bound.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SEED,
    local_stats_config,
    print_series_table,
    series_by_key,
)
from repro.core.figures import figure5_local_range_gaussian


def _run(bench_registry):
    config = local_stats_config(compute_local_svd=False)
    return figure5_local_range_gaussian(
        config=config, registry=bench_registry, seed=BENCH_SEED
    )


def test_fig5_local_range_gaussian(benchmark, bench_registry):
    output = benchmark.pedantic(_run, args=(bench_registry,), rounds=1, iterations=1)

    print_series_table("Figure 5 (left): single-range Gaussian fields", output["single"])
    print_series_table("Figure 5 (right): multi-range Gaussian fields", output["multi"])

    single = series_by_key(output["single"])
    multi = series_by_key(output["multi"])

    # The statistic must actually vary across fields in both panels.
    for series_map in (single, multi):
        x = series_map[("sz", 1e-2)].x
        finite = x[np.isfinite(x)]
        assert finite.size >= 4
        assert finite.max() > finite.min()

    # Multi-range fields: the local statistic keeps explanatory power for
    # the block-based compressors at loose bounds.
    for compressor in ("sz", "zfp"):
        fit = multi[(compressor, 1e-2)].fit
        assert fit is not None
        assert fit.r_squared > 0.2, f"{compressor} local-statistic fit too weak"

    # Paper: single-range fields show weaker sensitivity to the local
    # statistic than multi-range fields (compare SZ R^2 at the loosest bound).
    sz_single = single[("sz", 1e-2)].fit.r_squared
    sz_multi = multi[("sz", 1e-2)].fit.r_squared
    print(f"\nSZ R^2 at 1e-2: single-range={sz_single:.3f}, multi-range={sz_multi:.3f}")
    assert sz_single <= sz_multi + 0.25
