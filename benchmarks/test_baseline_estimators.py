"""Baselines: block-sampling CR estimation and adaptive SZ/ZFP selection.

The paper positions correlation statistics as a *compressor-independent*
route to anticipating compression performance, in contrast to the
compressor-specific estimators of the related work.  This benchmark runs
those related-work baselines against the reproduction's compressors:

* the Lu et al.-style block-sampling CR estimator — accuracy (relative
  error vs the true CR) across the Gaussian workload;
* the Tao et al.-style online SZ/ZFP selection — selection accuracy and CR
  regret;
* the entropy bound of the quantized representation — how much headroom
  spatial correlation gives the real compressors beyond the marginal
  entropy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, GAUSSIAN_SHAPE
from repro.baselines.adaptive_selection import select_compressor
from repro.baselines.entropy_estimator import entropy_cr_bound
from repro.baselines.sampling_estimator import estimate_cr_by_sampling
from repro.compressors.registry import make_compressor
from repro.datasets.registry import default_registry

ERROR_BOUND = 1e-3


def _run():
    registry = default_registry(gaussian_shape=GAUSSIAN_SHAPE)
    fields = registry.create("gaussian-single", seed=BENCH_SEED)
    rows = []
    for label, field in fields:
        true_cr = make_compressor("sz", ERROR_BOUND).compress(field).compression_ratio
        naive = estimate_cr_by_sampling(
            field,
            "sz",
            ERROR_BOUND,
            n_blocks=12,
            block_size=32,
            seed=3,
            overhead_correction=False,
        )
        corrected = estimate_cr_by_sampling(
            field, "sz", ERROR_BOUND, n_blocks=12, block_size=32, seed=3
        )
        selection = select_compressor(field, ERROR_BOUND, seed=5, verify=True)
        rows.append(
            {
                "label": label,
                "true_cr": true_cr,
                "sampled_cr": naive.estimated_cr,
                "corrected_cr": corrected.estimated_cr,
                "sampled_fraction": naive.sampled_fraction,
                "entropy_bound": entropy_cr_bound(field, ERROR_BOUND),
                "selected": selection.selected,
                "correct": bool(selection.correct),
                "regret": float(selection.regret or 0.0),
            }
        )
    return rows


def test_baseline_estimators(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(f"\n=== baselines at error bound {ERROR_BOUND:g} (SZ reference) ===")
    print(
        f"{'field':>24} {'true CR':>8} {'naive':>8} {'err %':>7} "
        f"{'corrected':>10} {'err %':>7} "
        f"{'entropy bound':>14} {'picked':>7} {'correct':>8}"
    )
    rel_errors = []
    corrected_errors = []
    for row in rows:
        rel_error = abs(row["sampled_cr"] - row["true_cr"]) / row["true_cr"]
        corrected_error = abs(row["corrected_cr"] - row["true_cr"]) / row["true_cr"]
        rel_errors.append(rel_error)
        corrected_errors.append(corrected_error)
        print(
            f"{row['label']:>24} {row['true_cr']:>8.2f} {row['sampled_cr']:>8.2f} "
            f"{100 * rel_error:>7.1f} {row['corrected_cr']:>10.2f} "
            f"{100 * corrected_error:>7.1f} {row['entropy_bound']:>14.2f} "
            f"{row['selected']:>7} {str(row['correct']):>8}"
        )

    accuracy = float(np.mean([row["correct"] for row in rows]))
    total_regret = float(np.sum([row["regret"] for row in rows]))
    print(
        f"\nsampling estimator median relative error: naive "
        f"{100 * float(np.median(rel_errors)):.1f}% -> corrected "
        f"{100 * float(np.median(corrected_errors)):.1f}% "
        f"(sampling ~{100 * rows[0]['sampled_fraction']:.0f}% of each field)"
    )
    print(f"adaptive selection accuracy: {accuracy * 100:.0f}%, total regret {total_regret:.2f}")

    # Ordering of compressibility must be preserved by the sampling estimator.
    true_order = np.argsort([row["true_cr"] for row in rows])
    sampled_order = np.argsort([row["sampled_cr"] for row in rows])
    assert list(true_order) == list(sampled_order)
    # The per-compressor overhead correction must not degrade accuracy.
    assert float(np.median(corrected_errors)) <= float(np.median(rel_errors)) + 1e-9
    # Selection is right on the smoother half of the sweep, but the
    # sequency-partitioned ZFP stream narrowed the SZ-vs-ZFP margin on the
    # roughest fields (~5%), where tiling bias (SZ loses more cross-block
    # context than 4x4-block ZFP) flips the call: exactly the
    # compressor-specific fragility the paper's statistics route avoids.
    # The flips must stay cheap, so the guard is on accuracy + regret.
    assert accuracy >= 0.5
    assert total_regret <= 2.0
    # Correlated fields: the real compressor beats the correlation-blind
    # entropy bound on the smoothest field of the sweep.
    smoothest = max(rows, key=lambda row: row["true_cr"])
    assert smoothest["true_cr"] > smoothest["entropy_bound"]
