"""Benchmarks of the chunked compressed array store.

Covers the subsystem's two headline properties:

* **Random-access partial reads** — reading a corner region decodes only
  the chunks it intersects (asserted via the store's decode counter) and
  beats full-volume decompress-then-slice by a wide margin (>= 5x for a
  32^3 region of a 128^3 volume in 64^3 chunks, where only 1 of 8 chunks
  must be decoded);
* **Adaptive per-chunk codec selection** — on a mixed gaussian+miranda
  corpus the ``adaptive`` policy (block-sampling CR estimator per chunk)
  matches or beats the best single fixed codec's total CR, and every
  chunk logs its estimated vs. realised CR.

The small put/read cells double as the CI smoke test for the store.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.miranda import generate_miranda_like_volume
from repro.store import ArrayStore

ERROR_BOUND = 1e-3
TOL = ERROR_BOUND * (1.0 + 1e-9)


@pytest.fixture(scope="module")
def smoke_volume():
    return generate_miranda_like_volume((64, 64, 64), seed=BENCH_SEED)


@pytest.fixture(scope="module")
def large_volume():
    return generate_miranda_like_volume((128, 128, 128), seed=BENCH_SEED + 1)


def test_store_put_smoke(benchmark, tmp_path, smoke_volume):
    """CI smoke: put a 64^3 miranda volume (32^3 chunks), read a corner."""

    def put():
        store = ArrayStore.create(
            tmp_path / "smoke",
            chunk_shape=32,
            error_bound=ERROR_BOUND,
            chunk_stats=False,
            overwrite=True,
        )
        store.write(smoke_volume, cache=False)
        return store

    store = benchmark.pedantic(put, rounds=1, iterations=1)
    assert store.n_chunks == 8
    corner = store.read((slice(0, 16), slice(0, 16), slice(0, 16)))
    # Only the single intersecting chunk may be decoded.
    assert store.last_read.chunks_intersecting == 1
    assert store.last_read.chunks_decoded == 1
    assert np.abs(corner - smoke_volume[:16, :16, :16]).max() <= TOL
    if benchmark.stats:
        print(
            f"\nstore put 64^3: CR={store.compression_ratio:.2f} "
            f"({store.n_chunks} chunks)"
        )


def test_store_partial_read_speedup(tmp_path, large_volume):
    """Partial 32^3 read of a 128^3 store: 1 of 8 chunks, >= 5x faster.

    The acceptance bar of the subsystem: decoding only the intersecting
    chunks must beat full-volume decompress-then-slice by at least 5x
    (the chunk grid alone predicts ~8x here).
    """

    store = ArrayStore.create(
        tmp_path / "large",
        chunk_shape=64,
        error_bound=ERROR_BOUND,
        chunk_stats=False,
    )
    store.write(large_volume, cache=False)
    assert store.n_chunks == 8
    region = (slice(0, 32), slice(0, 32), slice(0, 32))

    def timed(fn, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        return result, min(times)

    partial, partial_time = timed(lambda: store.read(region))
    assert store.last_read.chunks_decoded == 1
    assert store.last_read.chunks_intersecting == 1
    full, full_time = timed(lambda: store.read()[region])
    assert store.last_read.chunks_decoded == 8

    np.testing.assert_array_equal(partial, full)
    assert np.abs(partial - large_volume[region]).max() <= TOL
    speedup = full_time / partial_time
    print(
        f"\npartial read 32^3 of 128^3: {partial_time * 1e3:.1f} ms vs "
        f"full-then-slice {full_time * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, f"partial read only {speedup:.2f}x faster"


def _mixed_corpus():
    """Gaussian planes (smooth, mid, noise-like) + a miranda volume.

    Chosen so no single codec wins everywhere: SZ dominates correlated
    fields while ZFP wins on the uncorrelated one, which is exactly the
    regime per-chunk selection is for.
    """

    return [
        ("gaussian-smooth", generate_gaussian_field((128, 128), 32.0, seed=2021), 64),
        ("gaussian-mid", generate_gaussian_field((128, 128), 8.0, seed=2022), 64),
        ("gaussian-noise", np.random.default_rng(2025).normal(size=(128, 128)), 64),
        ("miranda-volume", generate_miranda_like_volume((64, 64, 64), seed=2026), 32),
    ]


def test_store_adaptive_policy_matches_best_fixed(benchmark, tmp_path):
    """Adaptive per-chunk selection >= the best single fixed codec.

    Total corpus CR of the ``adaptive`` policy must match or beat every
    fixed policy, and each adaptively coded chunk must log its estimated
    CR next to the realised one (the estimated-vs-actual corpus).
    """

    corpus = _mixed_corpus()
    policies = ("sz", "zfp", "mgard", "adaptive")

    def run(policy):
        original = compressed = 0
        stores = []
        for name, array, chunk in corpus:
            store = ArrayStore.create(
                tmp_path / f"{policy}-{name}",
                chunk_shape=chunk,
                error_bound=ERROR_BOUND,
                codec=policy,
                chunk_stats=False,
                overwrite=True,
            )
            store.write(array, cache=False)
            original += store.original_nbytes
            compressed += store.compressed_nbytes
            stores.append(store)
        return original / compressed, stores

    totals = {}
    adaptive_stores = None
    for policy in policies:
        if policy == "adaptive":
            (totals[policy], adaptive_stores) = benchmark.pedantic(
                lambda: run("adaptive"), rounds=1, iterations=1
            )
        else:
            totals[policy], _ = run(policy)

    best_fixed = max(totals[p] for p in ("sz", "zfp", "mgard"))
    print(
        "\nmixed corpus total CR: "
        + ", ".join(f"{p}={totals[p]:.3f}" for p in policies)
    )

    # Every adaptively coded chunk carries the estimated-vs-actual log.
    estimate_errors = []
    for store in adaptive_stores:
        for record in store.chunk_records():
            assert np.isfinite(record.estimated_cr), record
            assert record.compression_ratio > 0
            estimate_errors.append(
                abs(record.estimated_cr - record.compression_ratio)
                / record.compression_ratio
            )
    print(
        f"adaptive estimate rel. error: mean {np.mean(estimate_errors):.3f} "
        f"max {np.max(estimate_errors):.3f} over {len(estimate_errors)} chunks"
    )
    assert totals["adaptive"] >= best_fixed, (
        f"adaptive {totals['adaptive']:.3f} < best fixed {best_fixed:.3f}"
    )
