#!/usr/bin/env python
"""Benchmark-trend exporter and regression gate for CI.

Runs the timed smoke subset — the sz/zfp/mgard 2D cells, the 64^3 volume
cells (tiled 32^3, halo off and on, so the halo seam-recovery is tracked
as data), the volume decode rate, the store put / partial-read cells,
the streaming-compress peak-RSS cell and the serve-layer load cells
(warm-cache latency and decoded throughput at 1 vs 16 concurrent
clients) — and writes a schema-versioned JSON trend file
(``BENCH_PR10.json`` in CI, uploaded as a workflow artifact).  Against a
committed baseline (``benchmarks/baseline.json``) the script acts as the
regression gate.

The baseline was recorded on a different machine than the CI runner, so
raw per-cell ratios mix code changes with hardware speed.  The gate
therefore **calibrates first**: the median ratio across all timing cells
estimates the machine-speed factor (a property of the runner, not the
code), and each cell is judged by its ratio *relative to that factor* —
hardware-invariant by construction.  Two conditions fail the build
(exit 1):

* any single cell slowed >50% beyond the machine-wide trend (a targeted
  regression well past the observed run-to-run noise of ~25%), or
* more than a third of the timing cells each slowed >25% beyond the
  trend (a broad regression that individual-cell noise cannot explain).

A perfectly uniform slowdown of every cell is indistinguishable from a
slower runner; catching that class would need a same-machine baseline
(tracked as trend data via the artifacts instead).  Compression ratios
are exported as trend data but not gated (they are pinned exactly by the
test suite's golden files).

``bar`` and ``mem`` cells carry their own absolute bound (``value`` vs
``min`` or ``max``) and are gated without any baseline or calibration:
the serve scaling cell asserts that 16 concurrent cached readers deliver
>= 2x the decoded MB/s of one reader, the tracing-overhead cell asserts
that the *disabled* span instrumentation costs <= 2% of a 64^3 compress,
the profiler-overhead cell asserts that a *live* sampling profiler at
the default rate costs <= 5% of the same compress, the decode-speedup
cell (skipped on single-CPU runners) asserts that the parallel wavefront
decode of a 64^3 halo volume beats the serial decoder >= 1.5x, and the
``stream-peak-rss`` memory cell asserts that streaming a 256^3 compress
from a ``.npy`` file holds its peak RSS growth under twice one slab's
working set — all properties of the design, not of the runner's speed,
so they must hold on any machine.

Usage:
    python benchmarks/export_trend.py --output BENCH_PR10.json
    python benchmarks/export_trend.py --update-baseline   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)  # for benchmarks.test_serve (load helper)

from repro.compressors.registry import make_compressor  # noqa: E402
from repro.datasets.gaussian import generate_gaussian_field  # noqa: E402
from repro.datasets.miranda import generate_miranda_like_volume  # noqa: E402
from repro.store.array_store import ArrayStore  # noqa: E402
from repro.utils.parallel import ParallelConfig  # noqa: E402
from repro.volumes.pipeline import compress_volume, decompress_volume  # noqa: E402

SCHEMA = "repro-bench-trend"
SCHEMA_VERSION = 1
LABEL = "PR10"
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
#: Gate thresholds, applied to machine-calibrated per-cell ratios: any
#: single cell beyond OUTLIER_THRESHOLD fails; more than
#: BROAD_FRACTION of the cells beyond REGRESSION_THRESHOLD fails.
REGRESSION_THRESHOLD = 1.25
OUTLIER_THRESHOLD = 1.5
BROAD_FRACTION = 1 / 3
ERROR_BOUND = 1e-3
REPEATS = 3


def _best_ms(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds (damps scheduler noise)."""

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return 1000.0 * best


def collect_cells() -> dict:
    cells: dict = {}

    # -- 2D compressor cells (128x128 Gaussian field) -------------------
    field = generate_gaussian_field((128, 128), correlation_range=16.0, seed=2021)
    for name in ("sz", "zfp", "mgard"):
        codec = make_compressor(name, ERROR_BOUND)
        compressed = codec.compress(field)
        cells[f"{name}-2d-compress"] = {
            "kind": "time",
            "ms": _best_ms(lambda c=codec: c.compress(field)),
        }
        cells[f"{name}-2d-decompress"] = {
            "kind": "time",
            "ms": _best_ms(lambda c=codec, b=compressed: c.decompress(b)),
        }
        cells[f"{name}-2d-cr"] = {"kind": "ratio", "value": compressed.compression_ratio}

    # -- 64^3 volume cells (32^3 tiles, halo off + on) -------------------
    volume = generate_miranda_like_volume((64, 64, 64), seed=2021)
    for name in ("sz", "zfp", "mgard"):
        off = compress_volume(
            volume, name, ERROR_BOUND, tile_shape=(32, 32, 32), cache=False
        )
        cells[f"{name}-vol64-compress"] = {
            "kind": "time",
            "ms": _best_ms(
                lambda n=name: compress_volume(
                    volume, n, ERROR_BOUND, tile_shape=(32, 32, 32), cache=False
                ),
                repeats=2,
            ),
        }
        cells[f"{name}-vol64-cr"] = {"kind": "ratio", "value": off.compression_ratio}
        on = compress_volume(
            volume, name, ERROR_BOUND, tile_shape=(32, 32, 32), cache=False, halo=True
        )
        cells[f"{name}-vol64-halo-cr"] = {
            "kind": "ratio",
            "value": on.compression_ratio,
        }
        cells[f"{name}-vol64-halo-gain"] = {
            "kind": "ratio",
            "value": on.compression_ratio / off.compression_ratio,
        }

    # -- volume decode: serial rate, and the parallel wavefront speedup --
    halo_vol = compress_volume(
        volume, "sz", ERROR_BOUND, tile_shape=(32, 32, 32), cache=False, halo=True
    )
    serial_ms = _best_ms(lambda: decompress_volume(halo_vol))
    cells["vol-decode-gbps"] = {
        "kind": "rate",
        "value": volume.nbytes / 1e9 / (serial_ms / 1000.0),
    }
    n_cpu = os.cpu_count() or 1
    if n_cpu >= 2:
        # Gate: the shared-memory anti-diagonal decode must beat the
        # serial scan-order decoder on a multi-core runner.  The pool is
        # created once per call, so startup cost is charged to the cell —
        # the speedup bar holds it to honest, end-to-end gains.
        parallel = ParallelConfig(workers=min(4, n_cpu))
        parallel_ms = _best_ms(
            lambda: decompress_volume(halo_vol, parallel=parallel)
        )
        cells["vol-decode-speedup"] = {
            "kind": "bar",
            "value": serial_ms / parallel_ms,
            "min": 1.5,
            "workers": parallel.workers,
        }
    else:
        print(
            "vol-decode-speedup skipped: single-CPU runner cannot "
            "demonstrate parallel decode gains"
        )

    # -- tracing overhead: the disabled no-op span path ------------------
    # Gate: the instrumentation left in the hot paths must be ~free when
    # no tracer is installed.  Measured as (cost of one disabled span()
    # call) x (spans one traced sz 64^3 compress actually records), as a
    # fraction of that compress cell's wall time.
    from repro.obs.trace import Tracer, install_tracer
    from repro.obs.trace import span as obs_span

    tracer = Tracer()
    with install_tracer(tracer):
        compress_volume(
            volume, "sz", ERROR_BOUND, tile_shape=(32, 32, 32), cache=False
        )
    spans_per_compress = len(tracer.spans())
    noop_calls = 200_000
    start = time.perf_counter()
    for _ in range(noop_calls):
        with obs_span("bench.noop"):
            pass
    noop_ms = 1000.0 * (time.perf_counter() - start) / noop_calls
    overhead = (
        noop_ms * spans_per_compress / cells["sz-vol64-compress"]["ms"]
    )
    cells["tracing-overhead-disabled"] = {
        "kind": "bar",
        "value": overhead,
        "max": 0.02,
        "spans": spans_per_compress,
    }

    # -- profiler overhead: live sampling at the default rate ------------
    # Gate: a SamplingProfiler at DEFAULT_HZ must cost <= 5% of the
    # sampled workload's wall time.  Timing a compress with and without
    # the sampler would difference two measurements whose run-to-run
    # noise (~20%) dwarfs the true overhead (~0.1%), so the cell instead
    # measures the per-sample stack-walk cost directly — against live
    # compress stacks on a worker thread — and scales by the rate: the
    # workload loses at most the GIL time the sampler holds, which is
    # ``sample_ms * hz`` per second of wall time.
    import threading

    from repro.obs.profile import DEFAULT_HZ, SamplingProfiler

    stop = threading.Event()

    def churn() -> None:
        while not stop.is_set():
            compress_volume(
                volume, "sz", ERROR_BOUND, tile_shape=(32, 32, 32), cache=False
            )

    worker = threading.Thread(target=churn, name="bench-load", daemon=True)
    worker.start()
    try:
        profiler = SamplingProfiler(hz=DEFAULT_HZ)
        own_id = threading.get_ident()
        rounds = 500
        start = time.perf_counter()
        for _ in range(rounds):
            profiler._sample_once(own_id)
        sample_ms = 1000.0 * (time.perf_counter() - start) / rounds
    finally:
        stop.set()
        worker.join()
    cells["profiler-overhead"] = {
        "kind": "bar",
        "value": sample_ms * DEFAULT_HZ / 1000.0,
        "max": 0.05,
        "hz": DEFAULT_HZ,
        "sample_ms": sample_ms,
    }

    # -- store put / partial read ----------------------------------------
    workdir = tempfile.mkdtemp(prefix="repro-trend-")
    try:
        path = os.path.join(workdir, "store")

        def put():
            shutil.rmtree(path, ignore_errors=True)
            store = ArrayStore.create(
                path, chunk_shape=32, error_bound=ERROR_BOUND, codec="sz"
            )
            store.write(volume, cache=False)
            return store

        cells["store-put"] = {"kind": "time", "ms": _best_ms(put, repeats=2)}
        store = ArrayStore.open(path)
        region = (slice(8, 24), slice(8, 24), slice(8, 24))
        cells["store-partial-read"] = {
            "kind": "time",
            "ms": _best_ms(lambda: store.read(region)),
        }
        cells["store-cr"] = {"kind": "ratio", "value": store.compression_ratio}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # -- streaming compress: bounded peak memory -------------------------
    # Gate: streaming a 256^3 (128 MiB) volume from a .npy file must keep
    # its peak RSS growth under twice the *one-slab working set* — the
    # measured peak of pushing a single slab-sized volume through the
    # same pipeline (slab rows + tile copies + the codec's own transient
    # buffers; the entropy coder's bit-expansion intermediates dwarf the
    # raw slab bytes, so a static slab-sized ceiling would gate the codec,
    # not the streaming layer).  A run that accumulated per-slab state —
    # e.g. held every slab, or retained reconstructions — blows straight
    # past 2x.  Both peaks are measured in fresh subprocesses via VmHWM,
    # which execve resets (ru_maxrss survives fork+exec on Linux and
    # would report this parent's high-water mark instead); a tiny warmup
    # first pins the interpreter/NumPy baseline into the mark, so each
    # delta attributes only the streaming run itself.
    import subprocess

    if not os.path.exists("/proc/self/status"):
        print("stream-peak-rss skipped: no /proc VmHWM on this platform")
    else:
        stream_tile = (32, 32, 32)
        slab_nbytes = stream_tile[0] * 256 * 256 * 8
        workdir = tempfile.mkdtemp(prefix="repro-trend-stream-")
        try:
            big = generate_miranda_like_volume((256, 256, 256), seed=2021)
            full_path = os.path.join(workdir, "vol256.npy")
            np.save(full_path, big)
            slab_path = os.path.join(workdir, "slab.npy")
            np.save(slab_path, np.ascontiguousarray(big[: stream_tile[0]]))
            del big
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", "")]
            )

            def peak_of(path: str) -> int:
                probe = (
                    "import numpy as np\n"
                    "from repro.volumes.streaming import compress_volume_stream\n"
                    "def peak_kb():\n"
                    "    with open('/proc/self/status') as fh:\n"
                    "        line = [l for l in fh if l.startswith('VmHWM')][0]\n"
                    "    return int(line.split()[1])\n"
                    "compress_volume_stream(np.ones((8, 8, 8)), 'sz', 1e-3,\n"
                    "                       tile_shape=(8, 8, 8), cache=False)\n"
                    "before = peak_kb()\n"
                    f"compress_volume_stream({path!r}, 'sz', {ERROR_BOUND!r},\n"
                    f"                       tile_shape={stream_tile!r}, cache=False)\n"
                    "print((peak_kb() - before) * 1024)\n"
                )
                result = subprocess.run(
                    [sys.executable, "-c", probe],
                    capture_output=True,
                    text=True,
                    env=env,
                    check=True,
                )
                return int(result.stdout.strip())

            one_slab_peak = peak_of(slab_path)
            stream_peak = peak_of(full_path)
            cells["stream-peak-rss"] = {
                "kind": "mem",
                "value": stream_peak,
                "max": 2 * one_slab_peak,
                "one_slab_peak": one_slab_peak,
                "slab_nbytes": slab_nbytes,
            }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    # -- serve layer: warm-cache load at 1 vs 16 clients -----------------
    from benchmarks.test_serve import MIN_SCALING_16C, best_load  # noqa: E402
    from repro.serve.client import StoreClient  # noqa: E402
    from repro.serve.server import ServerConfig, ThreadedServer  # noqa: E402

    workdir = tempfile.mkdtemp(prefix="repro-trend-serve-")
    try:
        # 8^3 chunks: warm reads are assembly-bound (the cost coalescing
        # amortizes), not loopback-transfer-bound — see test_serve.py.
        store = ArrayStore.create(
            os.path.join(workdir, "vol"),
            chunk_shape=8,
            error_bound=ERROR_BOUND,
            codec="sz",
        )
        store.write(volume, cache=False)
        config = ServerConfig(root=workdir, max_concurrency=16)
        with ThreadedServer(config) as threaded:
            with StoreClient(threaded.url) as client:
                client.get("vol")  # warm the hot-chunk cache
            one = best_load(threaded.url, "vol", n_clients=1, rounds=5)
            sixteen = best_load(
                threaded.url, "vol", n_clients=16, rounds=5
            )
        cells["serve-warm-read-p50-1c"] = {"kind": "time", "ms": one["p50_ms"]}
        cells["serve-warm-read-p99-16c"] = {
            "kind": "time",
            "ms": sixteen["p99_ms"],
        }
        cells["serve-mbps-1c"] = {"kind": "rate", "value": one["mb_per_s"]}
        cells["serve-mbps-16c"] = {
            "kind": "rate",
            "value": sixteen["mb_per_s"],
        }
        cells["serve-scaling-16c-vs-1c"] = {
            "kind": "bar",
            "value": sixteen["mb_per_s"] / one["mb_per_s"],
            "min": MIN_SCALING_16C,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return cells


def gate(cells: dict, baseline: dict) -> int:
    """Compare timing cells against the baseline; 0 = pass, 1 = regression.

    The median per-cell ratio calibrates away the runner's hardware speed;
    each cell is then gated on its *relative* slowdown (see module
    docstring).
    """

    failed = False
    # ``bar``/``mem`` cells: absolute bounds, no baseline or calibration
    # needed (a mem cell is a bar over bytes rather than a ratio).
    for key, cell in sorted(cells.items()):
        if cell.get("kind") not in ("bar", "mem"):
            continue
        if "min" in cell:
            ok = cell["value"] >= cell["min"]
            bound_txt = f"floor {cell['min']:.4g}"
            verdict = "is below its absolute floor" if not ok else ""
        else:
            ok = cell["value"] <= cell["max"]
            bound_txt = f"ceiling {cell['max']:.4g}"
            verdict = "is above its absolute ceiling" if not ok else ""
        print(
            f"{key:<28} {cell['value']:>10.4g} ({bound_txt}) "
            f"{'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failed = True
            print(
                f"REGRESSION: {key} = {cell['value']:.4g} {verdict} "
                f"({bound_txt})",
                file=sys.stderr,
            )

    base_cells = baseline.get("cells", {})
    rows = []
    for key, cell in sorted(cells.items()):
        if cell.get("kind") != "time":
            continue
        base = base_cells.get(key)
        if base is None or base.get("kind") != "time":
            rows.append((key, cell["ms"], None, None))
            continue
        ratio = cell["ms"] / base["ms"] if base["ms"] > 0 else float("inf")
        rows.append((key, cell["ms"], base["ms"], ratio))

    ratios = [ratio for _, _, _, ratio in rows if ratio is not None]
    if not ratios:
        print("no comparable timing cells in the baseline; time gate skipped")
        return 1 if failed else 0
    machine_factor = statistics.median(ratios)

    print(f"{'cell':<28} {'ms':>10} {'baseline':>10} {'ratio':>7} {'rel':>7}")
    outliers = []
    slowed = []
    compared = 0
    for key, ms, base_ms, ratio in rows:
        base_txt = f"{base_ms:>10.2f}" if base_ms is not None else f"{'-':>10}"
        ratio_txt = f"{ratio:>7.2f}" if ratio is not None else f"{'-':>7}"
        relative = ratio / machine_factor if ratio is not None else None
        rel_txt = f"{relative:>7.2f}" if relative is not None else f"{'-':>7}"
        print(f"{key:<28} {ms:>10.2f} {base_txt} {ratio_txt} {rel_txt}")
        if relative is None:
            continue
        compared += 1
        if relative > OUTLIER_THRESHOLD:
            outliers.append((key, relative))
        elif relative > REGRESSION_THRESHOLD:
            slowed.append((key, relative))

    print(
        f"machine-speed factor (median ratio): {machine_factor:.3f}; gate: "
        f"any cell > {OUTLIER_THRESHOLD:.2f}x relative, or > "
        f"{BROAD_FRACTION:.0%} of cells > {REGRESSION_THRESHOLD:.2f}x"
    )
    for key, relative in outliers:
        failed = True
        print(
            f"REGRESSION: {key} slowed {relative:.2f}x beyond the "
            f"machine-wide trend (outlier budget {OUTLIER_THRESHOLD:.2f}x)",
            file=sys.stderr,
        )
    if compared and len(slowed) + len(outliers) > BROAD_FRACTION * compared:
        failed = True
        names = ", ".join(key for key, _ in slowed + outliers)
        print(
            f"REGRESSION: {len(slowed) + len(outliers)}/{compared} cells "
            f"slowed > {REGRESSION_THRESHOLD:.2f}x beyond the machine-wide "
            f"trend ({names})",
            file=sys.stderr,
        )
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=f"BENCH_{LABEL}.json",
        help=f"trend file to write (default: BENCH_{LABEL}.json)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the collected cells to the baseline path and skip the gate",
    )
    args = parser.parse_args()

    cells = collect_cells()
    trend = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "label": LABEL,
        "error_bound": ERROR_BOUND,
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "cells": cells,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(trend, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} ({len(cells)} cells)")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(trend, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; gate skipped")
        return 0
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA:
        print("baseline schema mismatch; gate skipped")
        return 0
    return gate(cells, baseline)


if __name__ == "__main__":
    raise SystemExit(main())
