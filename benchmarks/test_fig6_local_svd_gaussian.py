"""Figure 6: CR vs std of the local SVD truncation level, Gaussian fields.

Reproduces the paper's Figure 6: the windowed SVD truncation-level
statistic (number of singular modes for 99% of the window variance,
H=32) on single- and multi-range Gaussian fields against the compression
ratios of SZ and ZFP (MGARD omitted, as in the paper).

The paper frames this statistic as exploratory: it "provides a more
diverse representation of the data ... [and] tends to exhibit several
relating trends", i.e. it is *not* expected to give a single clean
monotone fit.  The assertions therefore check structure rather than a
specific slope sign:

* only SZ and ZFP appear (MGARD excluded);
* the statistic takes a spread of distinct values across fields (the
  "diverse representation" claim);
* compression ratios still respond to the error bound as usual.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SEED,
    local_stats_config,
    print_series_table,
    series_by_key,
)
from repro.core.figures import figure6_local_svd_gaussian


def _run(bench_registry):
    config = local_stats_config(compressors=("sz", "zfp"), compute_local_variogram=False)
    return figure6_local_svd_gaussian(
        config=config, registry=bench_registry, seed=BENCH_SEED
    )


def test_fig6_local_svd_gaussian(benchmark, bench_registry):
    output = benchmark.pedantic(_run, args=(bench_registry,), rounds=1, iterations=1)

    print_series_table("Figure 6 (left): single-range Gaussian fields", output["single"])
    print_series_table("Figure 6 (right): multi-range Gaussian fields", output["multi"])

    for panel in ("single", "multi"):
        compressors = {series.compressor for series in output[panel]}
        assert compressors == {"sz", "zfp"}, "MGARD must be omitted as in the paper"

    single = series_by_key(output["single"])
    multi = series_by_key(output["multi"])

    # "More diverse representation": the statistic spans multiple distinct
    # values over the fields of each panel.
    for series_map, panel in ((single, "single"), (multi, "multi")):
        x = series_map[("sz", 1e-2)].x
        finite = x[np.isfinite(x)]
        n_unique = np.unique(np.round(finite, 6)).size
        print(f"{panel}: {n_unique} distinct SVD-statistic values over {finite.size} fields")
        assert n_unique >= max(3, finite.size - 2)

    # CR ordering by bound still holds within each series family.
    for series_map in (single, multi):
        for compressor in ("sz", "zfp"):
            mean_crs = [
                float(np.mean(series_map[(compressor, bound)].compression_ratios))
                for bound in (1e-5, 1e-4, 1e-3, 1e-2)
            ]
            assert mean_crs == sorted(mean_crs)
