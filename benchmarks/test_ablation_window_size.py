"""Ablation: window size H of the local statistics.

The paper fixes H=32.  This ablation recomputes the std-of-local-variogram-
range statistic for H in {16, 32, 64} on the multi-range Gaussian workload
and reports how the explanatory power (R^2 of the CR log-regression for SZ
at 1e-3) depends on the window size — the kind of design-choice study the
paper defers to future work.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, GAUSSIAN_SHAPE
from repro.core.regression import fit_log_regression
from repro.datasets.registry import default_registry
from repro.pressio.api import compress_and_measure
from repro.stats.local import std_local_variogram_range

WINDOWS = (16, 32, 64)
ERROR_BOUND = 1e-3


def _run():
    registry = default_registry(gaussian_shape=GAUSSIAN_SHAPE)
    fields = registry.create("gaussian-multi", seed=BENCH_SEED)
    crs = []
    stats_per_window = {window: [] for window in WINDOWS}
    for _, field in fields:
        _, metrics = compress_and_measure(field, "sz", ERROR_BOUND)
        crs.append(metrics.compression_ratio)
        for window in WINDOWS:
            stats_per_window[window].append(std_local_variogram_range(field, window))
    return crs, stats_per_window


def test_ablation_window_size(benchmark):
    crs, stats_per_window = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== ablation: local-statistic window size (SZ, bound 1e-3, multi-range fields) ===")
    print(f"{'window H':>9} {'beta':>10} {'R^2':>8} {'min stat':>10} {'max stat':>10}")
    results = {}
    for window in WINDOWS:
        x = np.asarray(stats_per_window[window])
        fit = fit_log_regression(x, crs)
        results[window] = fit
        print(
            f"{window:>9d} {fit.beta:>10.3f} {fit.r_squared:>8.3f} "
            f"{np.nanmin(x):>10.3f} {np.nanmax(x):>10.3f}"
        )

    # Every window size must produce a usable statistic on this workload.
    for window, fit in results.items():
        assert fit.n_points >= 4, f"window {window} lost too many fields"
        assert np.isfinite(fit.r_squared)
    # The paper's default H=32 should be competitive with the alternatives
    # (within 0.35 R^2 of the best choice on this workload).
    best = max(fit.r_squared for fit in results.values())
    assert results[32].r_squared >= best - 0.35
