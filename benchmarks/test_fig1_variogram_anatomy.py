"""Figure 1: anatomy of a variogram (nugget, sill, range).

The paper's Figure 1 is an illustrative variogram curve annotated with its
nugget, sill and range.  The benchmark regenerates that curve from a
synthetic Gaussian field with a known correlation range and checks that the
fitted parameters behave as the figure describes: near-zero nugget, sill
close to the field variance, range close to the generative range, and a
curve that rises towards the sill and plateaus.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, GAUSSIAN_SHAPE
from repro.core.figures import figure1_variogram_anatomy

TRUE_RANGE = 16.0


def test_fig1_variogram_anatomy(benchmark):
    result = benchmark.pedantic(
        figure1_variogram_anatomy,
        kwargs=dict(shape=GAUSSIAN_SHAPE, correlation_range=TRUE_RANGE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )

    fitted = result["fitted"]
    lags = np.asarray(result["lags"])
    values = np.asarray(result["semivariance"])

    print("\n=== Figure 1: variogram anatomy ===")
    print(f"true correlation range : {TRUE_RANGE:.2f}")
    print(f"fitted range           : {fitted.range:.2f}")
    print(f"fitted sill            : {fitted.sill:.4f} (field variance {result['field_variance']:.4f})")
    print(f"fitted nugget          : {fitted.nugget:.4f}")
    print(f"fit RMSE               : {fitted.rmse:.5f}")
    print(f"effective range (95%)  : {fitted.effective_range:.2f}")
    sample = np.linspace(0, len(lags) - 1, 8).astype(int)
    print("lag -> semivariance samples:")
    for index in sample:
        print(f"  h={lags[index]:6.2f}  gamma={values[index]:.4f}")

    # Paper-shape checks.
    assert 0.5 * TRUE_RANGE <= fitted.range <= 1.5 * TRUE_RANGE
    assert fitted.nugget <= 0.1 * fitted.sill
    assert abs(fitted.sill - result["field_variance"]) <= 0.5 * result["field_variance"]
    # The curve rises: early lags well below the sill, late lags near it.
    assert values[0] < 0.3 * fitted.sill
    assert values[-1] > 0.6 * fitted.sill
