"""Figure 4: CR vs estimated global variogram range on Miranda velocityx slices.

Reproduces the paper's Figure 4 on the Miranda-like surrogate volume: the
compression ratios of all three compressors at four error bounds against
the global variogram range of each 2D slice, with fitted logarithmic
regression coefficients, plus the SZ panel restricted to bounds < 1e-2
(the paper's readability restriction).

Paper-shape assertions:

* SZ and ZFP show an increasing (beta > 0) CR-vs-range trend at the loose
  bounds on application-like data;
* the Miranda fits are more dispersed than the single-range Gaussian fits
  at the same bounds (checked against Figure 3's workload);
* the restricted SZ panel contains exactly the bounds below 1e-2.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_SEED,
    global_range_config,
    print_series_table,
    series_by_key,
)
from repro.core.figures import figure3_global_range_gaussian, figure4_global_range_miranda


def _run(bench_registry):
    miranda = figure4_global_range_miranda(
        config=global_range_config(), registry=bench_registry, seed=BENCH_SEED
    )
    gaussian = figure3_global_range_gaussian(
        config=global_range_config(), registry=bench_registry, seed=BENCH_SEED
    )
    return miranda, gaussian


def test_fig4_global_range_miranda(benchmark, bench_registry):
    miranda, gaussian = benchmark.pedantic(
        _run, args=(bench_registry,), rounds=1, iterations=1
    )

    print_series_table("Figure 4: Miranda velocityx, all compressors", miranda["all"])
    print_series_table("Figure 4: SZ panel restricted to bounds < 1e-2", miranda["sz_restricted"])

    by_key = series_by_key(miranda["all"])
    for compressor in ("sz", "zfp"):
        for bound in (1e-3, 1e-2):
            assert by_key[(compressor, bound)].fit.beta > 0, (compressor, bound)

    # Restricted panel: SZ only, bounds strictly below 1e-2.
    assert {s.compressor for s in miranda["sz_restricted"]} == {"sz"}
    assert all(s.error_bound < 1e-2 for s in miranda["sz_restricted"])

    # Application data shows more dispersion around the fitted curve than
    # the single-range synthetic fields (paper: "more dispersion around the
    # fitted curves but a matching trend").  Compare relative residual std
    # for SZ at 1e-3.
    gaussian_single = series_by_key(gaussian["single"])

    def relative_residual(series):
        return series.fit.residual_std / max(float(np.mean(series.compression_ratios)), 1e-9)

    miranda_rel = relative_residual(by_key[("sz", 1e-3)])
    gaussian_rel = relative_residual(gaussian_single[("sz", 1e-3)])
    print(
        f"\nrelative residual std (SZ, 1e-3): miranda={miranda_rel:.3f} "
        f"gaussian-single={gaussian_rel:.3f}"
    )
    # The paper reports *more* dispersion on the real Miranda data than on
    # the synthetic single-range fields.  The surrogate volume is smoother
    # than the real snapshot, so we record the comparison (printed above and
    # in EXPERIMENTS.md) but only assert that both fits are meaningful.
    assert np.isfinite(miranda_rel) and np.isfinite(gaussian_rel)
    assert by_key[("sz", 1e-3)].fit.r_squared > 0.3
