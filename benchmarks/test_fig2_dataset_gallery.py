"""Figure 2: the datasets (Gaussian fields and Miranda slices).

The paper's Figure 2 shows example images of the 2D Gaussian fields and
Miranda velocityx slices.  Without plotting, the benchmark generates every
workload in the registry and prints per-field summary statistics, checking
that the datasets span distinct correlation regimes (the precondition for
every later figure).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED
from repro.core.figures import figure2_dataset_gallery
from repro.stats.variogram_models import estimate_variogram_range


def test_fig2_dataset_gallery(benchmark, bench_registry):
    gallery = benchmark.pedantic(
        figure2_dataset_gallery,
        kwargs=dict(registry=bench_registry, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )

    print("\n=== Figure 2: dataset gallery ===")
    for dataset, entries in gallery.items():
        print(f"\n{dataset} ({len(entries)} fields)")
        print(f"{'label':>28} {'shape':>12} {'min':>9} {'max':>9} {'mean':>9} {'std':>8}")
        for entry in entries:
            print(
                f"{entry['label']:>28} {entry['rows']:>5d}x{entry['cols']:<6d} "
                f"{entry['min']:>9.3f} {entry['max']:>9.3f} {entry['mean']:>9.3f} "
                f"{entry['std']:>8.3f}"
            )

    assert {"gaussian-single", "gaussian-multi", "miranda"} <= set(gallery)
    for entries in gallery.values():
        assert len(entries) >= 4
        for entry in entries:
            assert np.isfinite(entry["std"]) and entry["std"] > 0

    # The single-range family must span clearly different correlation ranges
    # (that spread is the x-axis of Figure 3).
    fields = bench_registry.create("gaussian-single", seed=BENCH_SEED)
    ranges = [estimate_variogram_range(field) for _, field in fields]
    print("\nestimated global variogram ranges (gaussian-single):")
    for (label, _), value in zip(fields, ranges):
        print(f"  {label:>28}: {value:7.2f}")
    assert max(ranges) > 4.0 * min(ranges)
