"""Shared configuration and helpers for the benchmark harness.

Every benchmark regenerates the data series behind one of the paper's
figures (or an ablation) on a reduced-size workload, prints the series in
the format of the paper's legends (fitted alpha / beta per compressor and
error bound) and asserts the qualitative findings.  Timings are collected
with pytest-benchmark; expensive sweeps are executed exactly once via
``benchmark.pedantic``.

Workload sizes are chosen so the full harness completes in minutes on a
laptop: Gaussian fields of 128x128 (paper: 1028x1028) and a Miranda-like
volume of 24x128x128 (paper: 256x384x384).  Absolute compression ratios
therefore differ from the paper, but the relationships under study
(who wins, the sign and rough magnitude of the log-regression slopes,
where sensitivity is lost) are preserved; see EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.figures import FigureSeries
from repro.datasets.registry import default_registry

#: Field sizes for the benchmark workloads.
GAUSSIAN_SHAPE = (128, 128)
MIRANDA_SHAPE = (24, 128, 128)
#: Error bounds used throughout (the paper's set).
PAPER_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2)
#: Seed used for every benchmark workload (reproducibility).
BENCH_SEED = 2021


@pytest.fixture(scope="session")
def bench_registry():
    """Dataset registry sized for the benchmark harness."""

    return default_registry(gaussian_shape=GAUSSIAN_SHAPE, miranda_shape=MIRANDA_SHAPE)


def global_range_config(**overrides) -> ExperimentConfig:
    """Config computing only the global variogram range statistic."""

    defaults = dict(
        error_bounds=PAPER_BOUNDS,
        compute_local_variogram=False,
        compute_local_svd=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def local_stats_config(**overrides) -> ExperimentConfig:
    """Config computing the windowed (local) statistics."""

    defaults = dict(
        error_bounds=PAPER_BOUNDS,
        compute_global_range=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def print_series_table(title: str, series_list: Iterable[FigureSeries]) -> None:
    """Print one figure panel in the paper's legend format."""

    print(f"\n=== {title} ===")
    header = (
        f"{'compressor':>10} {'bound':>8} {'alpha':>10} {'beta':>10} "
        f"{'R^2':>8} {'resid std':>10} {'points':>7}"
    )
    print(header)
    print("-" * len(header))
    for series in sorted(series_list, key=lambda s: (s.compressor, s.error_bound)):
        if series.fit is None:
            print(f"{series.compressor:>10} {series.error_bound:>8.0e}  (no fit)")
            continue
        fit = series.fit
        print(
            f"{series.compressor:>10} {series.error_bound:>8.0e} {fit.alpha:>10.3f} "
            f"{fit.beta:>10.3f} {fit.r_squared:>8.3f} {fit.residual_std:>10.3f} "
            f"{fit.n_points:>7d}"
        )


def series_by_key(series_list: Iterable[FigureSeries]) -> Dict[tuple, FigureSeries]:
    """Index series by (compressor, error_bound) for assertions."""

    return {(s.compressor, s.error_bound): s for s in series_list}


def mean_beta(series_list: Iterable[FigureSeries], compressor: str) -> float:
    """Average fitted slope over all bounds for one compressor."""

    betas: List[float] = [
        s.fit.beta for s in series_list if s.compressor == compressor and s.fit is not None
    ]
    if not betas:
        return float("nan")
    return float(sum(betas) / len(betas))
