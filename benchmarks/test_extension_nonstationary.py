"""Extension: non-stationary fields (future-work item ii).

The paper motivates local statistics by noting that the global variogram
range cannot represent heterogeneous (non-stationary) correlation
structure.  This benchmark quantifies that comparison on a controlled
non-stationary workload (``gaussian-nonstationary``: gradient, blob and
split range maps): it fits the CR log-regression against both the global
range and the std of local variogram ranges for SZ and ZFP, prints both
tables, and asserts the structural facts (the local statistic varies
substantially across these fields, fits are computable, CR stays ordered
by error bound).  Which statistic explains more variance on this workload
is reported rather than asserted — on fields whose *mean* smoothness
varies alongside their heterogeneity, the global range can remain the
stronger single predictor, which is itself a useful observation for the
paper's future-work direction of combining several statistics.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_SEED, PAPER_BOUNDS, print_series_table, series_by_key
from repro.core.experiment import ExperimentConfig
from repro.core.figures import series_from_result
from repro.core.pipeline import run_experiment


def _run(bench_registry):
    config = ExperimentConfig(
        compressors=("sz", "zfp"),
        error_bounds=PAPER_BOUNDS,
        compute_local_svd=False,
    )
    result = run_experiment(
        "gaussian-nonstationary", config=config, registry=bench_registry, seed=BENCH_SEED
    )
    global_series = series_from_result(
        result, "global_variogram_range", figure="nonstationary-global"
    )
    local_series = series_from_result(
        result, "std_local_variogram_range", figure="nonstationary-local"
    )
    return result, global_series, local_series


def test_extension_nonstationary(benchmark, bench_registry):
    result, global_series, local_series = benchmark.pedantic(
        _run, args=(bench_registry,), rounds=1, iterations=1
    )

    print_series_table(
        "Non-stationary fields: CR vs global variogram range", global_series
    )
    print_series_table(
        "Non-stationary fields: CR vs std of local variogram range", local_series
    )

    local = series_by_key(local_series)
    glob = series_by_key(global_series)

    # The local statistic varies across the non-stationary fields.
    x = local[("sz", 1e-2)].x
    finite = x[np.isfinite(x)]
    assert finite.size >= 4
    assert finite.max() > 1.2 * finite.min()

    # CR still ordered by bound.
    for compressor in ("sz", "zfp"):
        mean_crs = [
            float(np.mean(local[(compressor, bound)].compression_ratios))
            for bound in PAPER_BOUNDS
        ]
        assert mean_crs == sorted(mean_crs)

    # Report the explanatory power of both statistics (see module docstring
    # for why this is reported, not asserted).
    def mean_r2(series_map, compressor):
        values = [
            series_map[(compressor, bound)].fit.r_squared
            for bound in (1e-3, 1e-2)
            if series_map[(compressor, bound)].fit is not None
        ]
        return float(np.mean(values)) if values else float("nan")

    for compressor in ("sz", "zfp"):
        local_r2 = mean_r2(local, compressor)
        global_r2 = mean_r2(glob, compressor)
        print(f"{compressor}: mean R^2 local={local_r2:.3f} global={global_r2:.3f}")
        assert np.isfinite(local_r2)
        assert np.isfinite(global_r2)
