"""Shared low-level utilities.

This subpackage contains small, dependency-free helpers used across the
library:

* :mod:`repro.utils.blocking` -- views and iteration over tiled blocks of
  2D arrays (used by the block-based compressors and the windowed
  correlation statistics).
* :mod:`repro.utils.parallel` -- a thin process/thread pool wrapper for
  embarrassingly parallel sweeps over (field, compressor, bound)
  combinations.
* :mod:`repro.utils.rng` -- seeded random-generator helpers so every
  experiment in the repository is reproducible.
* :mod:`repro.utils.validation` -- argument checking helpers with
  consistent error messages.
"""

from repro.utils.blocking import (
    block_view,
    iter_blocks,
    pad_to_multiple,
    reassemble_blocks,
    window_starts,
)
from repro.utils.parallel import ParallelConfig, parallel_map
from repro.utils.rng import derive_seeds, make_rng
from repro.utils.validation import (
    ensure_2d,
    ensure_positive,
    ensure_float_array,
    ensure_in,
)

__all__ = [
    "block_view",
    "iter_blocks",
    "pad_to_multiple",
    "reassemble_blocks",
    "window_starts",
    "ParallelConfig",
    "parallel_map",
    "derive_seeds",
    "make_rng",
    "ensure_2d",
    "ensure_positive",
    "ensure_float_array",
    "ensure_in",
]
