"""Seeded random number generation helpers.

Every stochastic component of the library (Gaussian field sampling, Miranda
surrogate synthesis, variogram pair subsampling, baseline block sampling)
accepts either an integer seed or an already-constructed
:class:`numpy.random.Generator`.  Routing everything through
:func:`make_rng` keeps experiments bit-for-bit reproducible, which the
benchmark harness relies on when comparing against the paper's qualitative
trends.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["make_rng", "derive_seeds", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a non-deterministic generator; an existing generator
    is passed through unchanged so callers can share RNG state.
    """

    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def derive_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``seed``.

    Used by the experiment pipeline to hand a distinct, reproducible seed to
    every field realisation in a sweep (including when the sweep is executed
    by a process pool, where sharing one Generator object is not possible).
    """

    if count < 0:
        raise ValueError("count must be >= 0")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive from the generator's bit stream deterministically.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]
