"""Parallel execution helpers for embarrassingly parallel sweeps.

The experiments in this repository are sweeps over independent
(field, compressor, error-bound) combinations — exactly the workload shape
the original study ran on a cluster node with 64 cores.  We expose a small
wrapper around :mod:`concurrent.futures` that

* preserves input ordering in the results,
* degrades gracefully to serial execution for ``workers <= 1`` (useful in
  tests and when the work items are tiny, where pool overhead dominates),
* supports both process pools (CPU-bound NumPy work that releases the GIL
  only partially) and thread pools (cheap tasks, avoids pickling).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["ParallelConfig", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of a parallel map.

    Attributes
    ----------
    workers:
        Number of worker processes/threads.  ``1`` (default) runs serially
        in the calling process.
    use_processes:
        Select :class:`~concurrent.futures.ProcessPoolExecutor` (default)
        versus :class:`~concurrent.futures.ThreadPoolExecutor`.
    chunksize:
        Forwarded to ``Executor.map`` for process pools to amortise IPC
        overhead when there are many small tasks.
    """

    workers: int = 1
    use_processes: bool = True
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
) -> List[R]:
    """Apply ``func`` to every item, optionally in parallel, preserving order.

    ``func`` and the items must be picklable when ``use_processes=True`` and
    ``workers > 1``.  Exceptions raised by workers propagate to the caller.
    """

    config = config or ParallelConfig()
    items_list: Sequence[T] = list(items)
    if not items_list:
        return []
    if config.workers == 1:
        return [func(item) for item in items_list]

    if config.use_processes:
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            return list(pool.map(func, items_list, chunksize=config.chunksize))
    with ThreadPoolExecutor(max_workers=config.workers) as pool:
        return list(pool.map(func, items_list))
