"""Parallel execution helpers for embarrassingly parallel sweeps.

The experiments in this repository are sweeps over independent
(field, compressor, error-bound) combinations — exactly the workload shape
the original study ran on a cluster node with 64 cores.  We expose a small
wrapper around :mod:`concurrent.futures` that

* preserves input ordering in the results,
* degrades gracefully to serial execution for ``workers <= 1`` (useful in
  tests and when the work items are tiny, where pool overhead dominates),
* supports both process pools (CPU-bound NumPy work that releases the GIL
  only partially) and thread pools (cheap tasks, avoids pickling),
* honours the ``MP_START_METHOD`` environment variable (``fork`` /
  ``spawn`` / ``forkserver``) so CI can exercise worker code under spawn,
  where fork's copy-on-write cannot paper over pickling bugs.

**The shared-array protocol.**  Pickling whole ndarrays across the
process boundary doubles the memory traffic of every tile/chunk job: the
submitting side serialises the array, the pipe copies it, the worker
deserialises it.  :class:`SharedArraySession` instead places the bulk
data in :mod:`multiprocessing.shared_memory` segments; what crosses the
boundary is a :class:`SharedArraySpec` descriptor — ``(name, shape,
dtype)`` plus a region — and workers read their slice in place with
:func:`read_shared` / write results in place with :func:`write_shared`.
The session owns the segment lifecycle: segments are unlinked on success,
on worker exceptions and on ``KeyboardInterrupt`` (the ``with`` block's
``finally``), so ``/dev/shm`` never accumulates leaked segments.

Direct :class:`~multiprocessing.shared_memory.SharedMemory` construction
outside this module is a lint finding (``worker-boundary``): the session
is the single enforcement point for naming, cleanup and fallback rules.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "WorkerPool",
    "SharedArraySpec",
    "SharedArraySession",
    "read_shared",
    "write_shared",
    "shared_memory_available",
    "use_shared_arrays",
    "start_method",
    "ENV_START_METHOD",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable selecting the multiprocessing start method for the
#: process pools created here (empty/unset = the platform default).
ENV_START_METHOD = "MP_START_METHOD"


def start_method() -> Optional[str]:
    """The start method requested via ``MP_START_METHOD``, if any.

    Returns ``None`` when the variable is unset or empty (the platform
    default applies); raises :class:`ValueError` for a method the current
    platform does not offer, so a typo in a CI matrix fails loudly
    instead of silently testing the wrong thing.
    """

    method = os.environ.get(ENV_START_METHOD, "").strip()
    if not method:
        return None
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"{ENV_START_METHOD}={method!r} is not available on this platform "
            f"(choices: {multiprocessing.get_all_start_methods()})"
        )
    return method


def _process_pool(workers: int) -> ProcessPoolExecutor:
    method = start_method()
    if method is None:
        return ProcessPoolExecutor(max_workers=workers)
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=multiprocessing.get_context(method)
    )


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of a parallel map.

    Attributes
    ----------
    workers:
        Number of worker processes/threads.  ``1`` (default) runs serially
        in the calling process.
    use_processes:
        Select :class:`~concurrent.futures.ProcessPoolExecutor` (default)
        versus :class:`~concurrent.futures.ThreadPoolExecutor`.
    chunksize:
        Forwarded to ``Executor.map`` for process pools to amortise IPC
        overhead when there are many small tasks.
    """

    workers: int = 1
    use_processes: bool = True
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")


class WorkerPool:
    """A reusable executor honouring a :class:`ParallelConfig`.

    ``parallel_map`` creates (and tears down) a pool per call, which is
    fine for one big batch but wasteful for wavefront schedules that
    submit many small batches back to back — process pool startup would
    be paid once per wave.  A ``WorkerPool`` keeps one executor alive for
    the duration of a ``with`` block; :meth:`map` behaves exactly like
    :func:`parallel_map` (ordered results, worker exceptions propagate).

    A pool over a serial config (``workers == 1`` or ``None``) has no
    executor at all and maps inline, so callers need no special-casing.
    The executor is created lazily on the first non-empty :meth:`map`, so
    a run that turns out fully memoized never pays pool startup.
    """

    def __init__(self, config: Optional[ParallelConfig]) -> None:
        self.config = config or ParallelConfig()
        self._executor: Optional[Executor] = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _ensure_executor(self) -> Optional[Executor]:
        if self._executor is None and self.config.workers > 1:
            if self.config.use_processes:
                self._executor = _process_pool(self.config.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers
                )
        return self._executor

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items_list: Sequence[T] = list(items)
        if not items_list:
            return []
        if self._ensure_executor() is None:
            return [func(item) for item in items_list]
        if isinstance(self._executor, ProcessPoolExecutor):
            return list(
                self._executor.map(
                    func, items_list, chunksize=self.config.chunksize
                )
            )
        return list(self._executor.map(func, items_list))


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
) -> List[R]:
    """Apply ``func`` to every item, optionally in parallel, preserving order.

    ``func`` and the items must be picklable when ``use_processes=True`` and
    ``workers > 1``.  Exceptions raised by workers propagate to the caller.
    """

    with WorkerPool(config) as pool:
        return pool.map(func, items)


# ---------------------------------------------------------------------------
# Shared-array protocol
# ---------------------------------------------------------------------------

#: Segment names are ``repro-shm-<pid>-<counter>`` — unique per creating
#: process (only the submitting side ever creates segments), and
#: recognisable so tests can assert /dev/shm holds no leaked segments.
SEGMENT_PREFIX = "repro-shm"
_segment_counter = itertools.count()

_shared_memory_probe: Optional[bool] = None


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_segment_counter)}"


def _new_segment(size: int):
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(
        create=True, size=size, name=_segment_name()
    )


def _attach_segment(name: str):
    from multiprocessing import shared_memory

    try:
        # ``track=False`` (3.13+) keeps attach-only processes out of the
        # resource tracker entirely; on older interpreters the pooled
        # workers share the submitting process's tracker, so the
        # creator's unlink() still unregisters the name.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works here (probed once).

    False on platforms without a usable shared-memory filesystem; callers
    fall back to the pickle path.
    """

    global _shared_memory_probe
    if _shared_memory_probe is None:
        try:
            segment = _new_segment(1)
            segment.close()
            segment.unlink()
            _shared_memory_probe = True
        except (ImportError, OSError):
            _shared_memory_probe = False
    return _shared_memory_probe


def use_shared_arrays(config: Optional[ParallelConfig]) -> bool:
    """Whether a run under ``config`` should use the shared-array protocol.

    True only for real process pools (``workers > 1``) with working shared
    memory: serial runs and thread pools see the caller's memory directly,
    and a platform without shared memory keeps the pickle fallback.
    """

    return (
        config is not None
        and config.workers > 1
        and config.use_processes
        and shared_memory_available()
    )


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of a shared-memory-backed ndarray.

    This — not the array — is what crosses the worker boundary: workers
    :func:`read_shared` their region in place and :func:`write_shared`
    results back, so the only payload returned through the pickle channel
    is the (small) compressed bytes.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArraySession:
    """Owns the shared-memory segments of one parallel run.

    ``with SharedArraySession() as session:`` guarantees every segment
    created through :meth:`share` / :meth:`allocate` is closed *and
    unlinked* when the block exits — on success, on a propagating worker
    exception, and on ``KeyboardInterrupt`` alike.  Callers must copy any
    data they need out of session-backed views before the block exits.
    """

    def __init__(self) -> None:
        self._segments: List = []

    # -- allocation ------------------------------------------------------
    def allocate(
        self, shape: Sequence[int], dtype="float64"
    ) -> Tuple[SharedArraySpec, np.ndarray]:
        """New zero-initialised shared array; returns (spec, writable view)."""

        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes <= 0:
            raise ValueError(f"cannot share an empty array of shape {shape}")
        segment = _new_segment(nbytes)
        self._segments.append(segment)
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        return SharedArraySpec(segment.name, shape, str(dtype)), view

    def share(self, array: np.ndarray) -> SharedArraySpec:
        """Copy ``array`` into a new shared segment; returns its spec."""

        array = np.asarray(array)
        spec, view = self.allocate(array.shape, array.dtype)
        view[...] = array
        del view
        return spec

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment this session created."""

        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # A view into the segment is still alive in this process;
                # the mapping is released when the view is collected.  The
                # unlink below still removes the /dev/shm entry.
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArraySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_shared(spec: SharedArraySpec, region=None) -> np.ndarray:
    """Copy ``spec``'s array (or a region of it) out of shared memory.

    ``region`` is a tuple of slices/ints in the array's coordinates
    (``None`` reads everything).  Returns a fresh C-contiguous array that
    owns its data — safe to hold after the segment is unlinked.
    """

    segment = _attach_segment(spec.name)
    try:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
        values = view[region].copy() if region is not None else view.copy()
        del view
    finally:
        segment.close()
    return values


def write_shared(spec: SharedArraySpec, region, values: np.ndarray) -> None:
    """Write ``values`` into ``region`` of the shared array ``spec``.

    The in-place analogue of returning an ndarray through the pickle
    channel: workers write their reconstruction directly where the
    submitting side will read it.
    """

    segment = _attach_segment(spec.name)
    try:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
        if region is None:
            view[...] = values
        else:
            view[region] = values
        del view
    finally:
        segment.close()
