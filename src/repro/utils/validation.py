"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

__all__ = [
    "ensure_2d",
    "ensure_ndim",
    "ensure_positive",
    "ensure_float_array",
    "ensure_in",
    "ensure_odd",
]

T = TypeVar("T")


def ensure_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 2D :class:`numpy.ndarray` or raise ``ValueError``."""

    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def ensure_ndim(
    array: np.ndarray, ndims: Iterable[int], name: str = "array"
) -> np.ndarray:
    """Return ``array`` as a non-empty ndarray whose ndim is in ``ndims``."""

    allowed = tuple(ndims)
    arr = np.asarray(array)
    if arr.ndim not in allowed:
        dims = "/".join(f"{d}D" for d in allowed)
        raise ValueError(f"{name} must be {dims}, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def ensure_float_array(array: np.ndarray, name: str = "array", dtype=np.float64) -> np.ndarray:
    """Return ``array`` converted to a floating point ndarray.

    Integer and boolean inputs are promoted; complex inputs are rejected
    because none of the compressors or statistics are defined on them.
    """

    arr = np.asarray(array)
    if np.iscomplexobj(arr):
        raise TypeError(f"{name} must be real-valued, got complex dtype {arr.dtype}")
    return np.asarray(arr, dtype=dtype)


def ensure_positive(value: float, name: str = "value", *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when ``strict=False``)."""

    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_in(value: T, allowed: Sequence[T], name: str = "value") -> T:
    """Validate that ``value`` is one of ``allowed``."""

    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)}, got {value!r}")
    return value


def ensure_odd(value: int, name: str = "value") -> int:
    """Validate that ``value`` is an odd positive integer."""

    ensure_positive(value, name)
    if int(value) != value or value % 2 == 0:
        raise ValueError(f"{name} must be an odd integer, got {value!r}")
    return int(value)
