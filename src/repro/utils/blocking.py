"""Block and window utilities for 2D arrays.

The compressors in :mod:`repro.compressors` operate on fixed-size blocks
(16x16 for the SZ-like compressor, 4x4 for the ZFP-like compressor) and the
local correlation statistics in :mod:`repro.stats.local` operate on tiled
windows (32x32 by default).  This module centralises the padding, viewing
and reassembly logic so that every consumer treats edges identically.

All functions are vectorised: :func:`block_view` returns a strided view of
shape ``(n_blocks_i, n_blocks_j, bs, bs)`` without copying when the array
dimensions are exact multiples of the block size.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.validation import ensure_2d, ensure_positive

__all__ = [
    "pad_to_multiple",
    "block_view",
    "iter_blocks",
    "reassemble_blocks",
    "window_starts",
    "block_count",
]


def pad_to_multiple(
    field: np.ndarray, block_size: int, mode: str = "edge"
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Pad a 2D array so both dimensions are multiples of ``block_size``.

    Parameters
    ----------
    field:
        2D input array.
    block_size:
        Target multiple for both dimensions.
    mode:
        Padding mode forwarded to :func:`numpy.pad`.  ``"edge"`` replicates
        the border values, which keeps padded blocks statistically similar
        to their neighbourhood and avoids introducing artificial
        discontinuities that would hurt the block predictors.

    Returns
    -------
    padded, original_shape:
        The padded array and the original ``(rows, cols)`` shape, needed by
        :func:`reassemble_blocks` to crop the reconstruction.
    """

    field = ensure_2d(field, "field")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    pad_r = (-rows) % block_size
    pad_c = (-cols) % block_size
    if pad_r == 0 and pad_c == 0:
        return field, (rows, cols)
    padded = np.pad(field, ((0, pad_r), (0, pad_c)), mode=mode)
    return padded, (rows, cols)


def block_view(field: np.ndarray, block_size: int) -> np.ndarray:
    """Return a ``(nbi, nbj, bs, bs)`` view of a 2D array tiled into blocks.

    The array dimensions must be exact multiples of ``block_size``; call
    :func:`pad_to_multiple` first otherwise.  The result is a view (no copy)
    so writing to it mutates ``field``.
    """

    field = ensure_2d(field, "field")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    if rows % block_size or cols % block_size:
        raise ValueError(
            f"field shape {field.shape} is not a multiple of block_size={block_size}; "
            "use pad_to_multiple() first"
        )
    nbi = rows // block_size
    nbj = cols // block_size
    shape = (nbi, nbj, block_size, block_size)
    strides = (
        field.strides[0] * block_size,
        field.strides[1] * block_size,
        field.strides[0],
        field.strides[1],
    )
    return np.lib.stride_tricks.as_strided(field, shape=shape, strides=strides)


def block_count(shape: Tuple[int, int], block_size: int) -> Tuple[int, int]:
    """Number of blocks along each dimension after padding to a multiple."""

    rows, cols = shape
    return (-(-rows // block_size), -(-cols // block_size))


def iter_blocks(
    field: np.ndarray, block_size: int
) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
    """Yield ``((i, j), block)`` for every ``block_size`` block of ``field``.

    Blocks at the right/bottom edges may be smaller than ``block_size``.
    This iterator does not pad; it is used by the windowed statistics where
    partial windows are simply skipped or handled by the caller.
    """

    field = ensure_2d(field, "field")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    for i in range(0, rows, block_size):
        for j in range(0, cols, block_size):
            yield (i // block_size, j // block_size), field[
                i : i + block_size, j : j + block_size
            ]


def reassemble_blocks(
    blocks: np.ndarray, original_shape: Tuple[int, int]
) -> np.ndarray:
    """Inverse of :func:`block_view` followed by a crop to ``original_shape``.

    ``blocks`` must have shape ``(nbi, nbj, bs, bs)``.
    """

    if blocks.ndim != 4:
        raise ValueError(f"expected 4D block array, got shape {blocks.shape}")
    nbi, nbj, bs, bs2 = blocks.shape
    if bs != bs2:
        raise ValueError("blocks must be square")
    full = blocks.transpose(0, 2, 1, 3).reshape(nbi * bs, nbj * bs)
    rows, cols = original_shape
    return np.ascontiguousarray(full[:rows, :cols])


def window_starts(length: int, window: int, *, include_partial: bool = False) -> List[int]:
    """Start indices of non-overlapping windows of size ``window``.

    Parameters
    ----------
    length:
        Length of the dimension being tiled.
    window:
        Window size.
    include_partial:
        When ``False`` (default) a trailing window that would extend past
        ``length`` is dropped, matching the paper's tiled-window convention
        where only complete 32x32 windows contribute to the local
        statistics.
    """

    ensure_positive(window, "window")
    if length < 0:
        raise ValueError("length must be non-negative")
    starts = list(range(0, length - window + 1, window))
    if include_partial and (not starts or starts[-1] + window < length):
        last = starts[-1] + window if starts else 0
        if last < length:
            starts.append(last)
    return starts
