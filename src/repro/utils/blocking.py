"""Block and window utilities for N-dimensional arrays.

The compressors in :mod:`repro.compressors` operate on fixed-size blocks
(16x16 for the SZ-like compressor on planes, 4x4x4 for the ZFP-like
compressor on volumes) and the local correlation statistics in
:mod:`repro.stats.local` operate on tiled windows (32x32 by default).
This module centralises the padding, viewing and reassembly logic so that
every consumer treats edges identically.

All functions are dimension-general and vectorised: :func:`block_view`
returns a strided view of shape ``(*n_blocks, *block)`` — e.g.
``(nbi, nbj, bs, bs)`` for a 2D field or ``(nbi, nbj, nbk, bs, bs, bs)``
for a 3D volume — without copying when the array dimensions are exact
multiples of the block size.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.validation import ensure_2d, ensure_ndim, ensure_positive

__all__ = [
    "pad_to_multiple",
    "block_view",
    "iter_blocks",
    "reassemble_blocks",
    "window_starts",
    "block_count",
    "grid_offsets",
]

#: Dimensionalities the blocked compressors support.
SUPPORTED_NDIMS = (2, 3)


def pad_to_multiple(
    field: np.ndarray, block_size: int, mode: str = "edge"
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Pad an N-d array so every dimension is a multiple of ``block_size``.

    Parameters
    ----------
    field:
        2D or 3D input array.
    block_size:
        Target multiple for every dimension.
    mode:
        Padding mode forwarded to :func:`numpy.pad`.  ``"edge"`` replicates
        the border values, which keeps padded blocks statistically similar
        to their neighbourhood and avoids introducing artificial
        discontinuities that would hurt the block predictors.

    Returns
    -------
    padded, original_shape:
        The padded array and the original shape, needed by
        :func:`reassemble_blocks` to crop the reconstruction.
    """

    field = ensure_ndim(field, SUPPORTED_NDIMS, "field")
    ensure_positive(block_size, "block_size")
    original_shape = field.shape
    pads = tuple((0, (-s) % block_size) for s in original_shape)
    if all(p[1] == 0 for p in pads):
        return field, original_shape
    padded = np.pad(field, pads, mode=mode)
    return padded, original_shape


def block_view(field: np.ndarray, block_size: int) -> np.ndarray:
    """Return a ``(*n_blocks, *block)`` view of an N-d array tiled into blocks.

    The array dimensions must be exact multiples of ``block_size``; call
    :func:`pad_to_multiple` first otherwise.  The result is a view (no copy)
    so writing to it mutates ``field``.
    """

    field = ensure_ndim(field, SUPPORTED_NDIMS, "field")
    ensure_positive(block_size, "block_size")
    for length in field.shape:
        if length % block_size:
            raise ValueError(
                f"field shape {field.shape} is not a multiple of block_size={block_size}; "
                "use pad_to_multiple() first"
            )
    counts = tuple(length // block_size for length in field.shape)
    shape = counts + (block_size,) * field.ndim
    strides = tuple(s * block_size for s in field.strides) + field.strides
    return np.lib.stride_tricks.as_strided(field, shape=shape, strides=strides)


def block_count(shape: Tuple[int, ...], block_size: int) -> Tuple[int, ...]:
    """Number of blocks along each dimension after padding to a multiple."""

    return tuple(-(-length // block_size) for length in shape)


def iter_blocks(
    field: np.ndarray, block_size: int
) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
    """Yield ``((i, j), block)`` for every ``block_size`` block of ``field``.

    Blocks at the right/bottom edges may be smaller than ``block_size``.
    This iterator does not pad; it is used by the windowed statistics where
    partial windows are simply skipped or handled by the caller.
    """

    field = ensure_2d(field, "field")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    for i in range(0, rows, block_size):
        for j in range(0, cols, block_size):
            yield (i // block_size, j // block_size), field[
                i : i + block_size, j : j + block_size
            ]


def reassemble_blocks(
    blocks: np.ndarray, original_shape: Tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`block_view` followed by a crop to ``original_shape``.

    ``blocks`` must have shape ``(*n_blocks, *block)`` with equal block
    edges (``(nbi, nbj, bs, bs)`` in 2D, ``(nbi, nbj, nbk, bs, bs, bs)``
    in 3D).
    """

    ndim = blocks.ndim // 2
    if blocks.ndim != 2 * ndim or ndim not in SUPPORTED_NDIMS:
        raise ValueError(f"expected 4D or 6D block array, got shape {blocks.shape}")
    counts = blocks.shape[:ndim]
    edges = blocks.shape[ndim:]
    if len(set(edges)) != 1:
        raise ValueError("blocks must be square")
    bs = edges[0]
    # Interleave (n_0, b_0, n_1, b_1, ...) then collapse each pair.
    order = tuple(i for pair in zip(range(ndim), range(ndim, 2 * ndim)) for i in pair)
    full = blocks.transpose(order).reshape(tuple(n * bs for n in counts))
    crop = tuple(slice(0, s) for s in original_shape)
    return np.ascontiguousarray(full[crop])


def grid_offsets(
    shape: Tuple[int, ...], chunk_shape: Tuple[int, ...]
) -> List[Tuple[int, ...]]:
    """C-scan-order start offsets of the chunks covering an N-d ``shape``.

    The grid is anchored at the origin with one chunk every ``chunk_shape``
    steps per axis; trailing chunks may extend past ``shape`` (callers clip
    to the array bounds).  This is the shared tiling used by the volume
    pipeline (:func:`repro.volumes.pipeline.tile_offsets`) and the chunked
    array store (:mod:`repro.store`).
    """

    if len(shape) != len(chunk_shape):
        raise ValueError(
            f"shape {tuple(shape)} and chunk_shape {tuple(chunk_shape)} "
            "must have the same length"
        )
    axes = []
    for length, edge in zip(shape, chunk_shape):
        ensure_positive(int(edge), "chunk edge")
        axes.append(range(0, int(length), int(edge)))
    return list(product(*axes))


def window_starts(length: int, window: int, *, include_partial: bool = False) -> List[int]:
    """Start indices of non-overlapping windows of size ``window``.

    Parameters
    ----------
    length:
        Length of the dimension being tiled.
    window:
        Window size.
    include_partial:
        When ``False`` (default) a trailing window that would extend past
        ``length`` is dropped, matching the paper's tiled-window convention
        where only complete 32x32 windows contribute to the local
        statistics.
    """

    ensure_positive(window, "window")
    if length < 0:
        raise ValueError("length must be non-negative")
    starts = list(range(0, length - window + 1, window))
    if include_partial and (not starts or starts[-1] + window < length):
        last = starts[-1] + window if starts else 0
        if last < length:
            starts.append(last)
    return starts
