"""JSON-lines access log for the serve layer.

One JSON object per line, one line per finished request.  The schema is
deliberately small and stable (tests assert it):

``ts``
    Wall-clock timestamp, ISO-8601 UTC with a ``Z`` suffix.  This is the
    one place the serve path reads the wall clock — log lines must be
    correlatable with external systems, so ``time.time`` is the right
    clock here (latencies elsewhere use ``perf_counter``).
``request_id``
    The request id echoed in ``X-Request-Id``.
``method`` / ``path``
    Request line fields.
``status``
    Response status code (integer).
``duration_ms``
    Request latency in milliseconds (``perf_counter``-based, float).
``bytes``
    Response body size in bytes.

Writes are line-buffered and serialized under a lock, so concurrent
executor threads never interleave partial lines.

Size-based rotation: with ``max_bytes`` set, a write that would push the
file past the limit first rotates ``path -> path.1 -> ... -> path.N``
(``backups`` rotations kept, oldest dropped), so a long-lived server's
log stays bounded without an external logrotate.
"""

from __future__ import annotations

import datetime
import json
import os
import threading
import time
from typing import Optional, TextIO

__all__ = ["AccessLog"]


class AccessLog:
    """Thread-safe JSON-lines access-log writer with size-based rotation.

    ``path`` may be a filesystem path (opened append, line-buffered) or
    an already-open text stream (test use: ``io.StringIO``; streams never
    rotate).  ``max_bytes`` enables rotation: when the next line would
    push the file past the limit, the file is renamed to ``path.1``
    (existing rotations shifting to ``.2`` … ``.backups``, the oldest
    unlinked) and a fresh file is opened.  Rotation happens *before* the
    write, so every line lands whole in exactly one file.  Closing is
    idempotent and only closes streams this writer opened itself.
    """

    def __init__(
        self,
        path,
        stream: Optional[TextIO] = None,
        *,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups}")
        self._lock = threading.Lock()
        self._path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        if stream is not None:
            self._stream = stream
            self._owns_stream = False
            self.max_bytes = None  # streams have no path to rotate
            self._nbytes = 0
        else:
            self._stream = self._open()
            self._owns_stream = True
            self._nbytes = os.path.getsize(path)

    def _open(self) -> TextIO:
        # repro-lint: disable=resource-hygiene -- handle lives for the writer's lifetime, closed in close()
        return open(self._path, "a", buffering=1, encoding="utf-8")

    def _rotate_locked(self) -> None:
        """Shift ``path -> .1 -> ... -> .backups`` and reopen fresh."""

        self._stream.close()
        oldest = f"{self._path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self._path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self._path}.{index + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._stream = self._open()
        self._nbytes = 0
        self.rotations += 1

    def log(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        nbytes: int,
    ) -> None:
        """Append one request record as a single JSON line."""

        # Wall clock on purpose: access-log lines are correlated with
        # clients and other services, not compared against span clocks.
        # repro-lint: disable=timing-discipline -- access-log timestamps must be wall-clock
        now = time.time()
        record = {
            "ts": _iso_utc(now),
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": int(status),
            "duration_ms": round(float(duration_ms), 3),
            "bytes": int(nbytes),
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if (
                self.max_bytes is not None
                and self._owns_stream
                and self._nbytes > 0
                and self._nbytes + len(line) > self.max_bytes
            ):
                self._rotate_locked()
            self._stream.write(line)
            self._nbytes += len(line)

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()


def _iso_utc(epoch_seconds: float) -> str:
    moment = datetime.datetime.fromtimestamp(
        epoch_seconds, tz=datetime.timezone.utc
    )
    return moment.isoformat(timespec="milliseconds").replace("+00:00", "Z")
