"""JSON-lines access log for the serve layer.

One JSON object per line, one line per finished request.  The schema is
deliberately small and stable (tests assert it):

``ts``
    Wall-clock timestamp, ISO-8601 UTC with a ``Z`` suffix.  This is the
    one place the serve path reads the wall clock — log lines must be
    correlatable with external systems, so ``time.time`` is the right
    clock here (latencies elsewhere use ``perf_counter``).
``request_id``
    The request id echoed in ``X-Request-Id``.
``method`` / ``path``
    Request line fields.
``status``
    Response status code (integer).
``duration_ms``
    Request latency in milliseconds (``perf_counter``-based, float).
``bytes``
    Response body size in bytes.

Writes are line-buffered and serialized under a lock, so concurrent
executor threads never interleave partial lines.
"""

from __future__ import annotations

import datetime
import json
import threading
import time
from typing import Optional, TextIO

__all__ = ["AccessLog"]


class AccessLog:
    """Thread-safe JSON-lines access-log writer.

    ``path`` may be a filesystem path (opened append, line-buffered) or
    an already-open text stream (test use: ``io.StringIO``).  Closing is
    idempotent and only closes streams this writer opened itself.
    """

    def __init__(self, path, stream: Optional[TextIO] = None) -> None:
        self._lock = threading.Lock()
        if stream is not None:
            self._stream = stream
            self._owns_stream = False
        else:
            # repro-lint: disable=resource-hygiene -- handle lives for the writer's lifetime, closed in close()
            self._stream = open(path, "a", buffering=1, encoding="utf-8")
            self._owns_stream = True

    def log(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        nbytes: int,
    ) -> None:
        """Append one request record as a single JSON line."""

        # Wall clock on purpose: access-log lines are correlated with
        # clients and other services, not compared against span clocks.
        # repro-lint: disable=timing-discipline -- access-log timestamps must be wall-clock
        now = time.time()
        record = {
            "ts": _iso_utc(now),
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": int(status),
            "duration_ms": round(float(duration_ms), 3),
            "bytes": int(nbytes),
        }
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()


def _iso_utc(epoch_seconds: float) -> str:
    moment = datetime.datetime.fromtimestamp(
        epoch_seconds, tz=datetime.timezone.utc
    )
    return moment.isoformat(timespec="milliseconds").replace("+00:00", "Z")
