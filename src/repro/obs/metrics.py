"""Unified metrics registry with Prometheus text exposition.

Before this layer the repo's counters were scattered: the experiment
cache kept its own hit/miss dict, the hot-chunk cache another, the store
counted decoded chunks on an attribute, and the serve gate tracked
active/peak concurrency in instance fields.  Each surfaced under its own
ad-hoc key names (``ArrayStore.info()``, serve ``stats``,
``CompressedVolume.cache_counters``) and none were scrapeable.

This module gives them one home:

* :class:`MetricsRegistry` — thread-safe counters, gauges and
  histograms, all name + sorted-label keyed.
* **Collectors** — modules that own live state (caches, gates) register
  a callback that publishes into the registry at render time, so the
  registry never needs to import the layers it observes.
* :func:`render_prometheus` — Prometheus text exposition (``# HELP`` /
  ``# TYPE``, ``_bucket{le=}`` / ``_sum`` / ``_count`` histograms)
  backing the serve layer's ``GET /metrics``.

Naming scheme (the "documented naming scheme" of the counter
unification): ``repro_<subsystem>_<quantity>_<unit-or-total>`` with
sources distinguished by labels, e.g.::

    repro_cache_hits_total{cache="experiment"}
    repro_cache_hits_total{cache="hot-chunk"}
    repro_store_chunks_decoded_total
    repro_serve_requests_total{route="chunk"}
    repro_serve_responses_total{class="5xx"}
    repro_serve_request_seconds_bucket{route="chunk",le="0.05"}

The process-wide :data:`REGISTRY` serves the library layers; the serve
layer builds one private registry per server so tests stay isolated.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "render_prometheus",
    "histogram_quantile",
    "DEFAULT_LATENCY_BUCKETS",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for request/stage latencies, in seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Histogram:
    __slots__ = ("buckets", "bucket_counts", "total", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram registry.

    Metric names follow ``repro_<subsystem>_<quantity>[_total]``; label
    maps distinguish sources (``{"cache": "experiment"}``).  ``help``
    text is remembered from the first touch of each name and emitted as
    ``# HELP`` in the exposition output.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelItems, float]] = {}
        self._gauges: Dict[str, Dict[LabelItems, float]] = {}
        self._histograms: Dict[str, Dict[LabelItems, _Histogram]] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- writing ---------------------------------------------------------
    def counter(
        self,
        name: str,
        value: float = 1.0,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> None:
        """Add ``value`` (default 1) to a monotonically increasing counter."""

        items = _label_items(labels)
        with self._lock:
            self._remember_help(name, help)
            series = self._counters.setdefault(name, {})
            series[items] = series.get(items, 0.0) + value

    def set_counter(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> None:
        """Publish an externally tracked cumulative total (collector use)."""

        items = _label_items(labels)
        with self._lock:
            self._remember_help(name, help)
            self._counters.setdefault(name, {})[items] = float(value)

    def gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> None:
        """Set a gauge to its current value."""

        items = _label_items(labels)
        with self._lock:
            self._remember_help(name, help)
            self._gauges.setdefault(name, {})[items] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        """Record one observation into a histogram series."""

        items = _label_items(labels)
        with self._lock:
            self._remember_help(name, help)
            bounds = self._buckets.setdefault(name, tuple(sorted(buckets)))
            series = self._histograms.setdefault(name, {})
            histogram = series.get(items)
            if histogram is None:
                histogram = series[items] = _Histogram(bounds)
            histogram.observe(float(value))

    def _remember_help(self, name: str, help: str) -> None:
        if help and name not in self._help:
            self._help[name] = help

    # -- collectors ------------------------------------------------------
    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a render-time callback that publishes live state.

        Modules owning caches/gates call this once at import or
        construction time; the callback runs on every :meth:`render` and
        on :meth:`snapshot`.  Duplicate registrations of the same
        callable are ignored (safe under repeated imports/instances).
        """

        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # -- reading ---------------------------------------------------------
    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """Current value of a counter or gauge series (``None`` if unset)."""

        items = _label_items(labels)
        with self._lock:
            for table in (self._counters, self._gauges):
                series = table.get(name)
                if series is not None and items in series:
                    return series[items]
        return None

    def snapshot(self, run_collectors: bool = True) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` map of counters and gauges."""

        if run_collectors:
            self._run_collectors()
        flat: Dict[str, float] = {}
        with self._lock:
            for table in (self._counters, self._gauges):
                for name, series in table.items():
                    for items, value in series.items():
                        flat[name + _format_labels(items)] = value
        return flat

    def histogram_snapshot(
        self, run_collectors: bool = True
    ) -> Dict[str, Dict]:
        """Flat ``name{labels} -> histogram state`` map.

        Each value carries ``buckets`` (``(upper bound, cumulative
        count)`` pairs, ascending, finite bounds only), ``count`` and
        ``sum`` — exactly what :func:`histogram_quantile` and the
        metrics-history layer need to derive quantiles and rates without
        re-parsing exposition text.
        """

        if run_collectors:
            self._run_collectors()
        flat: Dict[str, Dict] = {}
        with self._lock:
            for name, series in self._histograms.items():
                for items, histogram in series.items():
                    cumulative = 0
                    buckets = []
                    for bound, count in zip(
                        histogram.buckets, histogram.bucket_counts
                    ):
                        cumulative += count
                        buckets.append((bound, cumulative))
                    flat[name + _format_labels(items)] = {
                        "buckets": buckets,
                        "count": histogram.count,
                        "sum": histogram.total,
                    }
        return flat

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of everything."""

        self._run_collectors()
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                self._render_simple(lines, name, self._counters[name], "counter")
            for name in sorted(self._gauges):
                self._render_simple(lines, name, self._gauges[name], "gauge")
            for name in sorted(self._histograms):
                self._render_histogram(lines, name, self._histograms[name])
        return "\n".join(lines) + ("\n" if lines else "")

    def _render_simple(
        self,
        lines: List[str],
        name: str,
        series: Dict[LabelItems, float],
        kind: str,
    ) -> None:
        help_text = self._help.get(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for items in sorted(series):
            lines.append(
                f"{name}{_format_labels(items)} {_format_value(series[items])}"
            )

    def _render_histogram(
        self, lines: List[str], name: str, series: Dict[LabelItems, _Histogram]
    ) -> None:
        help_text = self._help.get(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        for items in sorted(series):
            histogram = series[items]
            cumulative = 0
            for bound, count in zip(histogram.buckets, histogram.bucket_counts):
                cumulative += count
                bucket_items = items + (("le", _format_value(bound)),)
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_items)} {cumulative}"
                )
            inf_items = items + (("le", "+Inf"),)
            lines.append(
                f"{name}_bucket{_format_labels(inf_items)} {histogram.count}"
            )
            lines.append(
                f"{name}_sum{_format_labels(items)} "
                f"{_format_value(histogram.total)}"
            )
            lines.append(f"{name}_count{_format_labels(items)} {histogram.count}")

    def reset(self) -> None:
        """Drop all recorded series (collectors stay registered). Test use."""

        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide registry used by the library layers (pipelines, store).
REGISTRY = MetricsRegistry()


def render_prometheus(
    registries: Optional[Iterable[MetricsRegistry]] = None,
) -> str:
    """Render one or more registries as a single exposition document.

    Default is the process-wide :data:`REGISTRY`.  The serve layer passes
    ``(server_registry, REGISTRY)`` so ``GET /metrics`` shows both the
    per-server request metrics and the library-layer cache/store metrics;
    the two use disjoint metric names, so concatenation is valid
    exposition output.
    """

    if registries is None:
        registries = (REGISTRY,)
    parts = [registry.render() for registry in registries]
    return "".join(part for part in parts if part)


def histogram_quantile(
    buckets: Sequence[Tuple[float, float]], count: float, q: float
) -> float:
    """Estimate the ``q``-quantile from cumulative histogram buckets.

    ``buckets`` is ascending ``(upper bound, cumulative count)`` pairs
    (finite bounds; observations above the last bound live only in
    ``count``).  Linear interpolation within the containing bucket —
    the same estimator as PromQL's ``histogram_quantile`` — so the
    result is exact only at bucket boundaries, which is the resolution
    histograms have anyway.  Returns NaN for an empty histogram; values
    beyond the last finite bound clamp to it (the +Inf bucket has no
    upper edge to interpolate toward).
    """

    if count <= 0 or not 0.0 <= q <= 1.0:
        return float("nan")
    rank = q * count
    previous_bound = 0.0
    previous_cum = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = bound
        previous_cum = cumulative
    return buckets[-1][0] if buckets else float("nan")


def publish_cache_counters(
    registry: MetricsRegistry, cache_label: str, counters: Mapping[str, float]
) -> None:
    """Publish a ``counters()``-style dict under the unified cache names.

    Understands the keys the repo's caches already expose (``hits``,
    ``misses``, ``evictions``, ``entries``, ``nbytes``, ``max_nbytes``,
    ``coalesced``) and ignores anything else, so every cache keeps its
    legacy dict while reporting through one scheme.
    """

    as_counter = {
        "hits": "repro_cache_hits_total",
        "misses": "repro_cache_misses_total",
        "evictions": "repro_cache_evictions_total",
        "coalesced": "repro_cache_coalesced_total",
    }
    as_gauge = {
        "entries": "repro_cache_entries",
        "nbytes": "repro_cache_nbytes",
        "max_nbytes": "repro_cache_max_nbytes",
    }
    labels = {"cache": cache_label}
    for key, name in as_counter.items():
        if key in counters:
            registry.set_counter(
                name,
                counters[key],
                labels,
                help=f"Cumulative cache {key} by cache name.",
            )
    for key, name in as_gauge.items():
        if key in counters:
            registry.gauge(
                name,
                counters[key],
                labels,
                help=f"Current cache {key} by cache name.",
            )
