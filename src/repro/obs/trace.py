"""Nested-span tracer: where compression time actually goes.

The pipelines in this repository are deep — a ``compress_volume`` call
fans out over wavefronts, process-pool workers, per-tile codecs and
per-stage array passes — and a single end-to-end wall clock cannot say
whether time went to prediction, quantization, the entropy backend, or
pool overhead.  This module supplies the span layer every hot path is
instrumented with:

* **Context-manager / decorator API** over :func:`time.perf_counter`:
  ``with trace.span("codec.encode.predict"): ...`` or
  ``@trace.traced("store.compact")``.  Spans nest via a
  :mod:`contextvars`-based stack, so executor threads *and* concurrently
  interleaved asyncio tasks (serve requests) each build their own
  correct subtree.
* **Zero-cost when disabled** (the default): the module-level
  :func:`span` checks one global and returns a shared no-op context
  manager — no allocation, no clock read.  The benchmark-trend CI gates
  this overhead at <= 2% of the smoke cells.
* **Worker-boundary survival**: a worker process captures its own spans
  with :func:`worker_capture` / :meth:`Tracer.export_tuples` (plain
  picklable tuples, versioned), and the submitting side re-parents them
  under its current span with :meth:`Tracer.adopt`.  On platforms where
  ``perf_counter`` is a shared monotonic clock (Linux:
  ``CLOCK_MONOTONIC``) the worker timestamps are kept as measured; when
  the clocks are visibly unrelated the whole capture is rebased onto
  the submit time, so the tree stays well-formed everywhere.
* **Chrome trace-event export** (:meth:`Tracer.to_chrome_events` /
  :meth:`Tracer.write_chrome_trace`): ``ph: "X"`` complete events with
  microsecond timestamps, one synthetic thread lane per worker capture,
  openable directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import contextvars
import functools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SPAN_TUPLE_VERSION",
    "Span",
    "Tracer",
    "span",
    "traced",
    "tracing_enabled",
    "install_tracer",
    "active_tracer",
    "request_tracer",
    "use_request_tracer",
    "worker_capture",
]

#: Version tag leading every exported span tuple; bump on layout change.
SPAN_TUPLE_VERSION = 1

#: Thread label given to spans recorded outside any worker capture.
MAIN_LANE = "main"


@dataclass
class Span:
    """One finished span: identity, position in the tree, and its clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float  # perf_counter seconds
    duration: float  # seconds
    lane: str  # display lane (thread/worker) the span ran on
    args: Dict[str, object] = field(default_factory=dict)

    def to_tuple(self) -> Tuple:
        """Picklable wire form (crosses the parallel worker boundary)."""

        return (
            SPAN_TUPLE_VERSION,
            self.span_id,
            self.parent_id,
            self.name,
            self.category,
            self.start,
            self.duration,
            self.lane,
            tuple(sorted(self.args.items())),
        )

    @staticmethod
    def from_tuple(raw: Tuple) -> "Span":
        if not raw or raw[0] != SPAN_TUPLE_VERSION:
            raise ValueError(f"unsupported span tuple {raw!r}")
        _, span_id, parent_id, name, category, start, duration, lane, args = raw
        return Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            start=start,
            duration=duration,
            lane=lane,
            args=dict(args),
        )


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def add(self, **args) -> None:
        """Discard span arguments (mirrors :class:`_LiveSpan.add`)."""


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_record", "_token")

    def __init__(self, tracer: "Tracer", record: Span) -> None:
        self._tracer = tracer
        self._record = record
        self._token = None

    def add(self, **args) -> None:
        """Attach key/value arguments to the span (shown in Perfetto)."""

        self._record.args.update(args)

    def __enter__(self) -> "_LiveSpan":
        record = self._record
        tracer = self._tracer
        record.parent_id = tracer.current_span_id()
        record.lane = _current_lane()
        stack = tracer._stack_var.get()
        self._token = tracer._stack_var.set(stack + (record,))
        record.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        record = self._record
        record.duration = time.perf_counter() - record.start
        if self._token is not None:
            try:
                self._tracer._stack_var.reset(self._token)
            except ValueError:  # pragma: no cover — exited in another context
                pass
        self._tracer._record_finished(record)
        return False


def _current_lane() -> str:
    thread = threading.current_thread()
    return MAIN_LANE if thread is threading.main_thread() else thread.name


class Tracer:
    """Collects spans from any number of threads and tasks into one trace.

    The open-span stack lives in a per-tracer :class:`contextvars.ContextVar`
    holding an immutable tuple: every thread nests its own spans, and —
    because asyncio copies the context per task — concurrently interleaved
    coroutines (e.g. the serve layer's request handlers) each build their
    own correct subtree instead of mis-parenting under whichever span
    happens to be open on the loop thread.  The finished list is shared
    under a lock.  A tracer is *installed* process-wide with
    :func:`install_tracer`, after which the module-level :func:`span`
    records into it from anywhere.
    """

    def __init__(self, process_label: str = "repro") -> None:
        self.process_label = process_label
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._stack_var: "contextvars.ContextVar[Tuple[Span, ...]]" = (
            contextvars.ContextVar(f"repro_span_stack_{id(self):x}", default=())
        )
        self._next_id = 1
        self.created_at = time.perf_counter()

    # -- recording -------------------------------------------------------
    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def current_span_id(self) -> Optional[int]:
        stack = self._stack_var.get()
        return stack[-1].span_id if stack else None

    def span(self, name: str, category: str = "", **args) -> _LiveSpan:
        """Open a nested span; use as ``with tracer.span("name"): ...``.

        Parent, lane and start time are resolved at ``__enter__`` time, so
        a ``_LiveSpan`` can be created ahead of the region it measures.
        """

        record = Span(
            span_id=self._allocate_id(),
            parent_id=None,
            name=name,
            category=category,
            start=0.0,
            duration=0.0,
            lane=MAIN_LANE,
            args=dict(args) if args else {},
        )
        return _LiveSpan(self, record)

    def _record_finished(self, record: Span) -> None:
        with self._lock:
            self._finished.append(record)

    # -- inspection ------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of the finished spans (open spans are not included)."""

        with self._lock:
            return list(self._finished)

    def span_tree(self) -> Dict[Optional[int], List[Span]]:
        """Finished spans grouped by parent id (``None`` = roots)."""

        tree: Dict[Optional[int], List[Span]] = {}
        for record in self.spans():
            tree.setdefault(record.parent_id, []).append(record)
        for children in tree.values():
            children.sort(key=lambda s: s.start)
        return tree

    # -- worker boundary -------------------------------------------------
    def export_tuples(self) -> List[Tuple]:
        """All finished spans as picklable tuples (worker return value)."""

        return [record.to_tuple() for record in self.spans()]

    def adopt(
        self,
        tuples: Iterable[Tuple],
        *,
        lane: str,
        submit_time: Optional[float] = None,
        parent_id: Optional[int] = None,
    ) -> int:
        """Merge spans captured elsewhere, re-parented under this tracer.

        ``tuples`` is a worker's :meth:`export_tuples` payload.  Root
        spans of the capture are re-parented under ``parent_id`` (default:
        the caller's current open span); every span is moved onto the
        ``lane`` display lane and gets fresh ids.  When ``submit_time``
        is given and the capture's clock is visibly unrelated to ours
        (its earliest timestamp predates the submit time, i.e. the two
        ``perf_counter`` epochs differ), the whole capture is shifted so
        it starts at the submit time; otherwise timestamps are trusted
        as-is (on Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, shared
        across processes).  Returns the number of spans adopted.
        """

        records = [Span.from_tuple(raw) for raw in tuples]
        if not records:
            return 0
        if parent_id is None:
            parent_id = self.current_span_id()
        shift = 0.0
        if submit_time is not None:
            earliest = min(record.start for record in records)
            if earliest < submit_time:
                shift = submit_time - earliest
        id_map: Dict[int, int] = {}
        for record in records:
            id_map[record.span_id] = self._allocate_id()
        adopted: List[Span] = []
        for record in records:
            adopted.append(
                Span(
                    span_id=id_map[record.span_id],
                    parent_id=(
                        id_map[record.parent_id]
                        if record.parent_id in id_map
                        else parent_id
                    ),
                    name=record.name,
                    category=record.category,
                    start=record.start + shift,
                    duration=record.duration,
                    lane=lane,
                    args=record.args,
                )
            )
        with self._lock:
            self._finished.extend(adopted)
        return len(adopted)

    # -- export ----------------------------------------------------------
    def to_chrome_events(self) -> List[Dict]:
        """Chrome trace-event list (``ph: "X"`` complete events).

        Lanes become synthetic thread ids with ``thread_name`` metadata
        so Perfetto shows one row per worker capture; timestamps are
        microseconds relative to the tracer's creation.
        """

        lanes: Dict[str, int] = {}
        events: List[Dict] = []
        for record in sorted(self.spans(), key=lambda s: s.start):
            tid = lanes.setdefault(record.lane, len(lanes) + 1)
            event = {
                "name": record.name,
                "cat": record.category or "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": (record.start - self.created_at) * 1e6,
                "dur": record.duration * 1e6,
            }
            if record.args:
                event["args"] = {k: _json_safe(v) for k, v in record.args.items()}
            events.append(event)
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": self.process_label},
            }
        ]
        for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        return metadata + events

    def write_chrome_trace(self, path: str) -> None:
        """Write ``{"traceEvents": [...]}`` JSON for Perfetto."""

        payload = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# module-level API: one global active tracer, no-op when absent
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None

#: Request-scoped tracer: set per asyncio task (serve's slow-request
#: capture) via :func:`use_request_tracer`.  Takes priority over the
#: process-global tracer inside its context, so a request's spans land in
#: that request's capture even when a global tracer is also installed.
_REQUEST_TRACER: "contextvars.ContextVar[Optional[Tracer]]" = (
    contextvars.ContextVar("repro_request_tracer", default=None)
)


def tracing_enabled() -> bool:
    """Whether a tracer is installed (i.e. spans are being recorded)."""

    return _ACTIVE is not None or _REQUEST_TRACER.get() is not None


def active_tracer() -> Optional[Tracer]:
    """The installed process-global tracer, or ``None``."""

    return _ACTIVE


def request_tracer() -> Optional[Tracer]:
    """The tracer bound to the current context, or ``None``."""

    return _REQUEST_TRACER.get()


class use_request_tracer:
    """Bind ``tracer`` to the current context for a ``with`` block.

    Context-local (a :mod:`contextvars` var, copied per asyncio task and
    propagated by ``contextvars.copy_context().run`` across executor
    hops), so concurrent serve requests each record into their own
    tracer without touching the process-global one.
    """

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[Tracer]:
        self._token = _REQUEST_TRACER.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _REQUEST_TRACER.reset(self._token)
        return False


def span(name: str, category: str = "", **args):
    """Record a span on the bound tracer; no-op when tracing is off.

    The request-scoped tracer (if the current context has one) wins over
    the process-global tracer, so serve requests capture their own
    subtree.  The fully disabled path is one global load, one contextvar
    load and one identity return — cheap enough for per-tile and
    per-request call sites (per-element loops should still never be
    instrumented).
    """

    tracer = _REQUEST_TRACER.get()
    if tracer is None:
        tracer = _ACTIVE
        if tracer is None:
            return _NOOP
    return tracer.span(name, category, **args)


def traced(name: str, category: str = "") -> Callable:
    """Decorator form: wrap every call of the function in a span."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*fn_args, **fn_kwargs):
            tracer = _REQUEST_TRACER.get() or _ACTIVE
            if tracer is None:
                return fn(*fn_args, **fn_kwargs)
            with tracer.span(name, category):
                return fn(*fn_args, **fn_kwargs)

        return wrapper

    return decorate


class install_tracer:
    """Install ``tracer`` as the process-wide active tracer.

    Context manager (restores the previous tracer on exit) and plain
    call (``install_tracer(tracer)`` leaves it installed; pass ``None``
    to uninstall).  Installation is process-global: every thread and
    every instrumented layer records into the same tracer.
    """

    def __init__(self, tracer: Optional[Tracer]) -> None:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = tracer

    def __enter__(self) -> Optional[Tracer]:
        return _ACTIVE

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


class worker_capture:
    """Worker-side capture: a fresh tracer for the duration of one task.

    Usage in a worker function::

        with worker_capture() as tracer:
            ... instrumented work ...
        return result, tracer.export_tuples()

    Works identically in a pool process (fresh interpreter, no tracer
    installed) and on the serial ``workers == 1`` path (the caller's
    tracer is stashed and restored, and the capture's spans are adopted
    back explicitly, so nothing records twice).
    """

    def __init__(self, process_label: str = "worker") -> None:
        self.tracer = Tracer(process_label)
        self._install: Optional[install_tracer] = None

    def __enter__(self) -> Tracer:
        self._install = install_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info) -> bool:
        if self._install is not None:
            self._install.__exit__(*exc_info)
        return False
