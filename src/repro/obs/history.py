"""Metrics history: a bounded ring buffer of registry snapshots.

``GET /metrics`` is a point-in-time scrape; without a scrape collector
running, "why was the server slow five minutes ago" has no answer.  This
module keeps the answer in-process: a background ticker snapshots one or
more :class:`~repro.obs.metrics.MetricsRegistry` instances on a fixed
interval into a ``deque(maxlen=capacity)`` — bounded memory by
construction, always on, and cheap (one collector pass per tick, a few
hundred series at most).

At query time (``GET /debug/vars?window=N``):

* **counters** are reported as per-second *rates* between consecutive
  snapshots (a cumulative total is unreadable on a sparkline);
* **gauges** are reported as sampled values;
* **histograms** are reported as windowed quantiles (p50/p90/p99 via
  :func:`~repro.obs.metrics.histogram_quantile` over the *delta* of the
  cumulative buckets between ticks — the latency of requests handled in
  that tick, not since process start) plus an observation rate.

Timestamps: rate math uses ``perf_counter`` deltas; each point also
carries a wall-clock epoch for display, the same sanctioned exception
the access log documents.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, histogram_quantile

__all__ = ["MetricsHistory", "HistoryPoint"]

#: Quantiles reported for each histogram series.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class HistoryPoint:
    """One snapshot tick: raw cumulative values plus its clocks."""

    __slots__ = ("mono", "epoch", "counters", "gauges", "histograms")

    def __init__(
        self,
        mono: float,
        epoch: float,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        histograms: Dict[str, Dict],
    ) -> None:
        self.mono = mono
        self.epoch = epoch
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms


class MetricsHistory:
    """Snapshot ``registries`` every ``interval`` seconds, keep ``capacity``.

    The ticker is a daemon thread (:meth:`start` / :meth:`stop`); tests
    and the serve layer may also drive :meth:`sample_now` directly for
    deterministic points.  All reads go through :meth:`series`, which
    converts the retained raw snapshots into rate/value/quantile series.
    """

    def __init__(
        self,
        registries: Iterable[MetricsRegistry],
        *,
        interval: float = 5.0,
        capacity: int = 720,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        if not interval > 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.registries = tuple(registries)
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.quantiles = tuple(quantiles)
        self._points: Deque[HistoryPoint] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "MetricsHistory":
        if self._thread is not None:
            raise RuntimeError("history ticker already started")
        self.sample_now()  # a queryable point exists immediately
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-history", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_now()

    # -- recording -------------------------------------------------------
    def sample_now(self) -> HistoryPoint:
        """Take one snapshot of every registry and append it to the ring."""

        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        for registry in self.registries:
            snapshot = registry.snapshot()
            # snapshot() flattens counters and gauges together; split by
            # consulting the registry's typed tables via histogram_
            # snapshot for histograms and value() semantics for the rest.
            counters_gauges = snapshot
            typed = _typed_names(registry)
            for key, value in counters_gauges.items():
                name = key.split("{", 1)[0]
                if name in typed["gauges"]:
                    gauges[key] = value
                else:
                    counters[key] = value
            histograms.update(registry.histogram_snapshot(run_collectors=False))
        # repro-lint: disable=timing-discipline -- display timestamp for history points, not a duration
        epoch = time.time()
        point = HistoryPoint(
            mono=time.perf_counter(),
            epoch=epoch,
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )
        with self._lock:
            self._points.append(point)
        return point

    def points(self) -> List[HistoryPoint]:
        with self._lock:
            return list(self._points)

    def ensure_fresh(self, max_age: Optional[float] = None) -> None:
        """Sample now if the newest point is older than ``max_age``.

        Default ``max_age`` is the ticker interval, so an on-demand query
        (``GET /debug/vars``) always sees current data while adding at
        most one extra point per interval to the ring.
        """

        limit = self.interval if max_age is None else max_age
        retained = self.points()
        if not retained or time.perf_counter() - retained[-1].mono >= limit:
            self.sample_now()

    # -- querying --------------------------------------------------------
    def series(self, window: Optional[float] = None) -> Dict:
        """Rate/value/quantile series for the trailing ``window`` seconds.

        Returns a JSON-safe document::

            {"interval": 5.0, "capacity": 720, "points": [
               {"age": 12.3, "ts": 1690000000.0,
                "rates": {counter-series: per-second rate},
                "gauges": {gauge-series: value},
                "quantiles": {histogram-series: {"p50": s, ..., "rate": n/s}}},
               ...]}

        Each point's rates are deltas against the *previous retained
        point* (so the first point inside the window still has a rate);
        the oldest point overall has none and is reported with empty
        rates.  ``age`` is seconds before the query.
        """

        now = time.perf_counter()
        retained = self.points()
        out_points: List[Dict] = []
        previous: Optional[HistoryPoint] = None
        for point in retained:
            age = now - point.mono
            if window is not None and age > window:
                previous = point
                continue
            out_points.append(self._render_point(point, previous, age))
            previous = point
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "window": window,
            "quantiles": list(self.quantiles),
            "points": out_points,
        }

    def _render_point(
        self,
        point: HistoryPoint,
        previous: Optional[HistoryPoint],
        age: float,
    ) -> Dict:
        rates: Dict[str, float] = {}
        quantiles: Dict[str, Dict[str, float]] = {}
        dt = point.mono - previous.mono if previous is not None else 0.0
        if previous is not None and dt > 0:
            for key, value in point.counters.items():
                delta = value - previous.counters.get(key, 0.0)
                # A counter reset (server restart inside the ring) shows
                # as a negative delta; clamp instead of spiking negative.
                rates[key] = max(0.0, delta) / dt
            for key, hist in point.histograms.items():
                quantiles[key] = self._histogram_point(
                    hist, previous.histograms.get(key), dt
                )
        else:
            for key, hist in point.histograms.items():
                quantiles[key] = self._histogram_point(hist, None, 0.0)
        return {
            "age": round(age, 3),
            "ts": point.epoch,
            "rates": rates,
            "gauges": dict(point.gauges),
            "quantiles": quantiles,
        }

    def _histogram_point(
        self, hist: Dict, previous: Optional[Dict], dt: float
    ) -> Dict[str, float]:
        buckets = hist["buckets"]
        count = hist["count"]
        if previous is not None:
            prev_cum = dict(previous["buckets"])
            deltas = [
                (bound, cum - prev_cum.get(bound, 0.0)) for bound, cum in buckets
            ]
            delta_count = count - previous["count"]
            if delta_count > 0 and all(c >= 0 for _, c in deltas):
                buckets, count = deltas, delta_count
            else:
                # Nothing observed this tick (or a reset): fall through
                # to the cumulative distribution rather than reporting
                # NaN quantiles for an idle interval.
                delta_count = 0
        out = {
            f"p{int(q * 100)}": histogram_quantile(buckets, count, q)
            for q in self.quantiles
        }
        if previous is not None and dt > 0:
            out["rate"] = max(0.0, hist["count"] - previous["count"]) / dt
        else:
            out["rate"] = 0.0
        out["count"] = float(hist["count"])
        return out


def _typed_names(registry: MetricsRegistry) -> Dict[str, set]:
    """Names by kind, read off the registry's internal tables.

    The registry deliberately exposes a flat snapshot; history is the
    one consumer that must distinguish counters (rates) from gauges
    (values), so it peeks at the typed tables under the registry lock.
    """

    with registry._lock:
        return {
            "counters": set(registry._counters),
            "gauges": set(registry._gauges),
        }
