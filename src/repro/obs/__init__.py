"""Observability layer: span tracing and a unified metrics registry.

The first layer that sees the whole stack at once.  Everything here is
stdlib-only and designed to cost nothing when switched off:

* :mod:`repro.obs.trace` — a nested-span tracer (context-manager /
  decorator API over :func:`time.perf_counter`) whose spans survive the
  :mod:`repro.utils.parallel` worker boundary as picklable tuples and
  re-parent under the submitting span; exportable as Chrome trace-event
  JSON so Perfetto / ``chrome://tracing`` can open a whole
  ``compress_volume`` wavefront.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms that unifies the repo's scattered ad-hoc counters
  (experiment/volume/store caches, hot-chunk cache, serve gate), with a
  Prometheus text-exposition renderer backing ``GET /metrics``.
* :mod:`repro.obs.accesslog` — the JSON-lines access log the serve layer
  writes per request.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY, MetricsRegistry, render_prometheus
from repro.obs.trace import Tracer, install_tracer, span, tracing_enabled

__all__ = [
    "Tracer",
    "span",
    "install_tracer",
    "tracing_enabled",
    "MetricsRegistry",
    "REGISTRY",
    "render_prometheus",
]
