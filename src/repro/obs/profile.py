"""Sampling profiler: where wall time goes, without recompiling anything.

The tracer (:mod:`repro.obs.trace`) answers "how long did the stages we
*predicted* would matter take"; this module answers the complementary
question — "where does the time actually go" — by sampling every
thread's Python stack on a fixed cadence.  That makes it safe to leave
running against production-sized work: the cost is one
``sys._current_frames()`` walk per tick (a few hundred microseconds at
the default 99 Hz, gated by the ``profiler-overhead`` benchmark cell),
independent of how hot the code under it is, and nothing in the profiled
code needs instrumentation.

* :class:`SamplingProfiler` — a background daemon thread over
  :func:`sys._current_frames`, thread-aware (each OS thread accumulates
  its own stacks, keyed by thread name), with a configurable rate.
  Frames are keyed by ``(function, file, first line)`` so every call
  site of a function aggregates into one node.
* **Collapsed-stack export** (:meth:`SamplingProfiler.collapsed`) — the
  ``frame;frame;frame count`` text format every flamegraph tool eats.
* **Speedscope export** (:meth:`SamplingProfiler.speedscope`) — the
  JSON file format of https://www.speedscope.app (one ``sampled``
  profile per thread, weights in seconds), which renders time-ordered,
  left-heavy and sandwich views directly in a browser.

Entry points: ``repro compress --profile-out prof.json``, the
``repro profile -- <repro subcommand ...>`` wrapper, and the server's
on-demand ``GET /debug/profile?seconds=N``.

The profiler samples at 99 Hz by default (not 100): a prime-ish rate
avoids lockstep with periodic work such as the metrics-history ticker,
which at a round 100 Hz could alias into systematically over- or
under-sampled frames.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_HZ",
    "FrameKey",
    "SamplingProfiler",
    "profile_for",
]

#: Default sampling rate in samples per second.
DEFAULT_HZ = 99.0

#: One stack frame: (function name, source file, first line of the def).
FrameKey = Tuple[str, str, int]


class SamplingProfiler:
    """Sample every thread's Python stack ``hz`` times per second.

    Use as a context manager (``with SamplingProfiler() as prof: ...``)
    or with explicit :meth:`start` / :meth:`stop`.  Aggregated stacks
    survive ``stop``; a profiler instance is single-shot (make a new one
    per run — restarting would blur two time windows into one profile).
    """

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if not hz > 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        # lane (thread name) -> stack (root-first frame tuple) -> samples
        self._counts: Dict[str, Dict[Tuple[FrameKey, ...], int]] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._elapsed: float = 0.0
        self.sample_count = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started (single-shot)")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join()
        if self._started_at is not None:
            self._elapsed = time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    @property
    def elapsed(self) -> float:
        """Profiled wall time in seconds (running total while active)."""

        if self._started_at is None:
            return 0.0
        if self._thread is not None and self._thread.is_alive():
            return time.perf_counter() - self._started_at
        return self._elapsed

    # -- sampling --------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        # Event.wait as the cadence: no drift correction needed at the
        # accuracy flamegraphs care about, and it wakes immediately on
        # stop() instead of sleeping out the tick.
        while not self._stop_event.wait(self.interval):
            self._sample_once(own_id)

    def _sample_once(self, own_id: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        self.sample_count += 1
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack: List[FrameKey] = []
                while frame is not None:
                    code = frame.f_code
                    stack.append(
                        (code.co_name, code.co_filename, code.co_firstlineno)
                    )
                    frame = frame.f_back
                stack.reverse()
                lane = names.get(thread_id, f"thread-{thread_id}")
                per_lane = self._counts.setdefault(lane, {})
                key = tuple(stack)
                per_lane[key] = per_lane.get(key, 0) + 1

    # -- aggregated views ------------------------------------------------
    def stacks(self) -> Dict[str, Dict[Tuple[FrameKey, ...], int]]:
        """Snapshot of ``{thread name: {root-first stack: samples}}``."""

        with self._lock:
            return {lane: dict(counts) for lane, counts in self._counts.items()}

    def hot_functions(self, top: int = 10) -> List[Tuple[str, int, int]]:
        """``(label, self samples, total samples)`` rows, hottest first.

        ``self`` counts samples where the function was on top of a
        stack; ``total`` counts samples where it appeared anywhere
        (inclusive time).  Sorted by self samples — the flame tips.
        """

        self_counts: Dict[FrameKey, int] = {}
        total_counts: Dict[FrameKey, int] = {}
        for counts in self.stacks().values():
            for stack, n in counts.items():
                if not stack:
                    continue
                leaf = stack[-1]
                self_counts[leaf] = self_counts.get(leaf, 0) + n
                for key in set(stack):
                    total_counts[key] = total_counts.get(key, 0) + n
        rows = [
            (_frame_label(key), self_counts.get(key, 0), total)
            for key, total in total_counts.items()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows[:top]

    # -- exports ---------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: one ``thread;frame;...;frame count`` line."""

        lines: List[str] = []
        snapshot = self.stacks()
        for lane in sorted(snapshot):
            for stack, n in sorted(snapshot[lane].items()):
                frames = ";".join(_frame_label(key) for key in stack)
                lines.append(f"{lane};{frames} {n}")
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> Dict:
        """The profile as a speedscope JSON document (one lane per thread).

        ``sampled``-type profiles with second weights: each distinct
        stack is emitted once with weight ``samples / hz`` — speedscope
        treats samples as unordered weight, so aggregation loses nothing
        the flame views use.
        """

        frame_index: Dict[FrameKey, int] = {}
        frames: List[Dict] = []

        def index_of(key: FrameKey) -> int:
            idx = frame_index.get(key)
            if idx is None:
                idx = frame_index[key] = len(frames)
                frames.append(
                    {"name": key[0], "file": key[1], "line": key[2]}
                )
            return idx

        profiles = []
        snapshot = self.stacks()
        for lane in sorted(snapshot):
            counts = snapshot[lane]
            samples: List[List[int]] = []
            weights: List[float] = []
            lane_total = 0.0
            for stack, n in sorted(counts.items()):
                samples.append([index_of(key) for key in stack])
                weight = n / self.hz
                weights.append(weight)
                lane_total += weight
            profiles.append(
                {
                    "type": "sampled",
                    "name": lane,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": lane_total,
                    "samples": samples,
                    "weights": weights,
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": profiles,
            "name": name,
            "exporter": "repro-sampling-profiler",
            "repro": {
                "hz": self.hz,
                "samples": self.sample_count,
                "elapsed_seconds": self.elapsed,
            },
        }

    def write_speedscope(self, path: str, name: str = "repro profile") -> None:
        """Write the speedscope JSON document to ``path``."""

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.speedscope(name), handle)
            handle.write("\n")


def profile_for(seconds: float, hz: float = DEFAULT_HZ) -> SamplingProfiler:
    """Blocking convenience: sample for ``seconds``, return the profiler.

    Used by the CLI paths; the server's on-demand endpoint drives
    :meth:`~SamplingProfiler.start` / ``stop`` itself around an
    ``asyncio.sleep`` so the event loop never blocks.
    """

    if not seconds > 0:
        raise ValueError(f"profile duration must be positive, got {seconds!r}")
    profiler = SamplingProfiler(hz=hz)
    profiler.start()
    # This helper runs on a plain (non-async) CLI path; the sampling
    # thread does the work while we block here.
    time.sleep(seconds)
    return profiler.stop()


def _frame_label(key: FrameKey) -> str:
    name, filename, line = key
    return f"{name} ({os.path.basename(filename)}:{line})"
