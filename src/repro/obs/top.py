"""``repro top``: parse ``/metrics`` scrapes and render a terminal view.

The CLI polls a server's Prometheus endpoint on an interval and redraws
one screen of the numbers an operator actually watches: request rate and
latency quantiles per route, gate occupancy, cache hit rates.  This
module holds the pure parts — a minimal exposition-text parser and the
frame renderer — so they are unit-testable without a server or a
terminal; the polling loop (network, sleep, ANSI clear) lives in
:mod:`repro.cli`.

The parser understands exactly what :func:`repro.obs.metrics.render_prometheus`
emits (``# TYPE`` lines, ``name{labels} value`` samples, histogram
``_bucket``/``_sum``/``_count`` suffixes) — it is not a general
exposition parser and does not try to be.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import histogram_quantile

__all__ = ["Scrape", "parse_prometheus", "render_frame"]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[A-Za-z_][A-Za-z0-9_]*)="(?P<value>[^"]*)"')


class Scrape:
    """One parsed exposition document: simple samples and histograms."""

    def __init__(self) -> None:
        #: ``name{labels} -> value`` for counters and gauges.
        self.samples: Dict[str, float] = {}
        #: ``name{labels} -> {"buckets": [(bound, cum)], "count", "sum"}``
        #: for histograms, finite bounds only (``+Inf`` folds into count).
        self.histograms: Dict[str, Dict] = {}

    def value(self, key: str, default: float = 0.0) -> float:
        return self.samples.get(key, default)

    def quantile(self, key: str, q: float) -> float:
        hist = self.histograms.get(key)
        if hist is None:
            return float("nan")
        return histogram_quantile(hist["buckets"], hist["count"], q)


def parse_prometheus(text: str) -> Scrape:
    """Parse exposition text into a :class:`Scrape`.

    Histogram series are reassembled from their ``_bucket``/``_sum``/
    ``_count`` samples: the ``le`` label is stripped off bucket keys and
    turned back into the ``(bound, cumulative)`` list.
    """

    histogram_names = set()
    for line in text.splitlines():
        if line.startswith("# TYPE ") and line.rstrip().endswith(" histogram"):
            histogram_names.add(line.split()[2])

    scrape = Scrape()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        name = match.group("name")
        labels = dict(
            (m.group("key"), m.group("value"))
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        )
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        base, part = _histogram_part(name, histogram_names)
        if base is None:
            scrape.samples[_series_key(name, labels)] = value
            continue
        le = labels.pop("le", None)
        key = _series_key(base, labels)
        hist = scrape.histograms.setdefault(
            key, {"buckets": [], "count": 0.0, "sum": 0.0}
        )
        if part == "bucket":
            if le is not None and le != "+Inf":
                hist["buckets"].append((float(le), value))
        elif part == "count":
            hist["count"] = value
        elif part == "sum":
            hist["sum"] = value
    for hist in scrape.histograms.values():
        hist["buckets"].sort(key=lambda pair: pair[0])
    return scrape


def _histogram_part(
    name: str, histogram_names: set
) -> Tuple[Optional[str], Optional[str]]:
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix) and name[: -len(suffix)] in histogram_names:
            return name[: -len(suffix)], suffix[1:]
    return None, None


def _series_key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return name + "{" + body + "}"


def render_frame(
    scrape: Scrape,
    previous: Optional[Scrape] = None,
    dt: float = 0.0,
    title: str = "repro top",
) -> str:
    """One frame of the ``repro top`` display as plain text.

    Rates need two scrapes ``dt`` seconds apart; with only one, the rate
    column shows the cumulative totals instead (labelled as such).
    """

    lines: List[str] = [title, "=" * len(title)]
    have_rates = previous is not None and dt > 0

    def rate(key: str) -> float:
        current = scrape.value(key)
        if not have_rates:
            return current
        return max(0.0, current - previous.value(key)) / dt

    unit = "/s" if have_rates else " total"
    lines.append(
        f"requests: {rate('repro_serve_requests_total'):.1f}{unit}"
        f"   gate: {scrape.value('repro_serve_gate_active'):.0f}"
        f"/{scrape.value('repro_serve_gate_max_concurrency'):.0f}"
        f" (peak {scrape.value('repro_serve_gate_peak'):.0f})"
    )

    status = [
        f"{cls}={rate(key):.1f}{unit}"
        for cls in ("2xx", "4xx", "5xx")
        for key in (f'repro_serve_responses_total{{class="{cls}"}}',)
        if scrape.value(key) or (previous is not None and previous.value(key))
    ]
    if status:
        lines.append("responses: " + "  ".join(status))

    route_keys = sorted(
        key
        for key in scrape.histograms
        if key.startswith("repro_serve_request_seconds{")
    )
    if route_keys:
        lines.append("")
        lines.append(
            f"{'route':<10} {'count':>8} {'p50 ms':>9} {'p90 ms':>9} "
            f"{'p99 ms':>9}"
        )
        for key in route_keys:
            match = re.search(r'route="([^"]*)"', key)
            route = match.group(1) if match else "?"
            hist = scrape.histograms[key]
            row = [f"{route:<10}", f"{hist['count']:>8.0f}"]
            for q in (0.5, 0.9, 0.99):
                value = scrape.quantile(key, q)
                row.append(
                    f"{value * 1000:>9.2f}" if value == value else f"{'-':>9}"
                )
            lines.append(" ".join(row))

    cache_lines = _cache_rows(scrape)
    if cache_lines:
        lines.append("")
        lines.extend(cache_lines)
    return "\n".join(lines) + "\n"


def _cache_rows(scrape: Scrape) -> List[str]:
    caches = sorted(
        {
            match.group(1)
            for key in scrape.samples
            for match in [
                re.match(r'repro_cache_hits_total\{cache="([^"]*)"\}', key)
            ]
            if match
        }
    )
    rows: List[str] = []
    for cache in caches:
        hits = scrape.value(f'repro_cache_hits_total{{cache="{cache}"}}')
        misses = scrape.value(f'repro_cache_misses_total{{cache="{cache}"}}')
        total = hits + misses
        ratio = (hits / total * 100.0) if total else 0.0
        rows.append(
            f"cache {cache}: {ratio:.1f}% hit "
            f"({hits:.0f} hits / {misses:.0f} misses)"
        )
    return rows
