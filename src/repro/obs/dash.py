"""``GET /debug``: a dependency-free single-page HTML dashboard.

One self-contained page — inline CSS, inline vanilla JS, no external
fetches beyond the server's own debug endpoints — that polls
``/debug/vars`` (metrics history), ``/stats`` and ``/debug/requests``
and renders:

* sparklines (inline SVG, drawn by the page's own JS) for request rate,
  gate occupancy and cache hit rate over the history window;
* a per-route latency table (p50/p90/p99 from the newest history point);
* the captured slow requests per route, with their span trees one click
  away (the raw JSON endpoints remain the machine interface).

Python's job here is only to serve the template with the poll interval
injected; everything live happens client-side so the endpoint stays a
cheap static-bytes response.
"""

from __future__ import annotations

import json

__all__ = ["render_dashboard"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro /debug</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5em auto; max-width: 72em; padding: 0 1em;
         background: #11151a; color: #d8dee6; }
  h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.4em 0 .4em; }
  a { color: #7aa2f7; text-decoration: none; }
  .cards { display: flex; flex-wrap: wrap; gap: 1em; }
  .card { background: #1a2028; border: 1px solid #2a3442; border-radius: 6px;
          padding: .7em 1em; min-width: 15em; }
  .card .big { font-size: 1.5em; }
  .muted { color: #71808f; }
  svg.spark { display: block; margin-top: .3em; }
  svg.spark path { fill: none; stroke: #7aa2f7; stroke-width: 1.5; }
  svg.spark polygon { fill: rgba(122,162,247,.15); stroke: none; }
  table { border-collapse: collapse; margin-top: .4em; }
  th, td { text-align: right; padding: .15em .8em; }
  th:first-child, td:first-child { text-align: left; }
  th { color: #71808f; font-weight: normal; border-bottom: 1px solid #2a3442; }
  tr.slow td { cursor: pointer; }
  pre.spans { background: #0d1117; border: 1px solid #2a3442; padding: .6em;
              margin: .2em 0 .6em; overflow-x: auto; }
  #err { color: #f7768e; }
</style>
</head>
<body>
<h1>repro /debug <span class="muted" id="updated"></span></h1>
<div id="err"></div>
<div class="cards">
  <div class="card"><div>requests / s</div>
    <div class="big" id="rps">–</div><svg class="spark" id="spark-rps"></svg></div>
  <div class="card"><div>gate occupancy</div>
    <div class="big" id="gate">–</div><svg class="spark" id="spark-gate"></svg></div>
  <div class="card"><div>hot-chunk cache hit %</div>
    <div class="big" id="hit">–</div><svg class="spark" id="spark-hit"></svg></div>
</div>
<h2>route latency (newest history point)</h2>
<table id="routes"><thead>
<tr><th>route</th><th>count</th><th>req/s</th><th>p50 ms</th><th>p90 ms</th>
<th>p99 ms</th></tr></thead><tbody></tbody></table>
<h2>slow requests <span class="muted">(tail capture, slowest per route —
<a href="/debug/requests">raw</a>)</span></h2>
<table id="slow"><thead>
<tr><th>route</th><th>request</th><th>status</th><th>ms</th><th>captured</th>
</tr></thead><tbody></tbody></table>
<p class="muted">endpoints: <a href="/debug/vars?window=600">/debug/vars</a>
· <a href="/debug/requests">/debug/requests</a>
· <a href="/debug/profile?seconds=2">/debug/profile</a>
· <a href="/metrics">/metrics</a> · <a href="/stats">/stats</a></p>
<script>
"use strict";
const CFG = __CONFIG__;
const fmt = (v, d) => (v === null || v === undefined || Number.isNaN(v))
  ? "–" : v.toFixed(d === undefined ? 1 : d);

function spark(id, values) {
  const svg = document.getElementById(id);
  const W = 220, H = 36;
  svg.setAttribute("width", W); svg.setAttribute("height", H);
  svg.textContent = "";
  if (values.length < 2) return;
  const max = Math.max(...values, 1e-9);
  const pts = values.map((v, i) =>
    [(i / (values.length - 1)) * W, H - 2 - (v / max) * (H - 6)]);
  const d = "M" + pts.map(p => p[0].toFixed(1) + " " + p[1].toFixed(1)).join(" L");
  const ns = "http://www.w3.org/2000/svg";
  const area = document.createElementNS(ns, "polygon");
  area.setAttribute("points",
    "0," + H + " " + pts.map(p => p[0].toFixed(1) + "," + p[1].toFixed(1)).join(" ")
    + " " + W + "," + H);
  svg.appendChild(area);
  const path = document.createElementNS(ns, "path");
  path.setAttribute("d", d);
  svg.appendChild(path);
}

function sum(obj, prefix) {
  let total = 0;
  for (const k in obj) if (k.startsWith(prefix)) total += obj[k];
  return total;
}

function routeOf(key) {
  const m = /route="([^"]*)"/.exec(key);
  return m ? m[1] : key;
}

async function refresh() {
  try {
    const [vars_, stats, slow] = await Promise.all([
      fetch("/debug/vars?window=" + CFG.window).then(r => r.json()),
      fetch("/stats").then(r => r.json()),
      fetch("/debug/requests").then(r => r.json()),
    ]);
    const pts = vars_.points;
    const newest = pts.length ? pts[pts.length - 1] : null;

    spark("spark-rps", pts.map(p =>
      sum(p.rates, "repro_serve_requests_total")));
    spark("spark-gate", pts.map(p =>
      p.gauges["repro_serve_gate_active"] || 0));
    spark("spark-hit", pts.map(p => {
      const h = p.rates['repro_cache_hits_total{cache="hot-chunk"}'] || 0;
      const m = p.rates['repro_cache_misses_total{cache="hot-chunk"}'] || 0;
      return h + m ? (100 * h) / (h + m) : 0;
    }));
    document.getElementById("rps").textContent = newest
      ? fmt(sum(newest.rates, "repro_serve_requests_total")) : "–";
    document.getElementById("gate").textContent =
      stats.gate.active + "/" + stats.gate.max_concurrency
      + " (peak " + stats.gate.peak + ")";
    const cc = stats.hot_chunk_cache;
    document.getElementById("hit").textContent = (cc.hits + cc.misses)
      ? fmt((100 * cc.hits) / (cc.hits + cc.misses)) + "%" : "–";

    const routes = document.querySelector("#routes tbody");
    routes.textContent = "";
    if (newest) {
      const keys = Object.keys(newest.quantiles)
        .filter(k => k.startsWith("repro_serve_request_seconds{")).sort();
      for (const key of keys) {
        const q = newest.quantiles[key];
        const tr = document.createElement("tr");
        for (const cell of [routeOf(key), fmt(q.count, 0), fmt(q.rate),
                            fmt(q.p50 * 1000, 2), fmt(q.p90 * 1000, 2),
                            fmt(q.p99 * 1000, 2)]) {
          const td = document.createElement("td");
          td.textContent = cell;
          tr.appendChild(td);
        }
        routes.appendChild(tr);
      }
    }

    const tbody = document.querySelector("#slow tbody");
    tbody.textContent = "";
    for (const route of Object.keys(slow.routes).sort()) {
      for (const entry of slow.routes[route]) {
        const tr = document.createElement("tr");
        tr.className = "slow";
        for (const cell of [route,
                            entry.method + " " + entry.path,
                            String(entry.status),
                            fmt(entry.duration_ms, 2),
                            entry.request_id]) {
          const td = document.createElement("td");
          td.textContent = cell;
          tr.appendChild(td);
        }
        tr.addEventListener("click", () => {
          const next = tr.nextSibling;
          if (next && next.className === "detail") { next.remove(); return; }
          const dtr = document.createElement("tr");
          dtr.className = "detail";
          const td = document.createElement("td");
          td.colSpan = 5;
          const pre = document.createElement("pre");
          pre.className = "spans";
          pre.textContent = JSON.stringify(entry.spans, null, 1);
          td.appendChild(pre);
          dtr.appendChild(td);
          tr.after(dtr);
        });
        tbody.appendChild(tr);
      }
    }
    document.getElementById("updated").textContent =
      "· updated " + new Date().toLocaleTimeString();
    document.getElementById("err").textContent = "";
  } catch (exc) {
    document.getElementById("err").textContent = "refresh failed: " + exc;
  }
}
refresh();
setInterval(refresh, CFG.poll_ms);
</script>
</body>
</html>
"""


def render_dashboard(
    *, poll_ms: int = 3000, window_seconds: int = 600
) -> str:
    """The dashboard page with its polling config injected."""

    config = json.dumps({"poll_ms": poll_ms, "window": window_seconds})
    return _PAGE.replace("__CONFIG__", config)
