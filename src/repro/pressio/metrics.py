"""Reconstruction-quality and size metrics.

The paper's headline statistic is the compression ratio; its future-work
section also calls out PSNR and other quality metrics of the reconstructed
data.  :func:`evaluate_metrics` computes the standard set libpressio
reports so downstream analyses (and the CR-prediction extension in
:mod:`repro.core.predictor`) can use any of them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

from repro.compressors.base import CompressedField
from repro.utils.validation import ensure_float_array

__all__ = ["CompressionMetrics", "error_statistics", "evaluate_metrics"]


@dataclass(frozen=True)
class CompressionMetrics:
    """Size and quality metrics of one compression run.

    Attributes
    ----------
    compression_ratio:
        Uncompressed bytes / compressed bytes.
    bit_rate:
        Compressed bits per value.
    max_abs_error:
        Point-wise maximum absolute reconstruction error.
    rmse:
        Root-mean-square error.
    psnr:
        Peak signal-to-noise ratio in dB (peak = value range of the
        original field); ``inf`` for an exact reconstruction.
    value_range:
        Max - min of the original field (the PSNR peak).
    error_bound:
        The absolute bound the compressor was configured with.
    bound_satisfied:
        Whether ``max_abs_error <= error_bound`` (with a tiny relative
        slack for floating point).
    """

    compression_ratio: float
    bit_rate: float
    max_abs_error: float
    rmse: float
    psnr: float
    value_range: float
    error_bound: float
    bound_satisfied: bool

    def as_dict(self) -> Dict[str, float]:
        """Metrics as a plain dictionary (for tabulation / CSV export)."""

        return asdict(self)


def error_statistics(original: np.ndarray, reconstruction: np.ndarray):
    """Shared reconstruction-error statistics (any dimensionality).

    Returns ``(max_abs_error, rmse, value_range, psnr)``; the single
    definition serves both the 2D metrics here and the tiled volume
    metrics in :mod:`repro.volumes.pipeline`.
    """

    error = reconstruction - original
    max_abs_error = float(np.abs(error).max()) if error.size else 0.0
    rmse = float(np.sqrt(np.mean(error**2))) if error.size else 0.0
    value_range = float(original.max() - original.min()) if original.size else 0.0
    if rmse == 0.0:
        psnr = float("inf")
    elif value_range == 0.0:
        psnr = float("-inf") if rmse > 0 else float("inf")
    else:
        psnr = float(20.0 * np.log10(value_range) - 20.0 * np.log10(rmse))
    return max_abs_error, rmse, value_range, psnr


def evaluate_metrics(
    original: np.ndarray,
    compressed: CompressedField,
    reconstruction: Optional[np.ndarray] = None,
) -> CompressionMetrics:
    """Compute :class:`CompressionMetrics` for one compression run.

    ``reconstruction`` defaults to the one the compressor produced as a
    by-product (``compressed.reconstruction``); passing an explicit array
    (e.g. the output of ``decompress``) lets tests verify the two agree.
    """

    original = ensure_float_array(original, "original")
    if reconstruction is None:
        reconstruction = compressed.reconstruction
    if reconstruction is None:
        raise ValueError(
            "no reconstruction available: pass one explicitly or use a "
            "compressor that returns it from compress()"
        )
    reconstruction = ensure_float_array(reconstruction, "reconstruction")
    if reconstruction.shape != original.shape:
        raise ValueError(
            f"reconstruction shape {reconstruction.shape} != original shape {original.shape}"
        )

    max_abs_error, rmse, value_range, psnr = error_statistics(
        original, reconstruction
    )

    n_values = int(np.prod(compressed.original_shape))
    bit_rate = 8.0 * compressed.compressed_nbytes / n_values if n_values else 0.0
    bound_satisfied = max_abs_error <= compressed.error_bound * (1.0 + 1e-9)

    return CompressionMetrics(
        compression_ratio=compressed.compression_ratio,
        bit_rate=bit_rate,
        max_abs_error=max_abs_error,
        rmse=rmse,
        psnr=psnr,
        value_range=value_range,
        error_bound=compressed.error_bound,
        bound_satisfied=bound_satisfied,
    )
