"""libpressio-like unified compression interface.

The original study drives SZ, ZFP and MGARD through libpressio, which
gives every compressor the same configure / compress / decompress /
measure workflow.  This subpackage plays the same role for the from-scratch
compressors in :mod:`repro.compressors`:

* :mod:`repro.pressio.options` -- typed option bags with validation,
  mirroring libpressio's name/value option trees.
* :mod:`repro.pressio.metrics` -- reconstruction-quality and size metrics
  (compression ratio, PSNR, RMSE, maximum absolute error, ...).
* :mod:`repro.pressio.api` -- the :class:`PressioCompressor` facade that
  ties a named compressor, its options and the metrics together.
"""

from repro.pressio.api import PressioCompressor, compress_and_measure
from repro.pressio.metrics import CompressionMetrics, evaluate_metrics
from repro.pressio.options import CompressorOptions

__all__ = [
    "PressioCompressor",
    "compress_and_measure",
    "CompressionMetrics",
    "evaluate_metrics",
    "CompressorOptions",
]
