"""The pressio-like compressor facade.

:class:`PressioCompressor` wraps a named compressor from the registry plus
a :class:`repro.pressio.options.CompressorOptions` bag, and exposes the
compress / decompress / measure workflow the original study drives through
libpressio.  The convenience function :func:`compress_and_measure` is the
one-call path the experiment pipeline uses.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor
from repro.compressors.registry import available_compressors, make_compressor
from repro.pressio.metrics import CompressionMetrics, evaluate_metrics
from repro.pressio.options import CompressorOptions
from repro.utils.validation import ensure_ndim

__all__ = ["PressioCompressor", "compress_and_measure"]


class PressioCompressor:
    """Facade tying together a named compressor, options and metrics.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.pressio import PressioCompressor, CompressorOptions
    >>> field = np.random.default_rng(0).normal(size=(64, 64))
    >>> codec = PressioCompressor("sz", CompressorOptions(error_bound=1e-3))
    >>> compressed, metrics = codec.compress(field)
    >>> metrics.bound_satisfied
    True
    """

    def __init__(self, compressor_id: str, options: Optional[CompressorOptions] = None) -> None:
        if compressor_id not in available_compressors():
            raise KeyError(
                f"unknown compressor {compressor_id!r}; available: {available_compressors()}"
            )
        self.compressor_id = compressor_id
        self.options = options or CompressorOptions()

    # ------------------------------------------------------------------
    def _instantiate(self, field: np.ndarray) -> Compressor:
        bound = self.options.absolute_bound(float(np.min(field)), float(np.max(field)))
        return make_compressor(self.compressor_id, bound, **self.options.extra)

    def compress(
        self,
        field: np.ndarray,
        *,
        halo=None,
        collect_context: bool = False,
    ) -> Tuple[CompressedField, CompressionMetrics]:
        """Compress a 2D or 3D ``field`` and evaluate the standard metric set.

        The registry compressors are dimension-general, so the facade
        accepts volumes as well as planes; the chunked array store drives
        its per-chunk codecs through this path.  ``halo`` (a
        :class:`repro.compressors.halo.TileHalo`) and ``collect_context``
        are forwarded to halo-capable compressors and silently dropped for
        the rest.
        """

        field = ensure_ndim(field, (2, 3), "field")
        compressor = self._instantiate(field)
        if getattr(compressor, "supports_halo", False):
            compressed = compressor.compress(
                field, halo=halo, collect_context=collect_context
            )
        else:
            compressed = compressor.compress(field)
        metrics = evaluate_metrics(field, compressed)
        return compressed, metrics

    def decompress(self, compressed: CompressedField, *, halo=None) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""

        compressor = make_compressor(
            self.compressor_id, compressed.error_bound, **self.options.extra
        )
        if getattr(compressor, "supports_halo", False):
            return compressor.decompress(compressed, halo=halo)
        return compressor.decompress(compressed)

    def decompress_with_context(self, compressed: CompressedField, halo=None):
        """Decode and return ``(values, entropy_context)`` — the halo-chaining
        variant of :meth:`decompress`."""

        compressor = make_compressor(
            self.compressor_id, compressed.error_bound, **self.options.extra
        )
        return compressor.decompress_with_context(compressed, halo=halo)

    def get_configuration(self) -> Dict[str, Any]:
        """Introspection helper mirroring libpressio's get_configuration."""

        return {
            "compressor_id": self.compressor_id,
            "error_bound": self.options.error_bound,
            "mode": self.options.mode,
            "extra": dict(self.options.extra),
        }


def compress_and_measure(
    field: np.ndarray,
    compressor_id: str,
    error_bound: float,
    *,
    mode: str = "abs",
    **extra: Any,
) -> Tuple[CompressedField, CompressionMetrics]:
    """One-call compress + measure used by the experiment pipeline."""

    options = CompressorOptions(error_bound=error_bound, mode=mode, extra=dict(extra))
    return PressioCompressor(compressor_id, options).compress(field)
