"""Option bags for the pressio-like facade.

libpressio configures compressors through a tree of named options (error
bound mode, bound value, compressor-specific knobs).  The
:class:`CompressorOptions` dataclass is the flattened equivalent for this
library: the error-bound mode and value plus a free-form dictionary of
compressor-specific keyword arguments that are forwarded to the underlying
compressor constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.utils.validation import ensure_in, ensure_positive

__all__ = ["CompressorOptions"]

#: Error-bound modes supported by the facade.  The paper uses ``"abs"``;
#: ``"rel"`` (value-range relative) is provided because the paper notes the
#: formal equivalence between the two and SZ exposes both.
ERROR_BOUND_MODES = ("abs", "rel")


@dataclass
class CompressorOptions:
    """Options of a pressio-style compressor instance.

    Attributes
    ----------
    error_bound:
        The bound value.  Interpreted according to ``mode``.
    mode:
        ``"abs"`` — absolute error bound (the paper's setting); ``"rel"`` —
        value-range relative bound, converted to an absolute bound as
        ``bound * (max - min)`` of the field being compressed.
    extra:
        Additional keyword arguments forwarded to the compressor factory
        (e.g. ``block_size``, ``backend``, ``predictors``).
    """

    error_bound: float = 1e-3
    mode: str = "abs"
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure_positive(self.error_bound, "error_bound")
        ensure_in(self.mode, ERROR_BOUND_MODES, "mode")

    def absolute_bound(self, field_min: float, field_max: float) -> float:
        """Resolve the option to an absolute bound for a concrete field."""

        if self.mode == "abs":
            return float(self.error_bound)
        value_range = float(field_max) - float(field_min)
        if value_range <= 0:
            # Constant field: any positive bound is achievable; fall back to
            # the raw option value to keep behaviour well defined.
            return float(self.error_bound)
        return float(self.error_bound) * value_range
