"""Directional and 3D variogram estimation.

The paper analyses 2D slices with an isotropic variogram and flags "a
design of the statistics to a 3D context" as future work.  This module
implements that extension:

* :func:`directional_variogram` — semi-variograms restricted to the grid
  axes (row / column direction) of a 2D field, exposing anisotropy that
  the isotropic estimate averages away;
* :func:`empirical_variogram_3d` — the isotropic Matheron estimator on a
  full 3D volume, using the same FFT pair-enumeration trick as the 2D
  estimator (three correlation volumes, offsets binned by Euclidean
  length);
* :func:`estimate_variogram_range_3d` — fitted squared-exponential range
  of a 3D volume, the volumetric analogue of the statistic on the x-axis
  of Figures 3 and 4;
* :func:`anisotropy_ratio` — ratio of the per-axis fitted ranges of a 2D
  field (1 for isotropic data), a cheap diagnostic for when the isotropic
  range is a questionable summary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.signal import fftconvolve

from repro.stats.variogram import EmpiricalVariogram, VariogramConfig
from repro.stats.variogram_models import fit_variogram
from repro.utils.validation import ensure_2d, ensure_float_array, ensure_positive

__all__ = [
    "directional_variogram",
    "anisotropy_ratio",
    "empirical_variogram_3d",
    "estimate_variogram_range_3d",
    "local_variogram_ranges_3d",
    "std_local_variogram_range_3d",
]


def directional_variogram(
    field: np.ndarray, axis: int, max_lag: Optional[int] = None
) -> EmpiricalVariogram:
    """Semi-variogram of a 2D field along one grid axis.

    Only pairs separated strictly along ``axis`` contribute; lags are the
    integers ``1..max_lag``.
    """

    field = ensure_float_array(ensure_2d(field, "field"))
    if axis not in (0, 1):
        raise ValueError("axis must be 0 or 1")
    length = field.shape[axis]
    if max_lag is None:
        max_lag = length // 2
    max_lag = int(min(max_lag, length - 1))
    if max_lag < 1:
        raise ValueError("field too small along the requested axis")

    data = field if axis == 0 else field.T
    lags = np.arange(1, max_lag + 1, dtype=np.float64)
    values = np.empty(max_lag)
    counts = np.empty(max_lag, dtype=np.int64)
    for lag in range(1, max_lag + 1):
        diff = data[lag:, :] - data[:-lag, :]
        counts[lag - 1] = diff.size
        values[lag - 1] = 0.5 * float(np.mean(diff**2)) if diff.size else 0.0
    return EmpiricalVariogram(
        lags=lags,
        values=values,
        pair_counts=counts,
        field_variance=float(field.var()),
    )


def anisotropy_ratio(field: np.ndarray, max_lag: Optional[int] = None) -> float:
    """Ratio of the fitted row-direction range to the column-direction range.

    Values near 1 indicate isotropy (the paper's synthetic fields); values
    far from 1 flag fields whose isotropic variogram range is an average of
    genuinely different directional scales.
    """

    row_variogram = directional_variogram(field, axis=0, max_lag=max_lag)
    col_variogram = directional_variogram(field, axis=1, max_lag=max_lag)
    row_range = fit_variogram(row_variogram).range
    col_range = fit_variogram(col_variogram).range
    if col_range <= 0:
        return float("inf")
    return float(row_range / col_range)


def empirical_variogram_3d(
    volume: np.ndarray, config: VariogramConfig | None = None
) -> EmpiricalVariogram:
    """Isotropic semi-variogram of a 3D volume (exact FFT pair enumeration)."""

    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3D, got shape {volume.shape}")
    if min(volume.shape) < 2:
        raise ValueError("volume must be at least 2 points along every axis")
    config = config or VariogramConfig()
    max_lag = config.max_lag if config.max_lag is not None else min(volume.shape) / 2.0
    ensure_positive(max_lag, "max_lag")

    field_variance = float(volume.var())
    centered = volume - volume.mean()
    ones = np.ones_like(centered)
    sq = centered * centered
    flip = centered[::-1, ::-1, ::-1]
    flip_sq = sq[::-1, ::-1, ::-1]
    flip_ones = ones[::-1, ::-1, ::-1]

    corr_zz = fftconvolve(centered, flip, mode="full")
    corr_sq_one = fftconvolve(sq, flip_ones, mode="full")
    corr_one_sq = fftconvolve(ones, flip_sq, mode="full")
    pair_count = np.rint(fftconvolve(ones, flip_ones, mode="full"))
    sq_diff = np.clip(corr_sq_one + corr_one_sq - 2.0 * corr_zz, 0.0, None)

    nz, ny, nx = volume.shape
    di = np.arange(-(nz - 1), nz)[:, None, None].astype(np.float64)
    dj = np.arange(-(ny - 1), ny)[None, :, None].astype(np.float64)
    dk = np.arange(-(nx - 1), nx)[None, None, :].astype(np.float64)
    dist = np.sqrt(di**2 + dj**2 + dk**2)
    half_space = (di > 0) | ((di == 0) & (dj > 0)) | ((di == 0) & (dj == 0) & (dk > 0))
    mask = half_space & (dist > 0) & (dist <= max_lag) & (pair_count > 0)

    distances = dist[mask]
    sums = sq_diff[mask]
    counts = pair_count[mask]

    n_bins = int(np.ceil(max_lag / config.bin_width))
    bin_index = np.minimum((distances / config.bin_width).astype(np.int64), n_bins - 1)
    bin_sums = np.bincount(bin_index, weights=sums, minlength=n_bins)
    bin_counts = np.bincount(bin_index, weights=counts, minlength=n_bins)
    bin_dist = np.bincount(bin_index, weights=distances * counts, minlength=n_bins)

    valid = bin_counts >= config.min_pairs_per_bin
    gamma = np.zeros(n_bins)
    gamma[valid] = bin_sums[valid] / (2.0 * bin_counts[valid])
    lag_centres = np.zeros(n_bins)
    lag_centres[valid] = bin_dist[valid] / bin_counts[valid]
    return EmpiricalVariogram(
        lags=lag_centres[valid],
        values=gamma[valid],
        pair_counts=bin_counts[valid].astype(np.int64),
        field_variance=field_variance,
    )


def estimate_variogram_range_3d(
    volume: np.ndarray,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
) -> float:
    """Fitted variogram range of a 3D volume (volumetric analogue of Fig. 3's x-axis)."""

    variogram = empirical_variogram_3d(volume, config=config)
    return fit_variogram(variogram, model=model).range


def local_variogram_ranges_3d(
    volume: np.ndarray,
    window: int = 32,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
):
    """Variogram range inside every complete ``window^3`` cube of a volume.

    The volumetric analogue of :func:`repro.stats.local.local_variogram_ranges`
    (the paper's Fig. 7 windowed analysis, H = 32): the volume is tiled
    into non-overlapping complete ``window^3`` cubes and the 3D variogram
    range is fitted inside each.  Degenerate (numerically constant) or
    unfittable windows yield NaN and are excluded from the summary
    statistics.  Returns a
    :class:`repro.stats.local.LocalVariogramResult` whose ``ranges``
    array is 3D (one entry per window-grid cell).
    """

    from repro.stats.local import LocalVariogramResult
    from repro.utils.blocking import window_starts

    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3D, got shape {volume.shape}")
    ensure_positive(window, "window")
    grid = tuple(length // window for length in volume.shape)
    if min(grid) == 0:
        raise ValueError(
            f"volume shape {volume.shape} has no complete {window}^3 windows"
        )
    if config is None:
        # Same convention as the 2D local statistic: half-window max lag
        # keeps enough pairs per bin for a stable fit in small windows.
        config = VariogramConfig(max_lag=window / 2.0, bin_width=1.0)

    starts = [window_starts(length, window) for length in volume.shape]
    ranges = np.full(grid, np.nan)
    for wi, i in enumerate(starts[0]):
        for wj, j in enumerate(starts[1]):
            for wk, k in enumerate(starts[2]):
                cube = volume[i : i + window, j : j + window, k : k + window]
                if float(cube.std()) < 1e-15:
                    continue
                try:
                    ranges[wi, wj, wk] = estimate_variogram_range_3d(
                        cube, model=model, config=config
                    )
                except (ValueError, RuntimeError):
                    continue
    return LocalVariogramResult(window=window, ranges=ranges)


def std_local_variogram_range_3d(
    volume: np.ndarray,
    window: int = 32,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
) -> float:
    """Std of the windowed 3D variogram ranges (Fig. 7's statistic for volumes)."""

    return local_variogram_ranges_3d(volume, window, model=model, config=config).std
