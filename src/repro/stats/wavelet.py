"""Haar wavelet decomposition and wavelet-based multiscale statistics.

The paper's Section II-C lists wavelet decompositions (alongside the SVD)
as the standard tool for identifying multiscale components of scientific
datasets, and leaves their detailed use to future work.  This module
implements that direction:

* a separable 2D Haar wavelet transform (orthonormal, exactly invertible
  for even-sized inputs, with odd edges handled by symmetric padding),
* per-level detail-energy fractions — the wavelet energy spectrum of a
  field, a direct multiscale summary of its correlation structure, and
* :func:`wavelet_energy_statistics`, whose *slope* over levels plays the
  same role as the variogram range (long-range-correlated fields
  concentrate energy in coarse levels) and whose windowed standard
  deviation mirrors the paper's local statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.stats.windows import field_windows, window_grid_shape
from repro.utils.validation import ensure_2d, ensure_float_array, ensure_positive

__all__ = [
    "haar_transform_2d",
    "inverse_haar_transform_2d",
    "wavelet_decompose",
    "wavelet_energy_statistics",
    "WaveletEnergySummary",
    "std_local_wavelet_slope",
]

_SQRT2 = float(np.sqrt(2.0))


def _pad_to_even(field: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    rows, cols = field.shape
    pad_r = rows % 2
    pad_c = cols % 2
    if pad_r or pad_c:
        field = np.pad(field, ((0, pad_r), (0, pad_c)), mode="symmetric")
    return field, (rows, cols)


def haar_transform_2d(field: np.ndarray) -> Dict[str, np.ndarray]:
    """One level of the separable orthonormal 2D Haar transform.

    Returns the four sub-bands ``{"LL", "LH", "HL", "HH"}`` each of half
    the (even-padded) resolution.  The transform is orthonormal, so the sum
    of squared coefficients equals the sum of squared (padded) samples.
    """

    field = ensure_float_array(ensure_2d(field, "field"))
    padded, _ = _pad_to_even(field)
    # Rows: average / difference pairs.
    even_rows = padded[0::2, :]
    odd_rows = padded[1::2, :]
    low_rows = (even_rows + odd_rows) / _SQRT2
    high_rows = (even_rows - odd_rows) / _SQRT2
    # Columns.
    def split_cols(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        even = matrix[:, 0::2]
        odd = matrix[:, 1::2]
        return (even + odd) / _SQRT2, (even - odd) / _SQRT2

    ll, lh = split_cols(low_rows)
    hl, hh = split_cols(high_rows)
    return {"LL": ll, "LH": lh, "HL": hl, "HH": hh}


def inverse_haar_transform_2d(
    bands: Dict[str, np.ndarray], original_shape: Tuple[int, int] | None = None
) -> np.ndarray:
    """Invert :func:`haar_transform_2d`; crops to ``original_shape`` if given."""

    for key in ("LL", "LH", "HL", "HH"):
        if key not in bands:
            raise ValueError(f"missing sub-band {key!r}")
    ll, lh, hl, hh = bands["LL"], bands["LH"], bands["HL"], bands["HH"]
    if not (ll.shape == lh.shape == hl.shape == hh.shape):
        raise ValueError("all sub-bands must have the same shape")
    rows2, cols2 = ll.shape

    def merge_cols(low: np.ndarray, high: np.ndarray) -> np.ndarray:
        out = np.empty((low.shape[0], 2 * cols2), dtype=np.float64)
        out[:, 0::2] = (low + high) / _SQRT2
        out[:, 1::2] = (low - high) / _SQRT2
        return out

    low_rows = merge_cols(ll, lh)
    high_rows = merge_cols(hl, hh)
    out = np.empty((2 * rows2, low_rows.shape[1]), dtype=np.float64)
    out[0::2, :] = (low_rows + high_rows) / _SQRT2
    out[1::2, :] = (low_rows - high_rows) / _SQRT2
    if original_shape is not None:
        out = out[: original_shape[0], : original_shape[1]]
    return out


def wavelet_decompose(field: np.ndarray, levels: int) -> List[Dict[str, np.ndarray]]:
    """Multi-level Haar decomposition.

    Returns a list of per-level band dictionaries, finest level first; the
    ``LL`` band of the last entry is the residual approximation.
    """

    field = ensure_float_array(ensure_2d(field, "field"))
    ensure_positive(levels, "levels")
    out: List[Dict[str, np.ndarray]] = []
    current = field
    for _ in range(int(levels)):
        if min(current.shape) < 2:
            break
        bands = haar_transform_2d(current)
        out.append(bands)
        current = bands["LL"]
    return out


@dataclass(frozen=True)
class WaveletEnergySummary:
    """Per-level wavelet detail energy fractions and derived summaries.

    Attributes
    ----------
    level_energy_fraction:
        Fraction of the total detail energy held by each level (finest
        first).
    approximation_fraction:
        Fraction of the *total* energy (details + approximation) retained
        by the final approximation band.
    spectral_slope:
        Slope of ``log(detail energy)`` against level index; positive
        values mean energy grows toward coarse scales, the signature of
        long-range correlation.
    """

    level_energy_fraction: np.ndarray
    approximation_fraction: float
    spectral_slope: float

    @property
    def n_levels(self) -> int:
        return int(self.level_energy_fraction.size)


def wavelet_energy_statistics(field: np.ndarray, levels: int = 4) -> WaveletEnergySummary:
    """Multiscale energy summary of a field via the Haar wavelet transform."""

    decomposition = wavelet_decompose(field, levels)
    if not decomposition:
        raise ValueError("field too small for a wavelet decomposition")
    detail_energy = np.array(
        [
            float((bands["LH"] ** 2).sum() + (bands["HL"] ** 2).sum() + (bands["HH"] ** 2).sum())
            for bands in decomposition
        ]
    )
    approx_energy = float((decomposition[-1]["LL"] ** 2).sum())
    total_detail = float(detail_energy.sum())
    total = total_detail + approx_energy
    fractions = detail_energy / total_detail if total_detail > 0 else np.zeros_like(detail_energy)

    if detail_energy.size >= 2 and np.all(detail_energy > 0):
        slope = float(
            np.polyfit(np.arange(detail_energy.size), np.log(detail_energy), 1)[0]
        )
    else:
        slope = 0.0
    return WaveletEnergySummary(
        level_energy_fraction=fractions,
        approximation_fraction=approx_energy / total if total > 0 else 1.0,
        spectral_slope=slope,
    )


def std_local_wavelet_slope(field: np.ndarray, window: int = 32, levels: int = 3) -> float:
    """Std of the windowed wavelet spectral slope — a local multiscale statistic.

    The windowed analogue of :func:`wavelet_energy_statistics`, in the same
    spirit as the paper's windowed variogram and SVD statistics: windows
    whose multiscale energy distribution differs strongly from their
    neighbours raise the statistic, flagging spatial heterogeneity.
    """

    field = ensure_2d(field, "field")
    grid = window_grid_shape(field.shape, window)
    if grid[0] == 0 or grid[1] == 0:
        raise ValueError(
            f"field shape {field.shape} has no complete {window}x{window} windows"
        )
    slopes = []
    for _, tile in field_windows(field, window):
        tile_arr = np.asarray(tile, dtype=np.float64)
        if float(tile_arr.std()) < 1e-15:
            continue
        slopes.append(wavelet_energy_statistics(tile_arr, levels=levels).spectral_slope)
    if not slopes:
        return float("nan")
    return float(np.std(slopes))
