"""Shannon entropy estimators.

Entropy is the classical bound on *lossless* compressibility (the paper's
introduction frames the whole study as the search for an entropy-like
quantity for lossy compression).  Two estimators are provided:

* :func:`shannon_entropy` -- entropy (bits/symbol) of an integer symbol
  stream, used on quantization codes.
* :func:`quantized_entropy` -- entropy of a floating-point field after
  uniform quantization with a given absolute error bound, i.e. the
  first-order entropy of the error-bounded representation.  This is the
  statistic the Tao et al. online-selection baseline
  (:mod:`repro.baselines.adaptive_selection`) samples to predict SZ's
  behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_float_array, ensure_positive

__all__ = ["shannon_entropy", "quantized_entropy"]


def shannon_entropy(symbols: np.ndarray) -> float:
    """First-order Shannon entropy (bits per symbol) of an integer stream."""

    arr = np.asarray(symbols).ravel()
    if arr.size == 0:
        return 0.0
    _, counts = np.unique(arr, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def quantized_entropy(field: np.ndarray, error_bound: float) -> float:
    """Entropy (bits/value) of a field uniformly quantized to ``2*error_bound`` bins.

    Uniform scalar quantization with step ``2 * error_bound`` is the finest
    quantization that still guarantees the absolute error bound when values
    are reconstructed at bin centres; its first-order entropy is therefore a
    natural (compressor-independent) proxy for how many bits an
    error-bounded representation needs per value.
    """

    arr = ensure_float_array(field, "field").ravel()
    ensure_positive(error_bound, "error_bound")
    if not np.isfinite(arr).all():
        raise ValueError(
            "field contains non-finite values; quantized entropy is undefined "
            "(their int64 bin codes would wrap silently)"
        )
    step = 2.0 * error_bound
    codes = np.floor(arr / step + 0.5).astype(np.int64)
    return shannon_entropy(codes)
