"""Tiling of a 2D field into square windows.

Local correlation statistics (local variogram ranges, local SVD truncation
levels) are computed on non-overlapping ``H x H`` windows covering the
field, following the paper's windowed analysis (H = 32).  Only complete
windows contribute, matching the tiled-window convention of the reference
the paper cites for the approach.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.blocking import window_starts
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = ["window_grid_shape", "field_windows"]


def window_grid_shape(shape: Tuple[int, int], window: int) -> Tuple[int, int]:
    """Number of complete windows along each dimension."""

    ensure_positive(window, "window")
    return (shape[0] // window, shape[1] // window)


def field_windows(
    field: np.ndarray, window: int
) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
    """Yield ``((wi, wj), window_view)`` for every complete ``window`` tile.

    The yielded arrays are views into ``field`` (no copies); callers must
    copy if they mutate.
    """

    field = ensure_2d(field, "field")
    ensure_positive(window, "window")
    rows, cols = field.shape
    if rows < window or cols < window:
        raise ValueError(
            f"field shape {field.shape} is smaller than the window size {window}"
        )
    for wi, i in enumerate(window_starts(rows, window)):
        for wj, j in enumerate(window_starts(cols, window)):
            yield (wi, wj), field[i : i + window, j : j + window]
