"""Parametric variogram models and least-squares range estimation.

The paper fits the squared-exponential (often called "Gaussian") variogram

.. math::

    \\gamma(h) = c_0 \\left(1 - \\exp(-h^2 / a^2)\\right)

to the empirical variogram by least squares and reports the fitted *range*
``a`` (the distance beyond which spatial correlation essentially vanishes).
This module implements that fit plus the exponential and spherical
families and an optional nugget term, mirroring what the ``gstat`` R
package provides.

The headline public entry point is :func:`estimate_variogram_range`, which
goes straight from a 2D field to the fitted range — this is the statistic
on the x-axis of the paper's Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np
from scipy.optimize import least_squares

from repro.stats.variogram import EmpiricalVariogram, VariogramConfig, empirical_variogram
from repro.utils.validation import ensure_in

__all__ = [
    "VariogramModel",
    "FittedVariogram",
    "gaussian_variogram",
    "exponential_variogram",
    "spherical_variogram",
    "fit_variogram",
    "estimate_variogram_range",
    "MODEL_FUNCTIONS",
]


def gaussian_variogram(h: np.ndarray, sill: float, range_: float, nugget: float = 0.0) -> np.ndarray:
    """Squared-exponential ("Gaussian") variogram — the paper's model."""

    h = np.asarray(h, dtype=np.float64)
    return nugget + sill * (1.0 - np.exp(-(h**2) / (range_**2)))


def exponential_variogram(h: np.ndarray, sill: float, range_: float, nugget: float = 0.0) -> np.ndarray:
    """Exponential variogram ``nugget + sill * (1 - exp(-h / range))``."""

    h = np.asarray(h, dtype=np.float64)
    return nugget + sill * (1.0 - np.exp(-h / range_))


def spherical_variogram(h: np.ndarray, sill: float, range_: float, nugget: float = 0.0) -> np.ndarray:
    """Spherical variogram: reaches the sill exactly at ``range``."""

    h = np.asarray(h, dtype=np.float64)
    ratio = np.clip(h / range_, 0.0, 1.0)
    return nugget + sill * (1.5 * ratio - 0.5 * ratio**3)


MODEL_FUNCTIONS: Dict[str, Callable[..., np.ndarray]] = {
    "gaussian": gaussian_variogram,
    "exponential": exponential_variogram,
    "spherical": spherical_variogram,
}

#: Alias accepted for the paper's model name.
VariogramModel = str


@dataclass(frozen=True)
class FittedVariogram:
    """Result of a parametric variogram fit.

    Attributes
    ----------
    model:
        Name of the fitted family (``"gaussian"``, ``"exponential"``,
        ``"spherical"``).
    sill:
        Fitted partial sill :math:`c_0`.
    range:
        Fitted range ``a`` — the statistic the paper regresses CR against.
    nugget:
        Fitted nugget (0 when fitted without a nugget term).
    rmse:
        Root-mean-square misfit between the empirical and fitted variogram.
    converged:
        Whether the optimiser reported success.
    """

    model: str
    sill: float
    range: float
    nugget: float
    rmse: float
    converged: bool

    def __call__(self, h: np.ndarray) -> np.ndarray:
        """Evaluate the fitted variogram at distances ``h``."""

        return MODEL_FUNCTIONS[self.model](np.asarray(h), self.sill, self.range, self.nugget)

    @property
    def effective_range(self) -> float:
        """Distance at which the model reaches 95% of the sill."""

        if self.model == "spherical":
            return self.range
        if self.model == "exponential":
            return float(self.range * np.log(20.0))
        return float(self.range * np.sqrt(np.log(20.0)))


def fit_variogram(
    variogram: EmpiricalVariogram,
    model: str = "gaussian",
    *,
    fit_nugget: bool = False,
    weights: str = "pairs",
) -> FittedVariogram:
    """Least-squares fit of a parametric model to an empirical variogram.

    Parameters
    ----------
    variogram:
        Output of :func:`repro.stats.variogram.empirical_variogram`.
    model:
        Parametric family; the paper uses ``"gaussian"`` (squared
        exponential).
    fit_nugget:
        Include a nugget parameter.  The paper's synthetic fields have no
        measurement noise so the default is nugget-free.
    weights:
        ``"pairs"`` weights residuals by the square root of the pair count
        per bin (more pairs = more reliable bin), ``"uniform"`` uses no
        weighting — matching an ordinary least squares fit.
    """

    ensure_in(model, tuple(MODEL_FUNCTIONS), "model")
    ensure_in(weights, ("pairs", "uniform"), "weights")
    lags = np.asarray(variogram.lags, dtype=np.float64)
    values = np.asarray(variogram.values, dtype=np.float64)
    counts = np.asarray(variogram.pair_counts, dtype=np.float64)
    if lags.size < 3:
        raise ValueError("need at least 3 variogram bins to fit a model")

    func = MODEL_FUNCTIONS[model]
    w = np.sqrt(counts) if weights == "pairs" else np.ones_like(lags)
    w = w / w.max()

    sill0 = max(float(variogram.field_variance), float(values.max()), 1e-12)
    # Initial range: first lag where the empirical variogram exceeds ~63% of
    # the sill estimate (a robust moment-style initialisation).
    above = np.nonzero(values >= 0.632 * sill0)[0]
    range0 = float(lags[above[0]]) if above.size else float(lags[-1] / 2.0)
    range0 = max(range0, float(lags[0]), 1e-6)
    nugget0 = 0.0
    max_range = float(lags[-1]) * 10.0

    if fit_nugget:
        x0 = np.array([sill0, range0, nugget0])
        lower = np.array([1e-12, 1e-6, 0.0])
        upper = np.array([np.inf, max_range, sill0])

        def residuals(params: np.ndarray) -> np.ndarray:
            sill, rng_, nug = params
            return w * (func(lags, sill, rng_, nug) - values)

    else:
        x0 = np.array([sill0, range0])
        lower = np.array([1e-12, 1e-6])
        upper = np.array([np.inf, max_range])

        def residuals(params: np.ndarray) -> np.ndarray:
            sill, rng_ = params
            return w * (func(lags, sill, rng_, 0.0) - values)

    result = least_squares(residuals, x0=x0, bounds=(lower, upper), method="trf", max_nfev=2000)
    if fit_nugget:
        sill, rng_, nugget = result.x
    else:
        (sill, rng_), nugget = result.x, 0.0
    fitted_values = func(lags, sill, rng_, nugget)
    rmse = float(np.sqrt(np.mean((fitted_values - values) ** 2)))
    return FittedVariogram(
        model=model,
        sill=float(sill),
        range=float(rng_),
        nugget=float(nugget),
        rmse=rmse,
        converged=bool(result.success),
    )


def estimate_variogram_range(
    field: np.ndarray,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
    fit_nugget: bool = False,
) -> float:
    """Estimate the (global) variogram range of a 2D field.

    This is the "Estimated global variogram range" of the paper's
    Figures 3 and 4: empirical variogram via Eq. (1), then a least-squares
    fit of the squared-exponential model, returning the fitted range ``a``.
    """

    variogram = empirical_variogram(field, config=config)
    fitted = fit_variogram(variogram, model=model, fit_nugget=fit_nugget)
    return fitted.range
