"""Correlation statistics of 2D fields.

This subpackage implements the statistical toolbox the paper uses to
characterise correlation structure:

* :mod:`repro.stats.variogram` -- empirical isotropic semi-variogram
  (Matheron estimator, paper Eq. 1), with exact pair enumeration for small
  fields and random pair subsampling for large ones.
* :mod:`repro.stats.variogram_models` -- parametric variogram models
  (squared-exponential as in the paper, plus exponential/spherical) and
  least-squares fitting to estimate the variogram *range*.
* :mod:`repro.stats.windows` -- tiling of a field into HxH windows.
* :mod:`repro.stats.local` -- local (windowed) variogram ranges and their
  standard deviation ("Std of estimated local variogram range (H=32)").
* :mod:`repro.stats.svd` -- local SVD truncation levels (number of singular
  modes capturing 99% of variance) and their standard deviation.
* :mod:`repro.stats.entropy` -- Shannon entropy of quantized fields (the
  classical lossless compressibility bound, used by the baselines).
* :mod:`repro.stats.correlation` -- autocorrelation-function based
  correlation length estimators (an independent cross-check of the
  variogram range).
"""

from repro.stats.variogram import (
    EmpiricalVariogram,
    VariogramConfig,
    empirical_variogram,
)
from repro.stats.variogram_models import (
    FittedVariogram,
    VariogramModel,
    exponential_variogram,
    fit_variogram,
    gaussian_variogram,
    spherical_variogram,
    estimate_variogram_range,
)
from repro.stats.windows import field_windows, window_grid_shape
from repro.stats.local import (
    LocalVariogramResult,
    local_variogram_ranges,
    std_local_variogram_range,
)
from repro.stats.svd import (
    LocalSVDResult,
    local_svd_truncation_levels,
    std_local_svd_truncation,
    svd_truncation_level,
)
from repro.stats.entropy import quantized_entropy, shannon_entropy
from repro.stats.correlation import acf_correlation_length, autocorrelation_1d
from repro.stats.wavelet import (
    WaveletEnergySummary,
    haar_transform_2d,
    inverse_haar_transform_2d,
    std_local_wavelet_slope,
    wavelet_decompose,
    wavelet_energy_statistics,
)
from repro.stats.variogram3d import (
    anisotropy_ratio,
    directional_variogram,
    empirical_variogram_3d,
    estimate_variogram_range_3d,
)

__all__ = [
    "EmpiricalVariogram",
    "VariogramConfig",
    "empirical_variogram",
    "FittedVariogram",
    "VariogramModel",
    "gaussian_variogram",
    "exponential_variogram",
    "spherical_variogram",
    "fit_variogram",
    "estimate_variogram_range",
    "field_windows",
    "window_grid_shape",
    "LocalVariogramResult",
    "local_variogram_ranges",
    "std_local_variogram_range",
    "LocalSVDResult",
    "svd_truncation_level",
    "local_svd_truncation_levels",
    "std_local_svd_truncation",
    "shannon_entropy",
    "quantized_entropy",
    "autocorrelation_1d",
    "acf_correlation_length",
    "WaveletEnergySummary",
    "haar_transform_2d",
    "inverse_haar_transform_2d",
    "wavelet_decompose",
    "wavelet_energy_statistics",
    "std_local_wavelet_slope",
    "directional_variogram",
    "anisotropy_ratio",
    "empirical_variogram_3d",
    "estimate_variogram_range_3d",
]
