"""Empirical (semi-)variogram estimation for 2D gridded fields.

The paper's Eq. (1) is the classical Matheron estimator

.. math::

    \\gamma(h) = \\frac{1}{2 N(h)} \\sum_{|x_i - x_j| = h} (z(x_i) - z(x_j))^2

computed over grid-point pairs at (binned) Euclidean distance ``h``.

Two estimation strategies are provided:

``method="fft"`` (default)
    Exact enumeration of *all* pairs using FFT-based cross-correlations.
    For a gridded field the sum of squared differences at every integer
    offset ``(di, dj)`` can be written with three correlation surfaces
    (``corr(z, z)``, ``corr(z^2, 1)``, ``corr(1, z^2)``), each computable in
    O(N log N).  Offsets are then binned by their Euclidean length.  This is
    both faster and statistically better (no sampling noise) than pair
    subsampling and is what the library uses everywhere by default.

``method="pairs"``
    Monte-Carlo subsampling of point pairs, the approach typically used for
    scattered (non-gridded) data; kept as an independent cross-check and for
    the ablation study on estimator sampling
    (``benchmarks/test_ablation_variogram_sampling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.signal import fftconvolve

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_2d, ensure_float_array, ensure_in, ensure_positive

__all__ = ["VariogramConfig", "EmpiricalVariogram", "empirical_variogram"]


@dataclass(frozen=True)
class VariogramConfig:
    """Configuration of the empirical variogram estimator.

    Attributes
    ----------
    max_lag:
        Largest pair distance considered.  ``None`` uses half the smaller
        field dimension, the standard geostatistical rule of thumb (beyond
        that the number of available pairs collapses and the estimate is
        noisy).
    bin_width:
        Width of the distance bins; 1.0 gives (approximately) one bin per
        integer lag on a unit grid.
    method:
        ``"fft"`` or ``"pairs"`` (see module docstring).
    n_pairs:
        Number of random pairs drawn when ``method="pairs"``.
    min_pairs_per_bin:
        Bins with fewer pairs than this are dropped from the output.
    """

    max_lag: Optional[float] = None
    bin_width: float = 1.0
    method: str = "fft"
    n_pairs: int = 100_000
    min_pairs_per_bin: int = 1

    def __post_init__(self) -> None:
        if self.max_lag is not None:
            ensure_positive(self.max_lag, "max_lag")
        ensure_positive(self.bin_width, "bin_width")
        ensure_in(self.method, ("fft", "pairs"), "method")
        ensure_positive(self.n_pairs, "n_pairs")
        ensure_positive(self.min_pairs_per_bin, "min_pairs_per_bin")


@dataclass(frozen=True)
class EmpiricalVariogram:
    """Result of an empirical variogram estimation.

    Attributes
    ----------
    lags:
        Centre distance of each bin.
    values:
        Semi-variogram value :math:`\\gamma(h)` per bin.
    pair_counts:
        Number of point pairs contributing to each bin.
    field_variance:
        Sample variance of the field, a natural reference for the sill.
    """

    lags: np.ndarray
    values: np.ndarray
    pair_counts: np.ndarray
    field_variance: float

    def __post_init__(self) -> None:
        if not (len(self.lags) == len(self.values) == len(self.pair_counts)):
            raise ValueError("lags, values and pair_counts must have equal length")

    @property
    def n_bins(self) -> int:
        return len(self.lags)


def _resolve_max_lag(shape: Tuple[int, int], max_lag: Optional[float]) -> float:
    if max_lag is not None:
        return float(max_lag)
    return float(min(shape) // 2)


def _variogram_fft(field: np.ndarray, config: VariogramConfig) -> EmpiricalVariogram:
    field = ensure_float_array(field, "field")
    rows, cols = field.shape
    max_lag = _resolve_max_lag(field.shape, config.max_lag)
    field_variance = float(field.var())
    # Squared differences are shift invariant; removing the mean first keeps
    # the FFT cancellation error small (a constant field yields exactly 0).
    field = field - field.mean()

    ones = np.ones_like(field)
    sq = field * field
    flipped = field[::-1, ::-1]
    flipped_sq = sq[::-1, ::-1]
    flipped_ones = ones[::-1, ::-1]

    # Full cross-correlation surfaces over offsets di in [-(rows-1), rows-1],
    # dj in [-(cols-1), cols-1].
    corr_zz = fftconvolve(field, flipped, mode="full")
    corr_sq_one = fftconvolve(sq, flipped_ones, mode="full")
    corr_one_sq = fftconvolve(ones, flipped_sq, mode="full")
    pair_count = fftconvolve(ones, flipped_ones, mode="full")

    # Sum over valid positions of (z(x) - z(x+d))^2 for every offset d.
    sq_diff = corr_sq_one + corr_one_sq - 2.0 * corr_zz
    pair_count = np.rint(pair_count)

    di = np.arange(-(rows - 1), rows)[:, None]
    dj = np.arange(-(cols - 1), cols)[None, :]
    dist = np.sqrt(di.astype(np.float64) ** 2 + dj.astype(np.float64) ** 2)

    # The correlation surfaces are symmetric in the offset sign; keep one
    # half-plane so every unordered point pair is counted exactly once.
    half_plane = (di > 0) | ((di == 0) & (dj > 0))
    mask = half_plane & (dist > 0) & (dist <= max_lag) & (pair_count > 0)
    distances = dist[mask]
    sums = np.clip(sq_diff[mask], 0.0, None)  # clip FFT round-off
    counts = pair_count[mask]

    n_bins = int(np.ceil(max_lag / config.bin_width))
    bin_index = np.minimum((distances / config.bin_width).astype(np.int64), n_bins - 1)
    bin_sums = np.bincount(bin_index, weights=sums, minlength=n_bins)
    bin_counts = np.bincount(bin_index, weights=counts, minlength=n_bins)
    bin_dist_sum = np.bincount(bin_index, weights=distances * counts, minlength=n_bins)

    valid = bin_counts >= config.min_pairs_per_bin
    gamma = np.zeros(n_bins)
    gamma[valid] = bin_sums[valid] / (2.0 * bin_counts[valid])
    lag_centres = np.zeros(n_bins)
    lag_centres[valid] = bin_dist_sum[valid] / bin_counts[valid]

    return EmpiricalVariogram(
        lags=lag_centres[valid],
        values=gamma[valid],
        pair_counts=bin_counts[valid].astype(np.int64),
        field_variance=field_variance,
    )


def _variogram_pairs(
    field: np.ndarray, config: VariogramConfig, seed: SeedLike = None
) -> EmpiricalVariogram:
    field = ensure_float_array(field, "field")
    rows, cols = field.shape
    max_lag = _resolve_max_lag(field.shape, config.max_lag)
    rng = make_rng(seed)

    n_points = rows * cols
    n_pairs = int(min(config.n_pairs, n_points * (n_points - 1) // 2))
    idx_a = rng.integers(0, n_points, size=n_pairs)
    idx_b = rng.integers(0, n_points, size=n_pairs)
    keep = idx_a != idx_b
    idx_a, idx_b = idx_a[keep], idx_b[keep]

    ra, ca = np.divmod(idx_a, cols)
    rb, cb = np.divmod(idx_b, cols)
    dist = np.sqrt((ra - rb) ** 2.0 + (ca - cb) ** 2.0)
    in_range = (dist > 0) & (dist <= max_lag)
    dist = dist[in_range]
    za = field[ra[in_range], ca[in_range]]
    zb = field[rb[in_range], cb[in_range]]
    sq_diff = (za - zb) ** 2

    n_bins = int(np.ceil(max_lag / config.bin_width))
    # repro-lint: disable=unsafe-cast -- lag distances are norms of finite integer grid offsets and bin_width is validated positive
    bin_index = np.minimum((dist / config.bin_width).astype(np.int64), n_bins - 1)
    bin_sums = np.bincount(bin_index, weights=sq_diff, minlength=n_bins)
    bin_counts = np.bincount(bin_index, minlength=n_bins)
    bin_dist_sum = np.bincount(bin_index, weights=dist, minlength=n_bins)

    valid = bin_counts >= config.min_pairs_per_bin
    gamma = np.zeros(n_bins)
    gamma[valid] = bin_sums[valid] / (2.0 * bin_counts[valid])
    lag_centres = np.zeros(n_bins)
    lag_centres[valid] = bin_dist_sum[valid] / bin_counts[valid]

    return EmpiricalVariogram(
        lags=lag_centres[valid],
        values=gamma[valid],
        pair_counts=bin_counts[valid].astype(np.int64),
        field_variance=float(field.var()),
    )


def empirical_variogram(
    field: np.ndarray,
    config: VariogramConfig | None = None,
    seed: SeedLike = None,
) -> EmpiricalVariogram:
    """Estimate the empirical semi-variogram of a 2D field.

    Parameters
    ----------
    field:
        2D array of the studied variable (e.g. a velocityx slice).
    config:
        Estimator configuration; defaults to the exact FFT method with unit
        lag bins up to half the smaller field dimension.
    seed:
        Only used by the ``"pairs"`` method for pair subsampling.
    """

    field = ensure_2d(field, "field")
    config = config or VariogramConfig()
    if min(field.shape) < 2:
        raise ValueError("field must be at least 2x2 to form point pairs")
    if config.method == "fft":
        return _variogram_fft(field, config)
    return _variogram_pairs(field, config, seed=seed)
