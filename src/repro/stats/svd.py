"""Local SVD truncation-level statistics.

The paper's "multiscale" statistic: every ``H x H`` window is decomposed
with an SVD and the number of singular modes needed to capture 99 % of the
window's variance (energy) is recorded; the **standard deviation of that
truncation level across windows** — "Std of truncation level of local SVD
(H=32)" — summarises the diversity of local complexity.  Windows that need
many modes are locally rough / information-rich and hence less
compressible, so the paper expects a mostly decreasing relationship between
compression ratio and this statistic (Figures 6 and 7, right column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.windows import field_windows, window_grid_shape
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = [
    "svd_truncation_level",
    "LocalSVDResult",
    "local_svd_truncation_levels",
    "std_local_svd_truncation",
]


def svd_truncation_level(
    window: np.ndarray, energy_fraction: float = 0.99, *, center: bool = True
) -> int:
    """Number of singular modes needed to capture ``energy_fraction`` of variance.

    Parameters
    ----------
    window:
        2D array (one window of the field).
    energy_fraction:
        Target fraction of the total squared singular value mass
        (0.99 in the paper).
    center:
        Subtract the window mean first so the statistic measures variance
        structure rather than the mean offset (which a single rank-1 mode
        would otherwise absorb).
    """

    window = ensure_2d(window, "window")
    if not 0.0 < energy_fraction <= 1.0:
        raise ValueError("energy_fraction must be in (0, 1]")
    data = np.asarray(window, dtype=np.float64)
    if center:
        data = data - data.mean()
    # Constant window: zero variance, a single mode (trivially) suffices.
    if float(np.abs(data).max(initial=0.0)) < 1e-300:
        return 1
    singular_values = np.linalg.svd(data, compute_uv=False)
    energy = singular_values**2
    total = energy.sum()
    if total <= 0:
        return 1
    cumulative = np.cumsum(energy) / total
    return int(np.searchsorted(cumulative, energy_fraction) + 1)


@dataclass(frozen=True)
class LocalSVDResult:
    """Per-window SVD truncation levels and their summary statistics."""

    window: int
    energy_fraction: float
    levels: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.levels.mean()) if self.levels.size else float("nan")

    @property
    def std(self) -> float:
        """The paper's statistic: std of local SVD truncation levels."""

        return float(self.levels.std()) if self.levels.size else float("nan")

    @property
    def max(self) -> int:
        return int(self.levels.max()) if self.levels.size else 0

    @property
    def n_windows(self) -> int:
        return int(self.levels.size)


def local_svd_truncation_levels(
    field: np.ndarray,
    window: int = 32,
    energy_fraction: float = 0.99,
    *,
    center: bool = True,
) -> LocalSVDResult:
    """Compute the SVD truncation level for every complete ``window`` tile."""

    field = ensure_2d(field, "field")
    ensure_positive(window, "window")
    grid = window_grid_shape(field.shape, window)
    if grid[0] == 0 or grid[1] == 0:
        raise ValueError(
            f"field shape {field.shape} has no complete {window}x{window} windows"
        )
    levels = np.zeros(grid, dtype=np.int64)
    for (wi, wj), tile in field_windows(field, window):
        levels[wi, wj] = svd_truncation_level(
            tile, energy_fraction=energy_fraction, center=center
        )
    return LocalSVDResult(window=window, energy_fraction=energy_fraction, levels=levels)


def std_local_svd_truncation(
    field: np.ndarray,
    window: int = 32,
    energy_fraction: float = 0.99,
    *,
    center: bool = True,
) -> float:
    """The paper's statistic: std of the windowed SVD truncation levels."""

    return local_svd_truncation_levels(
        field, window, energy_fraction, center=center
    ).std
