"""Local (windowed) variogram statistics.

The global variogram range summarises an *average* correlation range of the
whole field; it cannot express spatial heterogeneity or the coexistence of
several correlation scales.  The paper therefore estimates the variogram
range inside every ``H x H`` window tiling the field (H = 32) and reports
the **standard deviation of the local ranges** — "Std estimated of local
variogram range (H=32)" — as a measure of the spatial diversity of local
correlation.  That statistic is the x-axis of Figure 5 and the left column
of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.stats.variogram import VariogramConfig, empirical_variogram
from repro.stats.variogram_models import fit_variogram
from repro.stats.windows import field_windows, window_grid_shape
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = ["LocalVariogramResult", "local_variogram_ranges", "std_local_variogram_range"]


@dataclass(frozen=True)
class LocalVariogramResult:
    """Per-window variogram ranges and their summary statistics.

    Attributes
    ----------
    window:
        Window size H used for the tiling.
    ranges:
        2D array of fitted ranges, one per complete window (NaN where the
        fit failed or the window was degenerate, e.g. constant data).
    """

    window: int
    ranges: np.ndarray

    @property
    def valid_ranges(self) -> np.ndarray:
        """Fitted ranges with failed windows removed."""

        flat = self.ranges.ravel()
        return flat[np.isfinite(flat)]

    @property
    def mean(self) -> float:
        """Mean local variogram range."""

        valid = self.valid_ranges
        return float(valid.mean()) if valid.size else float("nan")

    @property
    def std(self) -> float:
        """Standard deviation of the local variogram ranges (the paper's statistic)."""

        valid = self.valid_ranges
        return float(valid.std()) if valid.size else float("nan")

    @property
    def n_windows(self) -> int:
        return int(self.ranges.size)

    @property
    def n_failed(self) -> int:
        return int(np.count_nonzero(~np.isfinite(self.ranges)))


def local_variogram_ranges(
    field: np.ndarray,
    window: int = 32,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
) -> LocalVariogramResult:
    """Estimate the variogram range inside every complete ``window`` tile.

    Windows whose data are (numerically) constant carry no correlation
    information and yield NaN; they are excluded from the summary
    statistics, mirroring how degenerate windows are dropped in practice.
    """

    field = ensure_2d(field, "field")
    ensure_positive(window, "window")
    grid = window_grid_shape(field.shape, window)
    if grid[0] == 0 or grid[1] == 0:
        raise ValueError(
            f"field shape {field.shape} has no complete {window}x{window} windows"
        )
    if config is None:
        # Local windows are small; a max lag of half the window keeps enough
        # pairs per bin for a stable fit.
        config = VariogramConfig(max_lag=window / 2.0, bin_width=1.0)

    ranges = np.full(grid, np.nan)
    for (wi, wj), tile in field_windows(field, window):
        tile_values = np.asarray(tile, dtype=np.float64)
        if float(tile_values.std()) < 1e-15:
            continue
        try:
            variogram = empirical_variogram(tile_values, config=config)
            fitted = fit_variogram(variogram, model=model)
        except (ValueError, RuntimeError):
            continue
        ranges[wi, wj] = fitted.range
    return LocalVariogramResult(window=window, ranges=ranges)


def std_local_variogram_range(
    field: np.ndarray,
    window: int = 32,
    *,
    model: str = "gaussian",
    config: Optional[VariogramConfig] = None,
) -> float:
    """The paper's local statistic: std of the windowed variogram ranges."""

    return local_variogram_ranges(field, window, model=model, config=config).std
