"""Autocorrelation-based correlation-length estimators.

An independent (non-variogram) estimate of the spatial correlation scale,
used in the test suite as a cross-check of the variogram range estimator
and available to users who prefer ACF-based summaries.  For a field with
squared-exponential correlation ``exp(-h^2/a^2)`` the lag at which the ACF
drops to ``1/e`` equals ``a``; the e-folding estimator below exploits that.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import ensure_2d, ensure_float_array

__all__ = ["autocorrelation_1d", "acf_correlation_length"]


def autocorrelation_1d(values: np.ndarray, max_lag: Optional[int] = None) -> np.ndarray:
    """Sample autocorrelation of a 1D sequence for lags ``0..max_lag``.

    Uses the FFT-based estimator normalised by the lag-0 value, with the
    mean removed.
    """

    arr = ensure_float_array(values, "values").ravel()
    n = arr.size
    if n < 2:
        raise ValueError("need at least 2 samples for an autocorrelation")
    if max_lag is None:
        max_lag = n // 2
    max_lag = int(min(max_lag, n - 1))
    centered = arr - arr.mean()
    # FFT-based full autocovariance.
    nfft = int(2 ** np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, nfft)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), nfft)[: max_lag + 1]
    if acov[0] <= 0:
        return np.concatenate(([1.0], np.zeros(max_lag)))
    return acov / acov[0]


def acf_correlation_length(field: np.ndarray, axis: int = 0, max_lag: Optional[int] = None) -> float:
    """E-folding correlation length of a 2D field along ``axis``.

    The ACF is averaged over all 1D slices along the chosen axis; the
    correlation length is the (linearly interpolated) lag at which the
    averaged ACF first drops below ``1/e``.  Returns ``max_lag`` when the
    ACF never drops below the threshold within the computed lags (a very
    smooth field).
    """

    field = ensure_2d(field, "field")
    if axis not in (0, 1):
        raise ValueError("axis must be 0 or 1")
    data = field if axis == 1 else field.T
    n_series, length = data.shape
    if max_lag is None:
        max_lag = length // 2
    acfs = np.zeros(max_lag + 1)
    for series in data:
        acfs += autocorrelation_1d(series, max_lag)
    acfs /= n_series

    threshold = 1.0 / np.e
    below = np.nonzero(acfs < threshold)[0]
    if below.size == 0:
        return float(max_lag)
    k = int(below[0])
    if k == 0:
        return 0.0
    # Linear interpolation between lag k-1 and k.
    a0, a1 = acfs[k - 1], acfs[k]
    if a0 == a1:
        return float(k)
    frac = (a0 - threshold) / (a0 - a1)
    return float(k - 1 + frac)
