"""Run-length encoding of integer symbol streams.

Quantization-code streams produced from very smooth fields contain long
runs of the "perfect prediction" code; run-length coding those runs before
Huffman coding is a cheap win and mirrors the repetition-handling that Zstd
performs inside the real SZ pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["rle_encode", "rle_decode"]


def rle_encode(symbols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Encode ``symbols`` into ``(values, run_lengths)`` arrays.

    Both outputs are ``int64``; ``values[i]`` repeats ``run_lengths[i]``
    times.  An empty input yields two empty arrays.
    """

    arr = np.asarray(symbols).ravel()
    if arr.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    change = np.flatnonzero(np.diff(arr) != 0)
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [arr.size]))
    values = arr[starts].astype(np.int64)
    lengths = (ends - starts).astype(np.int64)
    return values, lengths


def rle_decode(values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""

    values = np.asarray(values, dtype=np.int64).ravel()
    run_lengths = np.asarray(run_lengths, dtype=np.int64).ravel()
    if values.shape != run_lengths.shape:
        raise ValueError("values and run_lengths must have the same shape")
    if values.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(run_lengths <= 0):
        raise ValueError("run lengths must be positive")
    return np.repeat(values, run_lengths)
