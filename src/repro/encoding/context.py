"""Cross-stream entropy contexts for halo-aware tiled compression.

When a volume (or chunked store array) is cut into independently coded
tiles, every tile pays its own entropy-coder bootstrap: short symbol
streams cannot amortise a Huffman symbol table, so they degrade to
fixed-width packing — measured on the 64^3 Miranda volume this stream
fragmentation, not lost prediction, is the bulk of the tiled-vs-untiled
compression-ratio gap for all three compressors.

An :class:`EntropyContext` is the fix: it summarises the symbol statistics
of an *already reconstructed* reference tile (its decoded backend streams,
pooled by symbol bit width) so a neighbouring tile can be entropy coded
against those statistics **without storing any table** — the decoder, which
by wavefront ordering has already decoded the reference tile, rebuilds the
exact same context and therefore the exact same canonical code.

Determinism contract
--------------------
Encoder and decoder must derive bit-identical contexts.  Both sides build
the context from the *final symbol arrays of the reference tile's backend
streams* — the encoder from the streams it just wrote, the decoder from the
streams it just decoded (they are identical by construction).  Pooling,
sorting and the escape-frequency rule below are pure functions of those
arrays.

Escape design
-------------
A context pool is a histogram over the reference alphabet.  The current
tile may contain symbols the reference never produced; those are coded as
a reserved ``ESCAPE`` codeword (frequency ``max(1, n_ref // 64)`` — heavy
enough to stay short, light enough not to distort the real code) followed
by the raw symbol value in a fixed-width side channel.  This keeps both
encode and decode fully vectorised: the main bit stream is a pure
canonical-Huffman stream over ``alphabet + {ESCAPE}``, and the escaped
values live in a separate packed array (exactly like the SZ container's
unpredictable-value side channel).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["EntropyContext", "ContextPool", "stream_width"]

#: Escape frequency divisor: the ESCAPE pseudo-symbol is charged
#: ``max(1, n_ref // ESCAPE_FREQUENCY_DIVISOR)`` counts in the code build.
ESCAPE_FREQUENCY_DIVISOR = 64


def stream_width(symbols: np.ndarray) -> int:
    """Pool key of a symbol stream: the bit width of its largest symbol."""

    if symbols.size == 0:
        return 0
    return max(int(symbols.max()).bit_length(), 1)


@dataclass(frozen=True)
class ContextPool:
    """One pooled histogram: the reference symbols of one bit width.

    ``symbols`` is strictly ascending; ``counts`` aligns with it.  The
    escape pseudo-symbol is ``symbols.max() + 1`` with frequency
    :func:`escape_count` — both derived, never stored.
    """

    symbols: np.ndarray  # int64, strictly ascending
    counts: np.ndarray  # int64, > 0, aligned with symbols

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def escape_symbol(self) -> int:
        return int(self.symbols[-1]) + 1

    @property
    def escape_count(self) -> int:
        return max(1, self.total // ESCAPE_FREQUENCY_DIVISOR)


class EntropyContext:
    """Per-bit-width pooled symbol statistics of one reference tile."""

    def __init__(self, pools: Dict[int, ContextPool]) -> None:
        self._pools = dict(pools)

    @classmethod
    def from_streams(cls, streams: Iterable[np.ndarray]) -> "EntropyContext":
        """Build the context from a tile's backend symbol streams.

        Streams are pooled by :func:`stream_width`; empty streams
        contribute nothing.  The same call on the encoder's written
        streams and on the decoder's decoded streams yields bit-identical
        pools (the streams themselves are identical).
        """

        by_width: Dict[int, list] = {}
        for stream in streams:
            arr = np.asarray(stream, dtype=np.int64).ravel()
            if arr.size == 0:
                continue
            by_width.setdefault(stream_width(arr), []).append(arr)
        pools: Dict[int, ContextPool] = {}
        for width, arrays in by_width.items():
            merged = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
            symbols, counts = np.unique(merged, return_counts=True)
            pools[width] = ContextPool(
                symbols=symbols.astype(np.int64), counts=counts.astype(np.int64)
            )
        return cls(pools)

    def pool(self, width: int) -> Optional[ContextPool]:
        """The pooled histogram for ``width``, or ``None`` when absent."""

        return self._pools.get(width)

    @property
    def widths(self) -> Tuple[int, ...]:
        return tuple(sorted(self._pools))

    def digest(self) -> str:
        """Stable content hash (cache keys must distinguish contexts)."""

        h = hashlib.sha1()
        for width in sorted(self._pools):
            pool = self._pools[width]
            h.update(width.to_bytes(4, "little"))
            h.update(np.ascontiguousarray(pool.symbols).tobytes())
            h.update(np.ascontiguousarray(pool.counts).tobytes())
        return h.hexdigest()

    def __bool__(self) -> bool:
        return bool(self._pools)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EntropyContext(widths={self.widths})"
