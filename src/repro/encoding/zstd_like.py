"""Zstd-like lossless backend: LZ77 dictionary coding + Huffman entropy coding.

The real SZ and MGARD hand their quantized streams to Zstd (or Zlib).  This
module provides a from-scratch stand-in with the same two stages:

1. :func:`repro.encoding.lz77.lz77_compress` finds back-references with the
   vectorized match finder and returns an *array* sequence stream,
2. the per-sequence arrays (literal run lengths, match lengths, split
   distance bytes) and the literal bytes are each entropy coded with the
   canonical Huffman coder — five array encodes, no per-token Python loop.

The container layout is::

    varint  n_sequences
    varint  n_literals            # all literal bytes incl. the trailing run
    blob    Huffman(literal_lengths)
    blob    Huffman(match_lengths - MIN_MATCH)
    blob    Huffman(distances >> 8)
    blob    Huffman(distances & 0xFF)
    blob    Huffman(literals)

Decoding rebuilds the :class:`repro.encoding.lz77.LZ77Sequences` arrays and
hands them to :func:`repro.encoding.lz77.lz77_decompress`, which validates
every token field before producing output.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.encoding.lz77 import _MIN_MATCH, LZ77Sequences, lz77_compress, lz77_decompress
from repro.encoding.varint import decode_varint, encode_varint

__all__ = ["zstd_like_compress", "zstd_like_decompress"]


def _append_blob(out: bytearray, blob: bytes) -> None:
    out.extend(encode_varint(len(blob)))
    out.extend(blob)


def _read_blob(data: bytes, pos: int) -> tuple:
    size, pos = decode_varint(data, pos)
    blob = data[pos : pos + size]
    if len(blob) < size:
        raise EOFError("truncated blob")
    return blob, pos + size


def zstd_like_compress(data: bytes) -> bytes:
    """Compress a byte string with the LZ77+Huffman pipeline."""

    seqs = lz77_compress(bytes(data))
    out = bytearray()
    out.extend(encode_varint(seqs.n_sequences))
    out.extend(encode_varint(int(seqs.literals.size)))
    _append_blob(out, huffman_encode(seqs.literal_lengths))
    _append_blob(out, huffman_encode(seqs.match_lengths - _MIN_MATCH))
    _append_blob(out, huffman_encode(seqs.distances >> 8))
    _append_blob(out, huffman_encode(seqs.distances & 0xFF))
    _append_blob(out, huffman_encode(seqs.literals))
    return bytes(out)


def zstd_like_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`zstd_like_compress`."""

    n_sequences, pos = decode_varint(blob, 0)
    n_literals, pos = decode_varint(blob, pos)
    lit_lens_blob, pos = _read_blob(blob, pos)
    match_lens_blob, pos = _read_blob(blob, pos)
    dist_high_blob, pos = _read_blob(blob, pos)
    dist_low_blob, pos = _read_blob(blob, pos)
    literals_blob, pos = _read_blob(blob, pos)

    literal_lengths = huffman_decode(lit_lens_blob)
    match_lengths = huffman_decode(match_lens_blob) + _MIN_MATCH
    dist_high = huffman_decode(dist_high_blob)
    dist_low = huffman_decode(dist_low_blob)
    literals = huffman_decode(literals_blob)

    if not (
        literal_lengths.size == n_sequences
        and match_lengths.size == n_sequences
        and dist_high.size == n_sequences
        and dist_low.size == n_sequences
    ):
        raise ValueError("sequence count mismatch in zstd-like container")
    if literals.size != n_literals:
        raise ValueError("literal count mismatch in zstd-like container")
    if literals.size and (int(literals.min()) < 0 or int(literals.max()) > 0xFF):
        raise ValueError("literal symbols outside byte range in zstd-like container")

    seqs = LZ77Sequences(
        literals=literals.astype(np.uint8),
        literal_lengths=literal_lengths,
        match_lengths=match_lengths,
        distances=(dist_high << 8) | dist_low,
    )
    return lz77_decompress(seqs)
