"""Zstd-like lossless backend: LZ77 dictionary coding + Huffman entropy coding.

The real SZ and MGARD hand their quantized streams to Zstd (or Zlib).  This
module provides a from-scratch stand-in with the same two stages:

1. :func:`repro.encoding.lz77.lz77_compress` finds back-references,
2. the resulting literals, match lengths and distances are entropy coded
   with the canonical Huffman coder.

The container layout is::

    varint  n_tokens
    blob    Huffman(flags)        # 0 = literal, 1 = match
    blob    Huffman(literals)
    blob    Huffman(lengths)      # only match tokens
    blob    Huffman(dist_high)    # distance >> 8
    blob    Huffman(dist_low)     # distance & 0xFF

Because the LZ77 stage is pure Python it is noticeably slower than the
NumPy-vectorised RLE+Huffman backend; the compressors therefore default to
the latter and expose this one as the ``"zstd"`` backend option (exercised
by the ablation benchmark and the test suite).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.encoding.lz77 import LZ77Token, lz77_compress, lz77_decompress
from repro.encoding.varint import decode_varint, encode_varint

__all__ = ["zstd_like_compress", "zstd_like_decompress"]


def _append_blob(out: bytearray, blob: bytes) -> None:
    out.extend(encode_varint(len(blob)))
    out.extend(blob)


def _read_blob(data: bytes, pos: int) -> tuple:
    size, pos = decode_varint(data, pos)
    blob = data[pos : pos + size]
    if len(blob) < size:
        raise EOFError("truncated blob")
    return blob, pos + size


def zstd_like_compress(data: bytes) -> bytes:
    """Compress a byte string with the LZ77+Huffman pipeline."""

    tokens = lz77_compress(bytes(data))
    flags: List[int] = []
    literals: List[int] = []
    lengths: List[int] = []
    dist_high: List[int] = []
    dist_low: List[int] = []
    for token in tokens:
        if token.is_literal:
            flags.append(0)
            literals.append(int(token.literal))  # type: ignore[arg-type]
        else:
            flags.append(1)
            lengths.append(token.length)
            dist_high.append(token.distance >> 8)
            dist_low.append(token.distance & 0xFF)

    out = bytearray()
    out.extend(encode_varint(len(tokens)))
    _append_blob(out, huffman_encode(flags))
    _append_blob(out, huffman_encode(literals))
    _append_blob(out, huffman_encode(lengths))
    _append_blob(out, huffman_encode(dist_high))
    _append_blob(out, huffman_encode(dist_low))
    return bytes(out)


def zstd_like_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`zstd_like_compress`."""

    n_tokens, pos = decode_varint(blob, 0)
    flags_blob, pos = _read_blob(blob, pos)
    literals_blob, pos = _read_blob(blob, pos)
    lengths_blob, pos = _read_blob(blob, pos)
    dist_high_blob, pos = _read_blob(blob, pos)
    dist_low_blob, pos = _read_blob(blob, pos)

    flags = huffman_decode(flags_blob)
    literals = huffman_decode(literals_blob)
    lengths = huffman_decode(lengths_blob)
    dist_high = huffman_decode(dist_high_blob)
    dist_low = huffman_decode(dist_low_blob)

    if flags.size != n_tokens:
        raise ValueError("token count mismatch in zstd-like container")

    tokens: List[LZ77Token] = []
    lit_i = match_i = 0
    for flag in flags:
        if flag == 0:
            tokens.append(LZ77Token(literal=int(literals[lit_i])))
            lit_i += 1
        else:
            distance = (int(dist_high[match_i]) << 8) | int(dist_low[match_i])
            tokens.append(LZ77Token(distance=distance, length=int(lengths[match_i])))
            match_i += 1
    return lz77_decompress(tokens)
