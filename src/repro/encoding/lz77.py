"""Greedy LZ77 match finding with a hash chain.

This is the dictionary-coding half of the Zstd-like lossless backend
(:mod:`repro.encoding.zstd_like`).  The format is a token stream:

* a literal token carries one byte,
* a match token carries ``(distance, length)`` referring back into the
  already-decoded output.

Match finding uses a classic hash-chain over 3-byte prefixes with a bounded
chain walk so worst-case behaviour stays linear-ish.  The goal here is not
to rival Zstd's speed but to provide a faithful dictionary+entropy coding
stage whose output size responds to redundancy in the byte stream the same
way Zstd's does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["LZ77Token", "lz77_compress", "lz77_decompress"]

_MIN_MATCH = 4
_MAX_MATCH = 258
_WINDOW = 1 << 15
_MAX_CHAIN = 32


@dataclass(frozen=True)
class LZ77Token:
    """A single LZ77 token: either a literal byte or a back-reference."""

    literal: Optional[int] = None
    distance: int = 0
    length: int = 0

    @property
    def is_literal(self) -> bool:
        return self.literal is not None


def _hash3(data: bytes, pos: int) -> int:
    return ((data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]) & 0xFFFF


def lz77_compress(data: bytes) -> List[LZ77Token]:
    """Tokenise ``data`` into a list of literals and matches."""

    data = bytes(data)
    n = len(data)
    tokens: List[LZ77Token] = []
    if n == 0:
        return tokens

    head: List[int] = [-1] * 0x10000
    prev: List[int] = [-1] * n
    pos = 0
    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + _MIN_MATCH <= n:
            h = _hash3(data, pos)
            candidate = head[h]
            chain = 0
            while candidate >= 0 and pos - candidate <= _WINDOW and chain < _MAX_CHAIN:
                # Extend the match.
                length = 0
                max_len = min(_MAX_MATCH, n - pos)
                while length < max_len and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= _MAX_MATCH:
                        break
                candidate = prev[candidate]
                chain += 1

        if best_len >= _MIN_MATCH:
            tokens.append(LZ77Token(distance=best_dist, length=best_len))
            end = min(pos + best_len, n - 2)
            step = pos
            while step < end:
                h = _hash3(data, step)
                prev[step] = head[h]
                head[h] = step
                step += 1
            pos += best_len
        else:
            tokens.append(LZ77Token(literal=data[pos]))
            if pos + _MIN_MATCH <= n:
                h = _hash3(data, pos)
                prev[pos] = head[h]
                head[h] = pos
            pos += 1
    return tokens


def lz77_decompress(tokens: List[LZ77Token]) -> bytes:
    """Reconstruct the byte stream from a token list."""

    out = bytearray()
    for token in tokens:
        if token.is_literal:
            out.append(token.literal)  # type: ignore[arg-type]
        else:
            if token.distance <= 0 or token.distance > len(out):
                raise ValueError(
                    f"invalid back-reference distance {token.distance} at output size {len(out)}"
                )
            start = len(out) - token.distance
            for i in range(token.length):
                out.append(out[start + i])
    return bytes(out)
