"""NumPy-vectorized greedy LZ77 match finding.

This is the dictionary-coding half of the Zstd-like lossless backend
(:mod:`repro.encoding.zstd_like`).  The token stream is Zstd's *sequence*
layout instead of a per-token dataclass list: every sequence is a literal
run followed by one back-reference match, and the literal bytes of all
runs (plus the trailing run after the last match) live in a single
contiguous array (:class:`LZ77Sequences`).

Match finding is array work end to end:

* the exact 4-byte prefix at every position is packed into a ``uint32``
  key (an exact key, so candidates never need a collision check);
* a stable argsort groups equal keys while keeping positions in increasing
  order, which yields the most recent — and second most recent — previous
  occurrence of every prefix in two gathers (a depth-2 "hash chain" built
  entirely with array ops);
* match lengths are extended 16 bytes per round over the still-active
  pairs via ``sliding_window_view`` comparisons, so the worst case is
  ``_MAX_MATCH / 16`` vectorized rounds rather than a per-byte loop;
* the greedy parse walks precomputed match positions only (bulk literal
  runs in between), so its Python loop runs once per *emitted match*, not
  once per byte.

The goal is not to rival Zstd's speed but to provide a faithful
dictionary+entropy coding stage whose output size responds to redundancy
in the byte stream the same way Zstd's does — fast enough that the
lossless-backend ablation is no longer the harness long-pole.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = ["LZ77Sequences", "lz77_compress", "lz77_decompress"]

_MIN_MATCH = 4
_MAX_MATCH = 258
_WINDOW = 1 << 15
#: Bytes compared per vectorized extension round.
_EXTEND_CHUNK = 16
#: Minimum ready-match count per decode round before the bulk gather pays
#: for its index building; smaller rounds use the per-match copy.
_BULK_COPY_THRESHOLD = 48
#: Longest match handled by the bulk gather; longer copies are contiguous
#: slice copies (memcpy), which beat fancy indexing per byte.
_BULK_MAX_MATCH = 32


@dataclass(frozen=True)
class LZ77Sequences:
    """Array-form LZ77 token stream (Zstd's sequence layout).

    Sequence ``k`` consumes ``literal_lengths[k]`` bytes from ``literals``
    and then copies ``match_lengths[k]`` bytes from ``distances[k]`` back
    in the decoded output.  Literal bytes left in ``literals`` after the
    last sequence form the trailing run.
    """

    literals: np.ndarray  # uint8 — all literal bytes, in stream order
    literal_lengths: np.ndarray  # int64 per sequence
    match_lengths: np.ndarray  # int64 per sequence, in [_MIN_MATCH, _MAX_MATCH]
    distances: np.ndarray  # int64 per sequence, in [1, _WINDOW]

    @property
    def n_sequences(self) -> int:
        return int(self.literal_lengths.size)

    @property
    def output_size(self) -> int:
        """Total decoded size: every literal byte plus every match byte."""

        return int(self.literals.size + self.match_lengths.sum())


def _empty_sequences(literals: np.ndarray) -> LZ77Sequences:
    return LZ77Sequences(
        literals=literals,
        literal_lengths=np.empty(0, dtype=np.int64),
        match_lengths=np.empty(0, dtype=np.int64),
        distances=np.empty(0, dtype=np.int64),
    )


def _prefix_candidates(data: np.ndarray):
    """Most recent and second most recent previous position sharing each
    position's exact 4-byte prefix (``-1`` where none exists)."""

    n = data.size
    u = data.astype(np.uint32)
    keys = u[: n - 3] | (u[1 : n - 2] << 8) | (u[2 : n - 1] << 16) | (u[3:] << 24)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    same1 = keys[order[1:]] == keys[order[:-1]]
    cand1 = np.full(n - 3, -1, dtype=np.int64)
    cand1[order[1:][same1]] = order[:-1][same1]
    cand2 = np.full(n - 3, -1, dtype=np.int64)
    same2 = same1[1:] & same1[:-1]
    cand2[order[2:][same2]] = order[:-2][same2]
    return cand1, cand2


def _extend_matches(
    windows: np.ndarray, pos: np.ndarray, cand: np.ndarray, cap: np.ndarray
) -> np.ndarray:
    """Common-prefix length of ``data[pos:]`` vs ``data[cand:]`` per pair.

    The first ``_MIN_MATCH`` bytes are already known equal (exact prefix
    keys); extension proceeds ``_EXTEND_CHUNK`` bytes per round over the
    pairs still matching, capped per pair at ``cap``.
    """

    length = np.minimum(np.full(pos.size, _MIN_MATCH, dtype=np.int64), cap)
    active = np.flatnonzero(length < cap)
    while active.size:
        p = pos[active] + length[active]
        c = cand[active] + length[active]
        mismatch = windows[p] != windows[c]
        adv = np.where(mismatch.any(axis=1), mismatch.argmax(axis=1), _EXTEND_CHUNK)
        np.minimum(adv, cap[active] - length[active], out=adv)
        length[active] += adv
        active = active[(adv == _EXTEND_CHUNK) & (length[active] < cap[active])]
    return length


def lz77_compress(data: bytes) -> LZ77Sequences:
    """Tokenise ``data`` into an array sequence stream (greedy parse)."""

    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    n = arr.size
    if n < _MIN_MATCH:
        return _empty_sequences(arr.copy())

    cand1, cand2 = _prefix_candidates(arr)
    positions = np.arange(n - 3, dtype=np.int64)
    cap = np.minimum(_MAX_MATCH, n - positions)

    padded = np.concatenate([arr, np.zeros(_EXTEND_CHUNK, dtype=np.uint8)])
    windows = np.lib.stride_tricks.sliding_window_view(padded, _EXTEND_CHUNK)

    best_len = np.zeros(n - 3, dtype=np.int64)
    best_dist = np.zeros(n - 3, dtype=np.int64)
    for cand in (cand2, cand1):  # cand1 last: prefer the nearer match on ties
        valid = (cand >= 0) & (positions - cand <= _WINDOW)
        idx = np.flatnonzero(valid)
        if not idx.size:
            continue
        lengths = _extend_matches(windows, positions[idx], cand[idx], cap[idx])
        better = lengths >= best_len[idx]
        take = idx[better]
        best_len[take] = lengths[better]
        best_dist[take] = positions[take] - cand[take]

    match_pos = np.flatnonzero(best_len >= _MIN_MATCH)
    if not match_pos.size:
        return _empty_sequences(arr.copy())

    # Greedy parse: one Python iteration per emitted match, bulk skips via
    # bisect over the precomputed match positions.
    mp = match_pos.tolist()
    ml = best_len[match_pos].tolist()
    md = best_dist[match_pos].tolist()
    lit_lens: list = []
    out_lens: list = []
    out_dists: list = []
    starts: list = []
    pos = 0
    i = 0
    nm = len(mp)
    while i < nm:
        m = mp[i]
        if m < pos:
            i = bisect.bisect_left(mp, pos, i + 1)
            continue
        length = ml[i]
        lit_lens.append(m - pos)
        out_lens.append(length)
        out_dists.append(md[i])
        starts.append(m)
        pos = m + length
        i += 1

    match_lengths = np.asarray(out_lens, dtype=np.int64)
    match_starts = np.asarray(starts, dtype=np.int64)
    covered = np.zeros(n + 1, dtype=np.int64)
    np.add.at(covered, match_starts, 1)
    np.add.at(covered, match_starts + match_lengths, -1)
    literals = arr[np.cumsum(covered[:-1]) == 0].copy()

    return LZ77Sequences(
        literals=literals,
        literal_lengths=np.asarray(lit_lens, dtype=np.int64),
        match_lengths=match_lengths,
        distances=np.asarray(out_dists, dtype=np.int64),
    )


def _validate_sequences(seqs: LZ77Sequences) -> None:
    """Reject malformed token fields before any output is produced.

    Token arrays typically arrive straight from a decoded (possibly
    corrupt) container, so every field is range-checked: a corrupt stream
    must raise a clear error instead of producing garbage.
    """

    ll = seqs.literal_lengths
    ml = seqs.match_lengths
    dd = seqs.distances
    if not (ll.size == ml.size == dd.size):
        raise ValueError(
            f"sequence arrays disagree in length: {ll.size} literal runs, "
            f"{ml.size} match lengths, {dd.size} distances"
        )
    if ll.size == 0:
        return
    if int(ll.min()) < 0:
        raise ValueError(f"negative literal run length {int(ll.min())}")
    if int(ml.min()) < _MIN_MATCH or int(ml.max()) > _MAX_MATCH:
        raise ValueError(
            f"match length outside [{_MIN_MATCH}, {_MAX_MATCH}]: "
            f"[{int(ml.min())}, {int(ml.max())}]"
        )
    if int(dd.min()) < 1 or int(dd.max()) > _WINDOW:
        raise ValueError(
            f"back-reference distance outside [1, {_WINDOW}]: "
            f"[{int(dd.min())}, {int(dd.max())}]"
        )
    if int(ll.sum()) > seqs.literals.size:
        raise ValueError(
            f"literal runs declare {int(ll.sum())} bytes but only "
            f"{seqs.literals.size} literal bytes are present"
        )
    # Every match must reference already-decoded output.
    out_before_match = np.cumsum(ll) + np.concatenate(([0], np.cumsum(ml)[:-1]))
    bad = dd > out_before_match
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"invalid back-reference distance {int(dd[k])} at output size "
            f"{int(out_before_match[k])} (sequence {k})"
        )


def lz77_decompress(seqs: LZ77Sequences) -> bytes:
    """Reconstruct the byte stream from an :class:`LZ77Sequences`.

    All literal bytes land in one vectorized scatter.  Matches are then
    split **once** into two classes by a vectorized coverage analysis:

    * *independent* matches, whose source range contains only literal
      bytes — those are final after the literal scatter, so all of them
      are executed together as one bulk gather/scatter (chunk-copied),
      regardless of their order;
    * *dependent* matches, whose source range overlaps some match's
      output — those genuinely form a sequential chain and are copied in
      stream order with contiguous slice copies (memcpy), exactly like
      the reference decoder.

    Long independent matches also take the slice path: a fancy-indexed
    copy costs ~10x more per byte than ``memcpy``, so bulk gathering only
    pays for the short-match swarm.  Streams with only a handful of
    matches skip the analysis entirely.
    """

    _validate_sequences(seqs)
    literals = np.ascontiguousarray(seqs.literals, dtype=np.uint8)
    ll = seqs.literal_lengths
    ml = np.asarray(seqs.match_lengths, dtype=np.int64)
    dd = np.asarray(seqs.distances, dtype=np.int64)
    if ll.size == 0:
        return literals.tobytes()

    total = seqs.output_size
    out = np.empty(total, dtype=np.uint8)

    lit_cum = np.cumsum(ll)
    match_cum = np.concatenate(([0], np.cumsum(ml)))
    run_lengths = np.concatenate([ll, [literals.size - int(lit_cum[-1])]])
    # Literal byte j goes to j + (total match bytes emitted before its run).
    out[np.repeat(match_cum, run_lengths) + np.arange(literals.size, dtype=np.int64)] = literals

    dests = lit_cum + match_cum[:-1]  # per match, in increasing order
    srcs = dests - dd

    sequential = None  # None = every match, in stream order
    if dests.size >= _BULK_COPY_THRESHOLD and 2 * literals.size >= total:
        # A match can only be independent if its source range lies wholly
        # in literal bytes, so the analysis below is gated on the stream
        # being literal-rich; match-dominated streams (long dependency
        # chains) go straight to the sequential path at zero extra cost.
        # Independence analysis in O(n log n) over the match list alone:
        # the destination intervals are disjoint and sorted, so a source
        # range ``[src, src + span)`` touches match output iff the last
        # interval starting before its end also ends after its start.  A
        # self-overlapping match (distance < length) only needs its period
        # ``[src, src + distance)`` final, read with a modular index.
        span = np.minimum(ml, dd)
        ends = dests + ml
        last = np.searchsorted(dests, srcs + span, side="left") - 1
        independent = (last < 0) | (ends[np.maximum(last, 0)] <= srcs)
        bulk = np.flatnonzero(independent & (ml <= _BULK_MAX_MATCH))
        if bulk.size >= _BULK_COPY_THRESHOLD:
            lengths = ml[bulk]
            offsets = np.arange(int(lengths.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            gather = np.repeat(srcs[bulk], lengths) + offsets % np.repeat(
                dd[bulk], lengths
            )
            scatter = np.repeat(dests[bulk], lengths) + offsets
            out[scatter] = out[gather]
            remaining = independent.copy()
            remaining[bulk] = False
            sequential = np.flatnonzero(~independent | remaining)

    if sequential is None:
        triples = zip(dests.tolist(), ml.tolist(), dd.tolist())
    else:
        triples = zip(
            dests[sequential].tolist(),
            ml[sequential].tolist(),
            dd[sequential].tolist(),
        )
    for pos, length, dist in triples:
        src = pos - dist
        if dist >= length:
            out[pos : pos + length] = out[src : src + length]
        else:
            reps = -(-length // dist)
            out[pos : pos + length] = np.tile(out[src:pos], reps)[:length]
    return out.tobytes()
