"""Lossless coding substrate.

The error-bounded lossy compressors reproduced in :mod:`repro.compressors`
all end with a lossless entropy-coding stage (the real SZ uses Huffman +
Zstd, MGARD uses Zlib/Zstd, ZFP uses an embedded bit-plane code).  This
subpackage implements that substrate from scratch:

* :mod:`repro.encoding.bitio` -- bit-level writer/reader used by the
  Huffman coder and the ZFP-like embedded coder.
* :mod:`repro.encoding.varint` -- LEB128-style variable-length integers for
  headers and side channels.
* :mod:`repro.encoding.huffman` -- canonical Huffman coding of integer
  symbol streams (quantization codes).
* :mod:`repro.encoding.rle` -- run-length coding of highly repetitive
  symbol streams (e.g. long runs of "exact prediction" codes).
* :mod:`repro.encoding.lz77` -- a NumPy-vectorized greedy LZ77 match
  finder (array-built prefix chains, chunked match extension, array
  sequence stream), the dictionary-coding half of the Zstd-like backend.
* :mod:`repro.encoding.zstd_like` -- LZ77 followed by Huffman coding of
  literals/lengths/distances; the stand-in for Zstd used as the final
  lossless stage of the SZ-like and MGARD-like compressors.
"""

from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import (
    HuffmanCode,
    huffman_decode,
    huffman_encode,
    huffman_code_lengths,
)
from repro.encoding.lz77 import LZ77Sequences, lz77_compress, lz77_decompress
from repro.encoding.rle import rle_decode, rle_encode
from repro.encoding.varint import (
    decode_signed_varint,
    decode_varint,
    encode_signed_varint,
    encode_varint,
)
from repro.encoding.zstd_like import zstd_like_compress, zstd_like_decompress

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCode",
    "huffman_encode",
    "huffman_decode",
    "huffman_code_lengths",
    "LZ77Sequences",
    "lz77_compress",
    "lz77_decompress",
    "rle_encode",
    "rle_decode",
    "encode_varint",
    "decode_varint",
    "encode_signed_varint",
    "decode_signed_varint",
    "zstd_like_compress",
    "zstd_like_decompress",
]
