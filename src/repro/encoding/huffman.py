"""Canonical Huffman coding of integer symbol streams.

The SZ-like compressor produces a stream of quantization codes whose
distribution is strongly peaked around the "perfect prediction" code; the
MGARD-like compressor produces quantized multilevel coefficients peaked
around zero.  Huffman coding of those streams is where the compression
ratio is actually realised, so this module is a genuine (if compact)
canonical Huffman implementation:

* code lengths are derived from a standard heap-based Huffman tree,
* codes are made *canonical* so the decoder only needs the code lengths,
* encoding is vectorised with NumPy (per-symbol code/length lookup followed
  by a single Python loop over the packed words).

The encoded container stores the symbol table (symbols + code lengths) with
varints, then the bit stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.encoding.varint import decode_varint, encode_varint

__all__ = ["HuffmanCode", "huffman_code_lengths", "huffman_encode", "huffman_decode"]

_MAX_CODE_LENGTH = 57  # keeps (code << length) within a 64-bit word during packing


def huffman_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Return the Huffman code length for every symbol with non-zero frequency.

    A single-symbol alphabet gets length 1 (a degenerate but decodable code).
    """

    symbols = [s for s, f in frequencies.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}

    # Heap items: (frequency, tie_breaker, [list of (symbol, depth)])
    heap: List[Tuple[int, int, List[Tuple[int, int]]]] = []
    for tie, sym in enumerate(sorted(symbols)):
        heapq.heappush(heap, (frequencies[sym], tie, [(sym, 0)]))
    tie = len(symbols)
    while len(heap) > 1:
        f1, _, group1 = heapq.heappop(heap)
        f2, _, group2 = heapq.heappop(heap)
        merged = [(s, d + 1) for s, d in group1] + [(s, d + 1) for s, d in group2]
        heapq.heappush(heap, (f1 + f2, tie, merged))
        tie += 1
    _, _, groups = heap[0]
    lengths = {sym: depth for sym, depth in groups}
    max_len = max(lengths.values())
    if max_len > _MAX_CODE_LENGTH:
        # Extremely skewed distributions on huge alphabets could exceed the
        # packing limit; fall back to a flat code.  In practice quantization
        # code distributions never get here.
        flat = max(1, int(np.ceil(np.log2(len(symbols)))))
        lengths = {sym: flat for sym in symbols}
    return lengths


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code: symbols, lengths, and the codewords."""

    symbols: Tuple[int, ...]
    lengths: Tuple[int, ...]
    codes: Tuple[int, ...]

    @classmethod
    def from_lengths(cls, lengths: Dict[int, int]) -> "HuffmanCode":
        """Build canonical codewords from per-symbol code lengths."""

        # Canonical ordering: by (length, symbol).
        items = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        symbols = tuple(sym for sym, _ in items)
        lens = tuple(length for _, length in items)
        codes: List[int] = []
        code = 0
        prev_len = 0
        for length in lens:
            code <<= length - prev_len
            codes.append(code)
            code += 1
            prev_len = length
        return cls(symbols=symbols, lengths=lens, codes=tuple(codes))

    def as_lookup(self) -> Dict[int, Tuple[int, int]]:
        """Return ``symbol -> (code, length)``."""

        return {s: (c, l) for s, c, l in zip(self.symbols, self.codes, self.lengths)}

    def decoding_table(self) -> Dict[Tuple[int, int], int]:
        """Return ``(length, code) -> symbol`` for the decoder."""

        return {(l, c): s for s, c, l in zip(self.symbols, self.codes, self.lengths)}


def _write_header(writer_bytes: bytearray, code: HuffmanCode, n_symbols: int) -> None:
    writer_bytes.extend(encode_varint(n_symbols))
    writer_bytes.extend(encode_varint(len(code.symbols)))
    for sym, length in zip(code.symbols, code.lengths):
        writer_bytes.extend(encode_varint(sym))
        writer_bytes.extend(encode_varint(length))


def _read_header(data: bytes) -> Tuple[int, HuffmanCode, int]:
    n_symbols, pos = decode_varint(data, 0)
    table_size, pos = decode_varint(data, pos)
    lengths: Dict[int, int] = {}
    for _ in range(table_size):
        sym, pos = decode_varint(data, pos)
        length, pos = decode_varint(data, pos)
        lengths[sym] = length
    return n_symbols, HuffmanCode.from_lengths(lengths), pos


def huffman_encode(symbols: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers into a self-describing blob."""

    arr = np.asarray(symbols, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("huffman_encode requires non-negative symbols")
    out = bytearray()
    if arr.size == 0:
        out.extend(encode_varint(0))
        out.extend(encode_varint(0))
        return bytes(out)

    values, counts = np.unique(arr, return_counts=True)
    freqs = {int(v): int(c) for v, c in zip(values, counts)}
    code = HuffmanCode.from_lengths(huffman_code_lengths(freqs))
    _write_header(out, code, arr.size)

    # Vectorised lookup of (code, length) per input symbol, using searchsorted
    # over the sorted symbol alphabet (canonical order is by (length, symbol),
    # so build an explicit sorted view for the lookup).
    alphabet = np.asarray(code.symbols, dtype=np.int64)
    order = np.argsort(alphabet)
    sorted_alphabet = alphabet[order]
    positions = np.searchsorted(sorted_alphabet, arr)
    index = order[positions]
    codes_arr = np.asarray(code.codes, dtype=np.uint64)[index]
    lens_arr = np.asarray(code.lengths, dtype=np.int64)[index]

    # Vectorised MSB-first bit packing: expand every code into a max_len-wide
    # bit matrix, mask out the leading unused bits per row, and packbits the
    # row-major flattening (which preserves symbol order).
    max_len = int(lens_arr.max())
    shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((codes_arr[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    valid = np.arange(max_len)[None, :] >= (max_len - lens_arr)[:, None]
    bits = bit_matrix[valid]
    payload = np.packbits(bits).tobytes()
    out.extend(encode_varint(len(payload)))
    out.extend(payload)
    return bytes(out)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`huffman_encode`; returns an ``int64`` array."""

    n_symbols, code, pos = _read_header(blob)
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    payload_len, pos = decode_varint(blob, pos)
    payload = blob[pos : pos + payload_len]
    if len(payload) < payload_len:
        raise EOFError("truncated Huffman payload")

    out = np.empty(n_symbols, dtype=np.int64)
    if len(code.symbols) == 1:
        # Degenerate single-symbol stream: each symbol used one bit.
        out[:] = code.symbols[0]
        return out

    # Canonical decoding: for each code length, the first canonical code and
    # the index of its symbol in canonical order.  Walking lengths in
    # increasing order, a prefix is a valid codeword of length L iff
    # first_code[L] <= prefix <= last_code[L].
    lengths_present = sorted(set(code.lengths))
    first_code: Dict[int, int] = {}
    first_index: Dict[int, int] = {}
    count_by_len: Dict[int, int] = {}
    for i, (length, cw) in enumerate(zip(code.lengths, code.codes)):
        if length not in first_code:
            first_code[length] = cw
            first_index[length] = i
        count_by_len[length] = count_by_len.get(length, 0) + 1
    symbols_arr = code.symbols

    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    pos = 0
    total_bits = bits.size
    for i in range(n_symbols):
        current = 0
        current_len = 0
        decoded = False
        for length in lengths_present:
            take = length - current_len
            if pos + take > total_bits:
                raise EOFError("bit stream exhausted")
            for _ in range(take):
                current = (current << 1) | int(bits[pos])
                pos += 1
            current_len = length
            base = first_code[length]
            offset = current - base
            if 0 <= offset < count_by_len[length]:
                out[i] = symbols_arr[first_index[length] + offset]
                decoded = True
                break
        if not decoded:
            raise ValueError("invalid Huffman bit stream")
    return out
