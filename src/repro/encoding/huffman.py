"""Canonical Huffman coding of integer symbol streams.

The SZ-like compressor produces a stream of quantization codes whose
distribution is strongly peaked around the "perfect prediction" code; the
MGARD-like compressor produces quantized multilevel coefficients peaked
around zero.  Huffman coding of those streams is where the compression
ratio is actually realised, so this module is a genuine (if compact)
canonical Huffman implementation:

* code lengths are derived from a standard heap-based Huffman tree and then
  *length-limited* (zlib-style Kraft repair) so every codeword fits the
  decoder's lookup table,
* codes are made *canonical* so the decoder only needs the code lengths,
* encoding is vectorised with NumPy (per-symbol code/length lookup followed
  by a single ``packbits`` pass),
* decoding is vectorised too: a canonical prefix table maps every
  ``max_len``-bit window of the payload to ``(symbol, length)``, and the
  serial "next codeword starts where the previous one ended" chain is
  resolved with pointer doubling (``log2(n)`` gathers) instead of a
  per-symbol Python loop.

The encoded container stores the symbol table (symbols + code lengths) with
varints, then the bit stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.encoding.varint import (
    decode_varint,
    decode_varint_array,
    encode_varint,
    encode_varint_array,
)

__all__ = ["HuffmanCode", "huffman_code_lengths", "huffman_encode", "huffman_decode"]

_MAX_CODE_LENGTH = 57  # keeps (code << length) within a 64-bit word during packing
#: Codes are length-limited to this many bits at encode time so the decoder
#: table (2**limit entries) stays small; raised automatically for alphabets
#: too large to fit.
_LENGTH_LIMIT = 16
#: Largest header-declared code length the table-driven decoder accepts;
#: longer (foreign/adversarial) streams fall back to the scalar decoder.
_MAX_TABLE_BITS = 20


def _limit_lengths(lengths: Dict[int, int], limit: int) -> Dict[int, int]:
    """Clamp code lengths to ``limit`` bits and repair the Kraft inequality.

    Standard zlib-style repair: clamping overfull depths can push the Kraft
    sum above 1; demoting the shallowest over-budget leaves one level deeper
    restores it while disturbing the optimal lengths as little as possible.
    """

    if not lengths:
        return lengths
    limit = max(limit, max(1, (len(lengths) - 1).bit_length()))
    if max(lengths.values()) <= limit:
        return lengths

    counts = np.zeros(limit + 1, dtype=np.int64)
    for length in lengths.values():
        counts[min(length, limit)] += 1
    budget = 1 << limit
    kraft = int(sum(int(counts[l]) << (limit - l) for l in range(1, limit + 1)))
    while kraft > budget:
        for l in range(limit - 1, 0, -1):
            if counts[l] > 0:
                counts[l] -= 1
                counts[l + 1] += 1
                kraft -= 1 << (limit - l - 1)
                break
    # Reassign: symbols sorted by (original length, symbol) receive the new
    # lengths in non-decreasing order, so originally-short (frequent)
    # symbols keep the short codes.
    ordered = sorted(lengths, key=lambda s: (lengths[s], s))
    new_lengths = np.repeat(np.arange(limit + 1), counts)
    return {sym: int(new_lengths[i]) for i, sym in enumerate(ordered)}


def huffman_code_lengths(
    frequencies: Dict[int, int], *, max_length: int = _LENGTH_LIMIT
) -> Dict[int, int]:
    """Return the Huffman code length for every symbol with non-zero frequency.

    Lengths are limited to ``max_length`` bits (Kraft-repaired, see
    :func:`_limit_lengths`) so the vectorised decoder's prefix table stays
    bounded; the limit is raised automatically when the alphabet is too
    large for it.  A single-symbol alphabet gets length 1 (a degenerate but
    decodable code).
    """

    symbols = sorted(s for s, f in frequencies.items() if f > 0)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}

    # Standard heap-based tree build, but nodes are just indices into a
    # parent array (no per-node symbol lists): depth(leaf) = number of
    # parent hops to the root.
    n = len(symbols)
    parents = [0] * (2 * n - 1)
    heap: List[Tuple[int, int]] = [(frequencies[sym], i) for i, sym in enumerate(symbols)]
    heapq.heapify(heap)
    next_node = n
    while len(heap) > 1:
        f1, n1 = heapq.heappop(heap)
        f2, n2 = heapq.heappop(heap)
        parents[n1] = next_node
        parents[n2] = next_node
        heapq.heappush(heap, (f1 + f2, next_node))
        next_node += 1
    # Children always have smaller indices than their parent, so one
    # root-to-leaves sweep yields every depth in O(n).
    root = next_node - 1
    depths = [0] * (2 * n - 1)
    for node in range(root - 1, -1, -1):
        depths[node] = depths[parents[node]] + 1
    lengths = {sym: depths[i] for i, sym in enumerate(symbols)}
    return _limit_lengths(lengths, min(max_length, _MAX_CODE_LENGTH))


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code: symbols, lengths, and the codewords."""

    symbols: Tuple[int, ...]
    lengths: Tuple[int, ...]
    codes: Tuple[int, ...]

    @classmethod
    def from_lengths(cls, lengths: Dict[int, int]) -> "HuffmanCode":
        """Build canonical codewords from per-symbol code lengths."""

        # Canonical ordering: by (length, symbol).
        items = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        symbols = tuple(sym for sym, _ in items)
        lens = tuple(length for _, length in items)
        codes: List[int] = []
        code = 0
        prev_len = 0
        for length in lens:
            code <<= length - prev_len
            codes.append(code)
            code += 1
            prev_len = length
        return cls(symbols=symbols, lengths=lens, codes=tuple(codes))

    def as_lookup(self) -> Dict[int, Tuple[int, int]]:
        """Return ``symbol -> (code, length)``."""

        return {s: (c, l) for s, c, l in zip(self.symbols, self.codes, self.lengths)}

    def decoding_table(self) -> Dict[Tuple[int, int], int]:
        """Return ``(length, code) -> symbol`` for the decoder."""

        return {(l, c): s for s, c, l in zip(self.symbols, self.codes, self.lengths)}


def _write_header(writer_bytes: bytearray, code: HuffmanCode, n_symbols: int) -> None:
    writer_bytes.extend(encode_varint(n_symbols))
    writer_bytes.extend(encode_varint(len(code.symbols)))
    pairs = np.empty(2 * len(code.symbols), dtype=np.int64)
    pairs[0::2] = code.symbols
    pairs[1::2] = code.lengths
    writer_bytes.extend(encode_varint_array(pairs))


def _count_symbols(arr: np.ndarray):
    """``np.unique(..., return_inverse, return_counts)`` without the sort
    when the value span is narrow enough for a bincount (the common case for
    quantization-code streams)."""

    vmin = int(arr.min())
    span = int(arr.max()) - vmin + 1
    if span > max(1024, 4 * arr.size):
        return np.unique(arr, return_inverse=True, return_counts=True)
    full = np.bincount(arr - vmin, minlength=span)
    present = np.flatnonzero(full)
    slot = np.zeros(span, dtype=np.int64)
    slot[present] = np.arange(present.size)
    return present + vmin, slot[arr - vmin], full[present]


def huffman_encode(symbols: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers into a self-describing blob."""

    arr = np.asarray(symbols, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("huffman_encode requires non-negative symbols")
    out = bytearray()
    if arr.size == 0:
        out.extend(encode_varint(0))
        out.extend(encode_varint(0))
        return bytes(out)

    values, inverse, counts = _count_symbols(arr)
    freqs = {int(v): int(c) for v, c in zip(values, counts)}
    code = HuffmanCode.from_lengths(huffman_code_lengths(freqs))
    _write_header(out, code, arr.size)

    # Vectorised lookup of (code, length) per input symbol: ``inverse`` maps
    # each symbol to its slot in the sorted alphabet (``values``), and
    # ``argsort`` of the canonical symbols maps those slots to canonical
    # order — no per-symbol searchsorted over the input needed.
    alphabet = np.asarray(code.symbols, dtype=np.int64)
    order = np.argsort(alphabet)
    index = order[inverse.ravel()]
    codes_arr = np.asarray(code.codes, dtype=np.uint64)[index]
    lens_arr = np.asarray(code.lengths, dtype=np.int64)[index]

    # Vectorised MSB-first bit packing: expand every codeword into exactly
    # its own bits (no max_len-wide matrix) — bit k of a length-L codeword
    # is (code >> (L-1-k)) & 1, laid out flat in symbol order.
    starts = np.cumsum(lens_arr) - lens_arr
    total = int(starts[-1] + lens_arr[-1])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens_arr)
    rep_codes = np.repeat(codes_arr, lens_arr)
    rep_shifts = (np.repeat(lens_arr, lens_arr) - 1 - within).astype(np.uint64)
    bits = ((rep_codes >> rep_shifts) & np.uint64(1)).astype(np.uint8)
    payload = np.packbits(bits).tobytes()
    out.extend(encode_varint(len(payload)))
    out.extend(payload)
    return bytes(out)


def _decode_vectorized(
    syms_canonical: np.ndarray, lens_canonical: np.ndarray, payload: bytes, n_symbols: int
) -> np.ndarray:
    """Table-driven canonical decode without a per-symbol Python loop.

    ``syms_canonical`` / ``lens_canonical`` are the alphabet in canonical
    (length, symbol) order; the canonical codewords themselves are never
    materialised — they tile the prefix space contiguously, so the lookup
    table is a single ``repeat``.
    """

    max_len = int(lens_canonical[-1])
    total_bits = len(payload) * 8

    # Canonical codewords tile the prefix space contiguously (base of the
    # next codeword = base + span of the previous), so the full lookup
    # table is a single repeat; the tail past the Kraft sum is invalid.
    lens = lens_canonical.astype(np.int32)
    spans = np.int64(1) << (max_len - lens)
    if int(spans.sum()) > (1 << max_len):
        raise ValueError("invalid Huffman code lengths (Kraft violation)")
    table_syms = np.repeat(syms_canonical, spans)
    table_lens = np.repeat(lens, spans)
    gap = (1 << max_len) - table_syms.size
    if gap:
        table_syms = np.concatenate([table_syms, np.zeros(gap, dtype=np.int64)])
        table_lens = np.concatenate([table_lens, np.zeros(gap, dtype=np.int32)])

    # Window value of the max_len bits starting at every bit position
    # (zero-padded past the end of the payload).
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    padded = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])
    windows = np.zeros(total_bits, dtype=np.int32)
    for k in range(max_len):
        windows |= padded[k : k + total_bits].astype(np.int32) << np.int32(max_len - 1 - k)

    len_at = table_lens[windows]

    # Jump table: bit position -> bit position of the next codeword; the
    # sentinel (total_bits) absorbs jumps past the end, and invalid
    # prefixes (length 0) self-loop — both are rejected after the chain.
    sentinel = total_bits
    jump = np.empty(total_bits + 1, dtype=np.int32)
    np.add(np.arange(total_bits, dtype=np.int32), len_at, out=jump[:total_bits])
    jump[total_bits] = sentinel
    np.minimum(jump, sentinel, out=jump)

    # Pointer doubling: with the first `filled` codeword positions known and
    # J jumping `filled` codewords at once, one gather doubles the sequence.
    # Composing J costs a full-stream gather, so stop doubling at a modest
    # stride and extend the sequence stride-by-stride instead — the
    # remaining extensions only gather `stride` elements each.
    stride_cap = 256
    seq = np.empty(n_symbols, dtype=np.int32)
    seq[0] = 0
    filled = 1
    J = jump
    jumpby = 1  # invariant: J jumps `jumpby` codewords from any bit position
    while filled < n_symbols:
        take = min(jumpby, n_symbols - filled)
        seq[filled : filled + take] = J[seq[filled - jumpby : filled - jumpby + take]]
        filled += take
        if jumpby < stride_cap and filled >= 2 * jumpby and filled < n_symbols:
            J = J[J]
            jumpby *= 2

    if seq[-1] >= sentinel:
        raise EOFError("bit stream exhausted")
    seq_lens = len_at[seq]
    if (seq_lens == 0).any():
        raise ValueError("invalid Huffman bit stream")
    if seq[-1] + seq_lens[-1] > total_bits:
        raise EOFError("bit stream exhausted")
    return table_syms[windows[seq]]


def _decode_scalar(code: HuffmanCode, payload: bytes, n_symbols: int) -> np.ndarray:
    """Reference per-symbol decoder (fallback for over-long foreign codes)."""

    out = np.empty(n_symbols, dtype=np.int64)
    lengths_present = sorted(set(code.lengths))
    first_code: Dict[int, int] = {}
    first_index: Dict[int, int] = {}
    count_by_len: Dict[int, int] = {}
    for i, (length, cw) in enumerate(zip(code.lengths, code.codes)):
        if length not in first_code:
            first_code[length] = cw
            first_index[length] = i
        count_by_len[length] = count_by_len.get(length, 0) + 1
    symbols_arr = code.symbols

    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    pos = 0
    total_bits = bits.size
    for i in range(n_symbols):
        current = 0
        current_len = 0
        decoded = False
        for length in lengths_present:
            take = length - current_len
            if pos + take > total_bits:
                raise EOFError("bit stream exhausted")
            for _ in range(take):
                current = (current << 1) | int(bits[pos])
                pos += 1
            current_len = length
            base = first_code[length]
            offset = current - base
            if 0 <= offset < count_by_len[length]:
                out[i] = symbols_arr[first_index[length] + offset]
                decoded = True
                break
        if not decoded:
            raise ValueError("invalid Huffman bit stream")
    return out


def huffman_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`huffman_encode`; returns an ``int64`` array."""

    n_symbols, pos = decode_varint(blob, 0)
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    table_size, pos = decode_varint(blob, pos)
    pairs, pos = decode_varint_array(blob, 2 * table_size, pos)
    syms = pairs[0::2].astype(np.int64)
    lens = pairs[1::2].astype(np.int64)
    payload_len, pos = decode_varint(blob, pos)
    payload = blob[pos : pos + payload_len]
    if len(payload) < payload_len:
        raise EOFError("truncated Huffman payload")

    if table_size == 1:
        # Degenerate single-symbol stream: each symbol used one bit.
        return np.full(n_symbols, syms[0], dtype=np.int64)
    if table_size == 0 or lens.min() < 1:
        raise ValueError("invalid Huffman symbol table")
    order = np.lexsort((syms, lens))
    lens_canonical = lens[order]
    if int(lens_canonical[-1]) <= _MAX_TABLE_BITS:
        return _decode_vectorized(syms[order], lens_canonical, payload, n_symbols)
    code = HuffmanCode.from_lengths({int(s): int(l) for s, l in zip(syms, lens)})
    return _decode_scalar(code, payload, n_symbols)
