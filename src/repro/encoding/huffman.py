"""Canonical Huffman coding of integer symbol streams.

The SZ-like compressor produces a stream of quantization codes whose
distribution is strongly peaked around the "perfect prediction" code; the
MGARD-like compressor produces quantized multilevel coefficients peaked
around zero.  Huffman coding of those streams is where the compression
ratio is actually realised, so this module is a genuine (if compact)
canonical Huffman implementation:

* code lengths come from a two-queue Huffman tree build over the sorted
  frequency array (O(n) after one argsort, no heap) and are then
  *length-limited* (zlib-style Kraft repair) so every codeword fits the
  decoder's lookup table,
* codes are made *canonical* so the decoder only needs the code lengths,
* encoding is vectorised with NumPy (per-symbol code/length lookup followed
  by a single ``packbits`` pass),
* decoding is vectorised too: a canonical prefix table maps every
  ``max_len``-bit window of the payload to ``(symbol, length)``, and the
  serial "next codeword starts where the previous one ended" chain is
  resolved with pointer doubling (``log2(n)`` gathers) instead of a
  per-symbol Python loop.

The encoded container stores the symbol table (symbols + code lengths) with
varints, then the bit stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.encoding.varint import (
    decode_varint,
    decode_varint_array,
    encode_varint,
    encode_varint_array,
)

__all__ = [
    "HuffmanCode",
    "huffman_code_lengths",
    "huffman_encode",
    "huffman_decode",
    "canonical_code_from_counts",
    "huffman_encode_with_code",
    "huffman_decode_with_code",
]

_MAX_CODE_LENGTH = 57  # keeps (code << length) within a 64-bit word during packing
#: Codes are length-limited to this many bits at encode time so the decoder
#: table (2**limit entries) stays small; raised automatically for alphabets
#: too large to fit.
_LENGTH_LIMIT = 16
#: Largest header-declared code length the table-driven decoder accepts;
#: longer (foreign/adversarial) streams fall back to the scalar decoder.
_MAX_TABLE_BITS = 20


def _code_lengths_array(counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths for a frequency array (two-queue tree build).

    With the frequencies sorted once, the optimal tree is built with the
    classic two-queue merge — leaves are consumed in sorted order and
    internal nodes are *created* in non-decreasing weight order, so the two
    cheapest nodes are always at one of two queue heads.  O(n) after the
    sort, no heap operations.
    """

    n = counts.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.ones(1, dtype=np.int64)
    order = np.argsort(counts, kind="stable")
    weights = counts[order].tolist()
    n_nodes = 2 * n - 1
    parents = [0] * n_nodes
    internal: List[int] = []
    append_internal = internal.append
    leaf = 0
    merged = 0
    n_internal = 0
    for node in range(n, n_nodes):
        if leaf < n and (merged >= n_internal or weights[leaf] <= internal[merged]):
            first = leaf
            total = weights[leaf]
            leaf += 1
        else:
            first = n + merged
            total = internal[merged]
            merged += 1
        if leaf < n and (merged >= n_internal or weights[leaf] <= internal[merged]):
            second = leaf
            total += weights[leaf]
            leaf += 1
        else:
            second = n + merged
            total += internal[merged]
            merged += 1
        parents[first] = node
        parents[second] = node
        append_internal(total)
        n_internal += 1
    # Children always have smaller indices than their parent, so one
    # root-to-leaves sweep yields every depth in O(n).
    depths = [0] * n_nodes
    for node in range(n_nodes - 2, -1, -1):
        depths[node] = depths[parents[node]] + 1
    lengths = np.empty(n, dtype=np.int64)
    lengths[order] = depths[:n]
    return lengths


def _limit_lengths_array(
    symbols: np.ndarray, lengths: np.ndarray, limit: int
) -> np.ndarray:
    """Clamp code lengths to ``limit`` bits and repair the Kraft inequality.

    Standard zlib-style repair: clamping overfull depths can push the Kraft
    sum above 1; demoting the shallowest over-budget leaves one level deeper
    restores it while disturbing the optimal lengths as little as possible.
    """

    n = lengths.size
    if n == 0:
        return lengths
    limit = max(limit, max(1, (n - 1).bit_length()))
    if int(lengths.max()) <= limit:
        return lengths

    counts = np.bincount(np.minimum(lengths, limit), minlength=limit + 1)
    budget = 1 << limit
    kraft = int(sum(int(counts[l]) << (limit - l) for l in range(1, limit + 1)))
    while kraft > budget:
        for l in range(limit - 1, 0, -1):
            if counts[l] > 0:
                counts[l] -= 1
                counts[l + 1] += 1
                kraft -= 1 << (limit - l - 1)
                break
    # Reassign: symbols sorted by (original length, symbol) receive the new
    # lengths in non-decreasing order, so originally-short (frequent)
    # symbols keep the short codes.
    order = np.lexsort((symbols, lengths))
    new_lengths = np.repeat(np.arange(limit + 1), counts)
    out = np.empty(n, dtype=np.int64)
    out[order] = new_lengths
    return out


def _canonical_codes_array(symbols: np.ndarray, lengths: np.ndarray):
    """Canonical codewords from per-symbol lengths, as arrays.

    Returns ``(order, syms, lens, codes)`` with ``syms``/``lens``/``codes``
    in canonical (length, symbol) order and ``order`` the permutation that
    produced them.  Equivalent to :meth:`HuffmanCode.from_lengths` without
    per-symbol Python work: the first code of each length is the standard
    ``(first[l-1] + count[l-1]) << 1`` recurrence (at most ``max_len``
    iterations), and codes within a length are consecutive.
    """

    order = np.lexsort((symbols, lengths))
    syms = symbols[order]
    lens = lengths[order]
    max_len = int(lens[-1])
    bl_count = np.bincount(lens, minlength=max_len + 1)
    first_code = np.zeros(max_len + 1, dtype=np.uint64)
    code = 0
    for l in range(1, max_len + 1):
        code = (code + int(bl_count[l - 1])) << 1
        first_code[l] = code
    starts = (np.cumsum(bl_count) - bl_count).astype(np.uint64)
    codes = first_code[lens] + (np.arange(syms.size, dtype=np.uint64) - starts[lens])
    return order, syms, lens, codes


def huffman_code_lengths(
    frequencies: Dict[int, int], *, max_length: int = _LENGTH_LIMIT
) -> Dict[int, int]:
    """Return the Huffman code length for every symbol with non-zero frequency.

    Lengths are limited to ``max_length`` bits (Kraft-repaired, see
    :func:`_limit_lengths_array`) so the vectorised decoder's prefix table
    stays bounded; the limit is raised automatically when the alphabet is
    too large for it.  A single-symbol alphabet gets length 1 (a degenerate
    but decodable code).  Dict-interface wrapper over the array core used
    by :func:`huffman_encode`.
    """

    items = sorted((s, f) for s, f in frequencies.items() if f > 0)
    if not items:
        return {}
    symbols = np.array([s for s, _ in items], dtype=np.int64)
    counts = np.array([f for _, f in items], dtype=np.int64)
    lengths = _code_lengths_array(counts)
    lengths = _limit_lengths_array(symbols, lengths, min(max_length, _MAX_CODE_LENGTH))
    return {int(s): int(l) for s, l in zip(symbols, lengths)}


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code: symbols, lengths, and the codewords."""

    symbols: Tuple[int, ...]
    lengths: Tuple[int, ...]
    codes: Tuple[int, ...]

    @classmethod
    def from_lengths(cls, lengths: Dict[int, int]) -> "HuffmanCode":
        """Build canonical codewords from per-symbol code lengths."""

        # Canonical ordering: by (length, symbol).
        items = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
        symbols = tuple(sym for sym, _ in items)
        lens = tuple(length for _, length in items)
        codes: List[int] = []
        code = 0
        prev_len = 0
        for length in lens:
            code <<= length - prev_len
            codes.append(code)
            code += 1
            prev_len = length
        return cls(symbols=symbols, lengths=lens, codes=tuple(codes))

    def as_lookup(self) -> Dict[int, Tuple[int, int]]:
        """Return ``symbol -> (code, length)``."""

        return {s: (c, l) for s, c, l in zip(self.symbols, self.codes, self.lengths)}

    def decoding_table(self) -> Dict[Tuple[int, int], int]:
        """Return ``(length, code) -> symbol`` for the decoder."""

        return {(l, c): s for s, c, l in zip(self.symbols, self.codes, self.lengths)}


def _write_header(
    writer_bytes: bytearray, syms: np.ndarray, lens: np.ndarray, n_symbols: int
) -> None:
    writer_bytes.extend(encode_varint(n_symbols))
    writer_bytes.extend(encode_varint(syms.size))
    pairs = np.empty(2 * syms.size, dtype=np.int64)
    pairs[0::2] = syms
    pairs[1::2] = lens
    writer_bytes.extend(encode_varint_array(pairs))


def _count_symbols(arr: np.ndarray):
    """``np.unique(..., return_inverse, return_counts)`` without the sort
    when the value span is narrow enough for a bincount (the common case for
    quantization-code streams)."""

    vmin = int(arr.min())
    span = int(arr.max()) - vmin + 1
    if span > max(1024, 4 * arr.size):
        return np.unique(arr, return_inverse=True, return_counts=True)
    full = np.bincount(arr - vmin, minlength=span)
    present = np.flatnonzero(full)
    slot = np.zeros(span, dtype=np.int64)
    slot[present] = np.arange(present.size)
    return present + vmin, slot[arr - vmin], full[present]


def huffman_encode(symbols: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers into a self-describing blob."""

    arr = np.asarray(symbols, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("huffman_encode requires non-negative symbols")
    out = bytearray()
    if arr.size == 0:
        out.extend(encode_varint(0))
        out.extend(encode_varint(0))
        return bytes(out)

    values, inverse, counts = _count_symbols(arr)
    lengths = _code_lengths_array(np.asarray(counts, dtype=np.int64))
    lengths = _limit_lengths_array(
        np.asarray(values, dtype=np.int64), lengths, min(_LENGTH_LIMIT, _MAX_CODE_LENGTH)
    )
    order, syms_c, lens_c, codes_c = _canonical_codes_array(
        np.asarray(values, dtype=np.int64), lengths
    )
    _write_header(out, syms_c, lens_c, arr.size)

    # Vectorised lookup of (code, length) per input symbol: ``inverse`` maps
    # each symbol to its slot in the sorted alphabet (``values``), and the
    # inverse of the canonical permutation maps those slots to canonical
    # order — no per-symbol searchsorted over the input needed.
    rank = np.empty(values.size, dtype=np.int64)
    rank[order] = np.arange(values.size)
    index = rank[np.asarray(inverse).ravel()]
    codes_arr = codes_c[index]
    lens_arr = lens_c[index]

    # Vectorised MSB-first bit packing: expand every codeword into exactly
    # its own bits (no max_len-wide matrix) — bit k of a length-L codeword
    # is (code >> (L-1-k)) & 1, laid out flat in symbol order.
    starts = np.cumsum(lens_arr) - lens_arr
    total = int(starts[-1] + lens_arr[-1])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens_arr)
    rep_codes = np.repeat(codes_arr, lens_arr)
    rep_shifts = (np.repeat(lens_arr, lens_arr) - 1 - within).astype(np.uint64)
    bits = ((rep_codes >> rep_shifts) & np.uint64(1)).astype(np.uint8)
    payload = np.packbits(bits).tobytes()
    out.extend(encode_varint(len(payload)))
    out.extend(payload)
    return bytes(out)


def _decode_vectorized(
    syms_canonical: np.ndarray, lens_canonical: np.ndarray, payload: bytes, n_symbols: int
) -> np.ndarray:
    """Table-driven canonical decode without a per-symbol Python loop.

    ``syms_canonical`` / ``lens_canonical`` are the alphabet in canonical
    (length, symbol) order; the canonical codewords themselves are never
    materialised — they tile the prefix space contiguously, so the lookup
    table is a single ``repeat``.
    """

    max_len = int(lens_canonical[-1])
    total_bits = len(payload) * 8

    # Canonical codewords tile the prefix space contiguously (base of the
    # next codeword = base + span of the previous), so the full lookup
    # table is a single repeat; the tail past the Kraft sum is invalid.
    lens = lens_canonical.astype(np.int32)
    spans = np.int64(1) << (max_len - lens)
    if int(spans.sum()) > (1 << max_len):
        raise ValueError("invalid Huffman code lengths (Kraft violation)")
    table_syms = np.repeat(syms_canonical, spans)
    table_lens = np.repeat(lens, spans)
    gap = (1 << max_len) - table_syms.size
    if gap:
        table_syms = np.concatenate([table_syms, np.zeros(gap, dtype=np.int64)])
        table_lens = np.concatenate([table_lens, np.zeros(gap, dtype=np.int32)])

    # Window value of the max_len bits starting at every bit position
    # (zero-padded past the end of the payload).
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    padded = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])
    windows = np.zeros(total_bits, dtype=np.int32)
    for k in range(max_len):
        windows |= padded[k : k + total_bits].astype(np.int32) << np.int32(max_len - 1 - k)

    len_at = table_lens[windows]

    # Jump table: bit position -> bit position of the next codeword; the
    # sentinel (total_bits) absorbs jumps past the end, and invalid
    # prefixes (length 0) self-loop — both are rejected after the chain.
    sentinel = total_bits
    jump = np.empty(total_bits + 1, dtype=np.int32)
    np.add(np.arange(total_bits, dtype=np.int32), len_at, out=jump[:total_bits])
    jump[total_bits] = sentinel
    np.minimum(jump, sentinel, out=jump)

    # Pointer doubling: with the first `filled` codeword positions known and
    # J jumping `filled` codewords at once, one gather doubles the sequence.
    # Composing J costs a full-stream gather, so stop doubling at a modest
    # stride and extend the sequence stride-by-stride instead — the
    # remaining extensions only gather `stride` elements each.
    stride_cap = 256
    seq = np.empty(n_symbols, dtype=np.int32)
    seq[0] = 0
    filled = 1
    J = jump
    jumpby = 1  # invariant: J jumps `jumpby` codewords from any bit position
    while filled < n_symbols:
        take = min(jumpby, n_symbols - filled)
        seq[filled : filled + take] = J[seq[filled - jumpby : filled - jumpby + take]]
        filled += take
        if jumpby < stride_cap and filled >= 2 * jumpby and filled < n_symbols:
            J = J[J]
            jumpby *= 2

    if seq[-1] >= sentinel:
        raise EOFError("bit stream exhausted")
    seq_lens = len_at[seq]
    if (seq_lens == 0).any():
        raise ValueError("invalid Huffman bit stream")
    if seq[-1] + seq_lens[-1] > total_bits:
        raise EOFError("bit stream exhausted")
    return table_syms[windows[seq]]


def _decode_scalar(code: HuffmanCode, payload: bytes, n_symbols: int) -> np.ndarray:
    """Reference per-symbol decoder (fallback for over-long foreign codes)."""

    out = np.empty(n_symbols, dtype=np.int64)
    lengths_present = sorted(set(code.lengths))
    first_code: Dict[int, int] = {}
    first_index: Dict[int, int] = {}
    count_by_len: Dict[int, int] = {}
    for i, (length, cw) in enumerate(zip(code.lengths, code.codes)):
        if length not in first_code:
            first_code[length] = cw
            first_index[length] = i
        count_by_len[length] = count_by_len.get(length, 0) + 1
    symbols_arr = code.symbols

    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    pos = 0
    total_bits = bits.size
    for i in range(n_symbols):
        current = 0
        current_len = 0
        decoded = False
        for length in lengths_present:
            take = length - current_len
            if pos + take > total_bits:
                raise EOFError("bit stream exhausted")
            for _ in range(take):
                current = (current << 1) | int(bits[pos])
                pos += 1
            current_len = length
            base = first_code[length]
            offset = current - base
            if 0 <= offset < count_by_len[length]:
                out[i] = symbols_arr[first_index[length] + offset]
                decoded = True
                break
        if not decoded:
            raise ValueError("invalid Huffman bit stream")
    return out


def huffman_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`huffman_encode`; returns an ``int64`` array."""

    n_symbols, pos = decode_varint(blob, 0)
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    table_size, pos = decode_varint(blob, pos)
    pairs, pos = decode_varint_array(blob, 2 * table_size, pos)
    syms = pairs[0::2].astype(np.int64)
    lens = pairs[1::2].astype(np.int64)
    payload_len, pos = decode_varint(blob, pos)
    payload = blob[pos : pos + payload_len]
    if len(payload) < payload_len:
        raise EOFError("truncated Huffman payload")

    if table_size == 1:
        # Degenerate single-symbol stream: each symbol used one bit.
        return np.full(n_symbols, syms[0], dtype=np.int64)
    if table_size == 0 or lens.min() < 1:
        raise ValueError("invalid Huffman symbol table")
    order = np.lexsort((syms, lens))
    lens_canonical = lens[order]
    if int(lens_canonical[-1]) <= _MAX_TABLE_BITS:
        return _decode_vectorized(syms[order], lens_canonical, payload, n_symbols)
    code = HuffmanCode.from_lengths({int(s): int(l) for s, l in zip(syms, lens)})
    return _decode_scalar(code, payload, n_symbols)


# ----------------------------------------------------------------------
# coding against an externally agreed (context-derived) canonical code
# ----------------------------------------------------------------------
def canonical_code_from_counts(
    symbols: np.ndarray, counts: np.ndarray, *, max_length: int = _LENGTH_LIMIT
):
    """Canonical code arrays from a frequency table both sides can derive.

    Returns ``(syms_canonical, lens_canonical, codes_canonical)`` in
    canonical (length, symbol) order.  Encoder and decoder of a
    context-coded stream call this with the *same* reference histogram
    (see :mod:`repro.encoding.context`), so no table is ever serialised.
    """

    symbols = np.asarray(symbols, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if symbols.size == 0:
        raise ValueError("cannot build a code from an empty frequency table")
    if symbols.size != counts.size:
        raise ValueError("symbols and counts must align")
    lengths = _code_lengths_array(counts)
    lengths = _limit_lengths_array(
        symbols, lengths, min(max_length, _MAX_CODE_LENGTH)
    )
    _, syms_c, lens_c, codes_c = _canonical_codes_array(symbols, lengths)
    return syms_c, lens_c, codes_c


def huffman_encode_with_code(
    stream: np.ndarray,
    syms_canonical: np.ndarray,
    lens_canonical: np.ndarray,
    codes_canonical: np.ndarray,
) -> bytes:
    """Encode ``stream`` as a bare bit stream using a pre-agreed code.

    Unlike :func:`huffman_encode` no symbol table is written — the decoder
    derives the identical code out of band.  Every stream symbol must be
    in the code's alphabet (callers route out-of-alphabet symbols through
    an escape symbol first).
    """

    stream = np.asarray(stream, dtype=np.int64).ravel()
    if stream.size == 0:
        return b""
    # Map stream symbols to canonical slots via one searchsorted over the
    # symbol-sorted alphabet.
    sym_order = np.argsort(syms_canonical, kind="stable")
    sorted_syms = syms_canonical[sym_order]
    pos = np.searchsorted(sorted_syms, stream)
    if int(pos.max(initial=0)) >= sorted_syms.size or not np.array_equal(
        sorted_syms[pos], stream
    ):
        raise ValueError("stream contains symbols outside the agreed code")
    slots = sym_order[pos]
    codes_arr = codes_canonical[slots]
    lens_arr = lens_canonical[slots]

    # Same vectorised MSB-first packing as huffman_encode.
    starts = np.cumsum(lens_arr) - lens_arr
    total = int(starts[-1] + lens_arr[-1])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens_arr)
    rep_codes = np.repeat(codes_arr, lens_arr)
    rep_shifts = (np.repeat(lens_arr, lens_arr) - 1 - within).astype(np.uint64)
    bits = ((rep_codes >> rep_shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes()


def huffman_decode_with_code(
    payload: bytes,
    n_symbols: int,
    syms_canonical: np.ndarray,
    lens_canonical: np.ndarray,
) -> np.ndarray:
    """Inverse of :func:`huffman_encode_with_code` (code supplied out of band)."""

    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    if syms_canonical.size == 1:
        # Degenerate single-symbol code: one bit per symbol.
        if len(payload) * 8 < n_symbols:
            raise EOFError("bit stream exhausted")
        return np.full(n_symbols, int(syms_canonical[0]), dtype=np.int64)
    if int(lens_canonical[-1]) <= _MAX_TABLE_BITS:
        return _decode_vectorized(
            syms_canonical, lens_canonical.astype(np.int64), payload, n_symbols
        )
    code = HuffmanCode.from_lengths(
        {int(s): int(l) for s, l in zip(syms_canonical, lens_canonical)}
    )
    return _decode_scalar(code, payload, n_symbols)
