"""LEB128-style variable-length integer coding.

Used for container headers (shapes, block counts, stream lengths) in the
compressor bitstreams so that small metadata does not cost a fixed 8 bytes
per field.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_signed_varint",
    "decode_signed_varint",
]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 bytes."""

    if value < 0:
        raise ValueError("encode_varint requires a non-negative integer")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """

    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EOFError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def encode_signed_varint(value: int) -> bytes:
    """ZigZag-encode a signed integer then LEB128 it."""

    zigzag = (value << 1) if value >= 0 else ((-value) << 1) - 1
    return encode_varint(zigzag)


def decode_signed_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Inverse of :func:`encode_signed_varint`."""

    zigzag, pos = decode_varint(data, offset)
    if zigzag & 1:
        return -((zigzag + 1) >> 1), pos
    return zigzag >> 1, pos
