"""LEB128-style variable-length integer coding.

Used for container headers (shapes, block counts, stream lengths) in the
compressor bitstreams so that small metadata does not cost a fixed 8 bytes
per field.

Besides the scalar codecs, the module provides array codecs
(:func:`encode_varint_array` / :func:`decode_varint_array` and their
zigzag-signed variants) that process a whole NumPy array per call and emit
exactly the same byte stream as the scalar functions applied element-wise.
The compressor side channels (regression coefficients, unpredictable
values) use the array forms on their hot paths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_signed_varint",
    "decode_signed_varint",
    "encode_varint_array",
    "decode_varint_array",
    "encode_signed_varint_array",
    "decode_signed_varint_array",
]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 bytes."""

    if value < 0:
        raise ValueError("encode_varint requires a non-negative integer")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """

    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EOFError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def encode_signed_varint(value: int) -> bytes:
    """ZigZag-encode a signed integer then LEB128 it."""

    zigzag = (value << 1) if value >= 0 else ((-value) << 1) - 1
    return encode_varint(zigzag)


def decode_signed_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Inverse of :func:`encode_signed_varint`."""

    zigzag, pos = decode_varint(data, offset)
    if zigzag & 1:
        return -((zigzag + 1) >> 1), pos
    return zigzag >> 1, pos


# ----------------------------------------------------------------------
# array codecs (byte-identical to the scalar codecs, no Python loops)
# ----------------------------------------------------------------------
def encode_varint_array(values: np.ndarray) -> bytes:
    """LEB128-encode an array of non-negative integers (uint64 range)."""

    v = np.asarray(values)
    if v.size == 0:
        return b""
    if v.dtype.kind not in "iu":
        raise TypeError("encode_varint_array requires an integer array")
    if v.dtype.kind == "i" and v.size and int(v.min()) < 0:
        raise ValueError("encode_varint_array requires non-negative integers")
    v = v.astype(np.uint64).ravel()

    # Bytes per value: ceil(bit_length / 7), at least 1 (<= 10 for uint64).
    nbytes = np.ones(v.size, dtype=np.int64)
    tmp = v >> np.uint64(7)
    while tmp.any():
        nbytes += tmp != 0
        tmp >>= np.uint64(7)

    total = int(nbytes.sum())
    starts = np.cumsum(nbytes) - nbytes
    # Position of every output byte within its value's byte group.
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, nbytes)
    groups = np.repeat(v, nbytes)
    chunks = ((groups >> (np.uint64(7) * within.astype(np.uint64))) & np.uint64(0x7F)).astype(
        np.uint8
    )
    is_last = within == np.repeat(nbytes, nbytes) - 1
    return np.where(is_last, chunks, chunks | 0x80).astype(np.uint8).tobytes()


def decode_varint_array(data: bytes, count: int, offset: int = 0) -> Tuple[np.ndarray, int]:
    """Decode ``count`` consecutive LEB128 integers starting at ``offset``.

    Returns ``(values, next_offset)`` with ``values`` as uint64.
    """

    if count < 0:
        raise ValueError("count must be >= 0")
    if count == 0:
        return np.empty(0, dtype=np.uint64), offset
    # A LEB128 value is at most 10 bytes, so never scan (or index) past
    # count*10 bytes — callers hand in whole container blobs.
    full = np.frombuffer(data, dtype=np.uint8)
    buf = full[offset : offset + 10 * count]
    terminators = np.flatnonzero((buf & 0x80) == 0)
    if terminators.size < count:
        if full.size > offset + buf.size:
            # More bytes existed beyond the scan window, so some value ran
            # past the 10-byte LEB128 maximum.
            raise ValueError("varint too long")
        raise EOFError("truncated varint")
    consumed = int(terminators[count - 1]) + 1
    buf = buf[:consumed]
    ends = terminators[:count]
    starts = np.concatenate(([0], ends[:-1] + 1))
    lengths = ends - starts + 1
    if lengths.max(initial=0) > 10:
        raise ValueError("varint too long")
    within = np.arange(consumed, dtype=np.int64) - np.repeat(starts, lengths)
    chunks = (buf & 0x7F).astype(np.uint64) << (np.uint64(7) * within.astype(np.uint64))
    values = np.add.reduceat(chunks, starts)
    return values, offset + consumed


def encode_signed_varint_array(values: np.ndarray) -> bytes:
    """ZigZag + LEB128 encode an int64 array (matches the scalar codec)."""

    v = np.asarray(values, dtype=np.int64).ravel()
    zigzag = (v << 1) ^ (v >> 63)
    return encode_varint_array(zigzag.view(np.uint64))


def decode_signed_varint_array(
    data: bytes, count: int, offset: int = 0
) -> Tuple[np.ndarray, int]:
    """Inverse of :func:`encode_signed_varint_array`; returns int64 values."""

    zigzag, pos = decode_varint_array(data, count, offset)
    values = (zigzag >> np.uint64(1)).view(np.int64) ^ -(zigzag & np.uint64(1)).view(np.int64)
    return values, pos
