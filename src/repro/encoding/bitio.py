"""Bit-level I/O used by the entropy coders.

The writer accumulates bits most-significant-first into a Python
``bytearray``; the reader consumes them in the same order.  Both support
bulk operations on NumPy arrays of per-symbol codes
(:meth:`BitWriter.write_bits_array` / :meth:`BitReader.read_bits_array`)
so the packed fixed-width streams of the lossless backends avoid
Python-level loops on the hot path; the bulk forms produce bit-identical
streams to their scalar counterparts applied element-wise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits (MSB first) into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accum = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""

        self.write_bits(int(bit) & 1, 1)

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value`` (most significant bit first)."""

        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return
        if value < 0:
            raise ValueError("value must be non-negative; encode sign separately")
        if value >> count:
            raise ValueError(f"value {value} does not fit in {count} bits")
        self._accum = (self._accum << count) | value
        self._nbits += count
        while self._nbits >= 8:
            self._nbits -= 8
            self._buffer.append((self._accum >> self._nbits) & 0xFF)
        # Keep only the residual bits to avoid unbounded growth of _accum.
        self._accum &= (1 << self._nbits) - 1

    def write_bits_array(self, values: np.ndarray, counts) -> None:
        """Append many ``(value, count)`` fields in one vectorized pass.

        ``counts`` may be a scalar (fixed-width packing) or an array of
        per-value widths; the resulting bit stream is identical to calling
        :meth:`write_bits` for every pair in order.
        """

        raw = np.asarray(values)
        if raw.dtype.kind == "i" and raw.size and int(raw.min()) < 0:
            raise ValueError("values must be non-negative; encode sign separately")
        values = raw.astype(np.uint64).ravel()
        counts = np.broadcast_to(np.asarray(counts, dtype=np.int64), values.shape)
        if values.size == 0:
            return
        if counts.min() < 0 or counts.max() > 64:
            raise ValueError("counts must be in [0, 64]")
        checkable = (counts > 0) & (counts < 64)
        if np.any(values[checkable] >> counts[checkable].astype(np.uint64)):
            raise ValueError("a value does not fit in its bit count")

        total = int(counts.sum())
        if total == 0:
            return
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        rep_values = np.repeat(values, counts)
        rep_shifts = (np.repeat(counts, counts) - 1 - within).astype(np.uint64)
        bits = ((rep_values >> rep_shifts) & np.uint64(1)).astype(np.uint8)

        # Prepend the writer's pending sub-byte bits so one packbits emits
        # whole bytes; the remainder goes back into the accumulator.
        if self._nbits:
            pending = (
                (np.uint64(self._accum) >> np.arange(self._nbits - 1, -1, -1, dtype=np.uint64))
                & np.uint64(1)
            ).astype(np.uint8)
            bits = np.concatenate([pending, bits])
        n_whole = bits.size // 8
        if n_whole:
            self._buffer.extend(np.packbits(bits[: n_whole * 8]).tobytes())
        tail = bits[n_whole * 8 :]
        self._nbits = int(tail.size)
        self._accum = int(tail @ (1 << np.arange(tail.size - 1, -1, -1))) if tail.size else 0

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero bit."""

        if value < 0:
            raise ValueError("value must be non-negative")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_elias_gamma(self, value: int) -> None:
        """Elias-gamma code for a positive integer (used for run lengths)."""

        if value < 1:
            raise ValueError("Elias gamma encodes integers >= 1")
        nbits = value.bit_length()
        self.write_bits(0, nbits - 1)
        self.write_bits(value, nbits)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""

        return len(self._buffer) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return the written bits as bytes, zero-padding the final byte."""

        out = bytearray(self._buffer)
        if self._nbits:
            out.append((self._accum << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bits (MSB first) from a byte buffer produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` past the end of the buffer."""

        if self._pos >= len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer (MSB first)."""

        if count < 0:
            raise ValueError("count must be >= 0")
        value = 0
        remaining = count
        while remaining:
            if self._pos >= len(self._data) * 8:
                raise EOFError("bit stream exhausted")
            byte_index = self._pos >> 3
            bit_offset = self._pos & 7
            available = 8 - bit_offset
            take = min(available, remaining)
            byte = self._data[byte_index]
            chunk = (byte >> (available - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._pos += take
            remaining -= take
        return value

    def read_bits_array(self, counts) -> np.ndarray:
        """Read many bit fields at once; inverse of ``write_bits_array``.

        ``counts`` is an array of per-field widths (0 yields 0).  Returns a
        uint64 array and advances the bit position by ``counts.sum()``.
        """

        counts = np.asarray(counts, dtype=np.int64).ravel()
        if counts.size == 0:
            return np.empty(0, dtype=np.uint64)
        if counts.min() < 0 or counts.max() > 64:
            raise ValueError("counts must be in [0, 64]")
        total = int(counts.sum())
        if self._pos + total > len(self._data) * 8:
            raise EOFError("bit stream exhausted")

        start_byte = self._pos >> 3
        end_byte = (self._pos + total + 7) >> 3
        window = np.frombuffer(self._data, dtype=np.uint8, count=end_byte - start_byte, offset=start_byte)
        bits = np.unpackbits(window)[self._pos - start_byte * 8 :][:total]

        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        weights = np.uint64(1) << (np.repeat(counts, counts) - 1 - within).astype(np.uint64)
        contributions = bits.astype(np.uint64) * weights
        out = np.zeros(counts.size, dtype=np.uint64)
        nonzero = counts > 0
        if total:
            out[nonzero] = np.add.reduceat(contributions, starts[nonzero])
        self._pos += total
        return out

    def read_unary(self) -> int:
        """Read a unary-coded value (count of one-bits before the zero)."""

        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_elias_gamma(self) -> int:
        """Read an Elias-gamma coded positive integer."""

        zeros = 0
        while True:
            bit = self.read_bit()
            if bit:
                break
            zeros += 1
        value = 1
        if zeros:
            value = (1 << zeros) | self.read_bits(zeros)
        return value

    def align_to_byte(self) -> None:
        """Skip to the next byte boundary (no-op when already aligned)."""

        self._pos = (self._pos + 7) & ~7
