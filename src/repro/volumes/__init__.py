"""Native 3D volume compression pipeline (tiling, parallel workers, metrics)."""

from repro.volumes.pipeline import (
    CompressedVolume,
    VolumeTile,
    compress_volume,
    decompress_volume,
    default_volume_cache,
    measure_volume_field,
    shard_volume,
    slice_baseline,
    tile_offsets,
    volume_metrics,
)
from repro.volumes.streaming import (
    compress_volume_stream,
    decompress_volume_stream,
    npy_volume_info,
    open_slab_source,
)

__all__ = [
    "CompressedVolume",
    "VolumeTile",
    "compress_volume",
    "compress_volume_stream",
    "decompress_volume",
    "decompress_volume_stream",
    "default_volume_cache",
    "measure_volume_field",
    "npy_volume_info",
    "open_slab_source",
    "shard_volume",
    "slice_baseline",
    "tile_offsets",
    "volume_metrics",
]
