"""Native 3D volume compression pipeline (tiling, parallel workers, metrics)."""

from repro.volumes.pipeline import (
    CompressedVolume,
    VolumeTile,
    compress_volume,
    decompress_volume,
    default_volume_cache,
    measure_volume_field,
    shard_volume,
    slice_baseline,
    tile_offsets,
    volume_metrics,
)

__all__ = [
    "CompressedVolume",
    "VolumeTile",
    "compress_volume",
    "decompress_volume",
    "default_volume_cache",
    "measure_volume_field",
    "shard_volume",
    "slice_baseline",
    "tile_offsets",
    "volume_metrics",
]
