"""Bounded-memory streaming over the tiled volume pipeline.

:func:`repro.volumes.pipeline.compress_volume` needs the whole volume (and
its shards) resident; the paper's target snapshots are exactly the arrays
where that is the limiting cost.  This module streams the same pipeline
slab by slab — a slab is ``tile_shape[0]`` rows — holding at most

* the current slab,
* the previous slab's axis-0 halo planes (one volume cross-section), and
* the entropy contexts the wavefront chain still needs,

so peak memory is bounded by one slab working set regardless of volume
depth.  The outputs are **bit-identical** to the one-shot pipeline: halo
planes and entropy contexts are schedule-independent (the PR 5 grid-parity
invariant), so re-grouping the anti-diagonal wavefront into slab-major
order changes nothing about what each tile's encoder sees.

Sources are either in-memory arrays or ``.npy`` paths.  File sources are
read with explicit per-slab ``seek`` + :func:`numpy.fromfile` rather than
:func:`numpy.memmap`: mapped pages count toward RSS until the OS reclaims
them, which would defeat the memory bound this module exists to provide
(and which CI's ``stream-peak-rss`` cell gates).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compressors.base import CompressedField
from repro.compressors.registry import make_compressor
from repro.core.pipeline import ExperimentCache, memoized_map
from repro.obs.trace import span as obs_span, tracing_enabled
from repro.utils.parallel import (
    ParallelConfig,
    SharedArraySession,
    WorkerPool,
    use_shared_arrays,
)
from repro.utils.validation import ensure_positive
from repro.volumes.pipeline import (
    DEFAULT_TILE_SHAPE,
    CompressedVolume,
    VolumeTile,
    _check_tile_shape,
    _compress_tile,
    _compress_tile_halo,
    _compress_tile_halo_shm,
    _compress_tile_halo_shm_traced,
    _compress_tile_halo_traced,
    _compress_tile_shm,
    _compress_tile_shm_traced,
    _compress_tile_traced,
    _record_compress,
    _reference_axis,
    _run_traced_workers,
    _tile_region,
    _VOLUME_CACHE,
)

__all__ = [
    "npy_volume_info",
    "open_slab_source",
    "compress_volume_stream",
    "decompress_volume_stream",
]


def npy_volume_info(path) -> Tuple[Tuple[int, ...], np.dtype, int]:
    """Parse an ``.npy`` header: ``(shape, dtype, data_offset)``.

    Only C-order arrays are accepted — slab reads rely on rows being
    contiguous on disk.
    """

    with open(path, "rb") as handle:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported .npy format version {version} in {path}")
        if fortran:
            raise ValueError(
                f"{path} is Fortran-ordered; streaming needs C-order rows"
            )
        return tuple(int(s) for s in shape), np.dtype(dtype), handle.tell()


class _NpySlabSource:
    """Slab reader over a C-order 3D ``.npy`` file (seek + fromfile)."""

    def __init__(self, path) -> None:
        self.path = path
        self.shape, self.dtype, self._data_offset = npy_volume_info(path)
        if len(self.shape) != 3:
            raise ValueError(
                f"streaming expects a 3D volume, got shape {self.shape} in {path}"
            )
        self._row_nbytes = (
            int(np.prod(self.shape[1:], dtype=np.int64)) * self.dtype.itemsize
        )

    def read(self, row_start: int, rows: int) -> np.ndarray:
        count = rows * int(np.prod(self.shape[1:], dtype=np.int64))
        with open(self.path, "rb") as handle:
            handle.seek(self._data_offset + row_start * self._row_nbytes)
            flat = np.fromfile(handle, dtype=self.dtype, count=count)
        if flat.size != count:
            raise ValueError(
                f"{self.path}: truncated read at rows "
                f"[{row_start}, {row_start + rows})"
            )
        return flat.reshape((rows,) + self.shape[1:])


class _ArraySlabSource:
    """Slab reader over an in-memory (or memory-mapped) 3D array."""

    def __init__(self, volume: np.ndarray) -> None:
        if volume.ndim != 3:
            raise ValueError(f"streaming expects a 3D volume, got {volume.ndim}D")
        self._volume = volume
        self.shape = tuple(int(s) for s in volume.shape)
        self.dtype = volume.dtype

    def read(self, row_start: int, rows: int) -> np.ndarray:
        return np.ascontiguousarray(self._volume[row_start : row_start + rows])


def open_slab_source(source) -> Union[_NpySlabSource, _ArraySlabSource]:
    """A slab reader for ``source`` (a 3D ndarray or an ``.npy`` path).

    Path sources give the strict memory bound (each slab is read with an
    explicit ``seek``/``fromfile``); array sources stream whatever the
    caller already holds.
    """

    if isinstance(source, np.ndarray):
        return _ArraySlabSource(source)
    return _NpySlabSource(source)


def _merge_counters(total, counters):
    if counters is None:
        return total
    total = total or {}
    for key, value in counters.items():
        total[key] = total.get(key, 0) + value
    return total


def compress_volume_stream(
    source,
    compressor: str = "sz",
    error_bound: float = 1e-3,
    *,
    tile_shape: Sequence[int] = DEFAULT_TILE_SHAPE,
    compressor_options: Optional[Dict] = None,
    parallel: Optional[ParallelConfig] = None,
    cache: Union[ExperimentCache, bool, None] = None,
    halo: bool = False,
) -> CompressedVolume:
    """Compress a volume slab by slab; bit-identical to ``compress_volume``.

    ``source`` is a 3D array or a path to a C-order ``.npy`` file.  Memo
    keys match the one-shot pipeline exactly, so the two paths share the
    tile cache.  With ``parallel`` (a process pool), each slab is shared
    once and its tiles fan out over the zero-copy descriptor protocol;
    the in-slab schedule is the 2D wavefront over the remaining axes, so
    the halo chain sees tiles in a valid wavefront order either way.
    """

    reader = open_slab_source(source)
    ensure_positive(error_bound, "error_bound")
    tile = _check_tile_shape(tile_shape)
    options = dict(compressor_options or {})
    if cache is None or cache is True:
        cache = _VOLUME_CACHE
    elif cache is False:
        cache = None
    config_key = f"{compressor}:{error_bound!r}:{sorted(options.items())!r}"
    shape = reader.shape
    began = time.perf_counter()

    from repro.compressors.halo import TileHalo

    tiles: List[VolumeTile] = []
    total_counters: Optional[Dict[str, int]] = None
    # Previous slab's axis-0 faces and the chain context the next slab's
    # origin-column tile references — the only cross-slab state.
    prev_faces: Dict[Tuple[int, int], np.ndarray] = {}
    prev_origin_context: Optional[object] = None

    with WorkerPool(parallel) as pool, obs_span(
        "volume.compress.stream",
        "volume",
        compressor=compressor,
        halo=halo,
        slabs=-(-shape[0] // tile[0]),
    ):
        for slab_index, row_start in enumerate(range(0, shape[0], tile[0])):
            rows = min(tile[0], shape[0] - row_start)
            slab = reader.read(row_start, rows)
            with SharedArraySession() as session:
                slab_spec = (
                    session.share(slab) if use_shared_arrays(parallel) else None
                )
                slab_tiles, counters, faces, context = _compress_slab(
                    slab,
                    slab_spec,
                    row_start,
                    slab_index,
                    tile,
                    shape,
                    compressor,
                    error_bound,
                    options,
                    config_key,
                    pool,
                    cache,
                    halo,
                    prev_faces,
                    prev_origin_context,
                    TileHalo,
                )
            tiles.extend(slab_tiles)
            total_counters = _merge_counters(total_counters, counters)
            prev_faces = faces
            prev_origin_context = context
            # Release the slab before the next read so the peak holds one
            # slab, not two — the memory bound this module promises.
            del slab

    return _record_compress(
        CompressedVolume(
            shape=shape,
            tile_shape=tile,
            compressor=compressor,
            error_bound=float(error_bound),
            tiles=tuple(tiles),
            cache_counters=total_counters,
            halo=halo,
        ),
        began,
    )


def _compress_slab(
    slab: np.ndarray,
    slab_spec,
    row_start: int,
    slab_index: int,
    tile: Tuple[int, int, int],
    shape: Tuple[int, int, int],
    compressor: str,
    error_bound: float,
    options: Dict,
    config_key: str,
    pool: WorkerPool,
    cache: Optional[ExperimentCache],
    halo: bool,
    prev_faces: Dict[Tuple[int, int], np.ndarray],
    prev_origin_context: Optional[object],
    TileHalo,
):
    """One slab of the streaming compress; returns what the next slab needs.

    Returns ``(tiles, counters, axis0_faces, origin_context)`` where
    ``axis0_faces`` maps the (axis-1, axis-2) tile offset to the tile's
    high axis-0 face and ``origin_context`` is the context of the slab's
    (0, 0) tile — the only entropy context the next slab references
    (every other tile's reference axis points within its own slab).
    """

    offsets2d = [
        (j, k)
        for j in range(0, shape[1], tile[1])
        for k in range(0, shape[2], tile[2])
    ]
    results: List[Optional[CompressedField]] = [None] * len(offsets2d)
    position = {off: idx for idx, off in enumerate(offsets2d)}
    total_counters: Optional[Dict[str, int]] = None

    def tile_values_of(j: int, k: int) -> np.ndarray:
        return np.ascontiguousarray(
            slab[:, j : j + tile[1], k : k + tile[2]]
        )

    if not halo:
        items = [(off, tile_values_of(*off)) for off in offsets2d]

        def key_fn(item) -> str:
            return ExperimentCache.key("volume-tile", config_key, item[1], "")

        def compute_many(pending):
            if slab_spec is not None:
                tasks = [
                    (
                        compressor,
                        error_bound,
                        options,
                        slab_spec,
                        _tile_region((0, off[0], off[1]), values.shape),
                    )
                    for off, values in pending
                ]
                worker, traced = _compress_tile_shm, _compress_tile_shm_traced
            else:
                tasks = [
                    (compressor, error_bound, options, values)
                    for _, values in pending
                ]
                worker, traced = _compress_tile, _compress_tile_traced
            if tracing_enabled():
                return _run_traced_workers(traced, tasks, pool, wave=slab_index)
            return pool.map(worker, tasks)

        with obs_span("volume.wave", "volume", wave=slab_index, tiles=len(items)):
            wave_results, counters = memoized_map(items, key_fn, compute_many, cache)
        total_counters = _merge_counters(total_counters, counters)
        for idx, compressed in enumerate(wave_results):
            results[idx] = compressed
        tiles = [
            VolumeTile(offset=(row_start, off[0], off[1]), compressed=results[idx])
            for idx, off in enumerate(offsets2d)
        ]
        return tiles, total_counters, {}, None

    # Halo: 2D wavefront over (axis-1, axis-2); axis-0 planes come from
    # the previous slab, in-slab planes from earlier 2D waves.
    waves2d: Dict[int, List[Tuple[int, int]]] = {}
    for j, k in offsets2d:
        waves2d.setdefault(j // tile[1] + k // tile[2], []).append((j, k))

    slab_faces: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
    slab_contexts: Dict[Tuple[int, int], Optional[object]] = {}

    for wave2d in sorted(waves2d):
        wave_offsets = waves2d[wave2d]
        items = []
        for j, k in wave_offsets:
            values = tile_values_of(j, k)
            planes: List[Optional[np.ndarray]] = [
                prev_faces.get((j, k)) if row_start > 0 else None,
                slab_faces[(j - tile[1], k)].get(1) if j > 0 else None,
                slab_faces[(j, k - tile[2])].get(2) if k > 0 else None,
            ]
            grid = (slab_index, j // tile[1], k // tile[2])
            ref_axis = _reference_axis(grid)
            context = None
            if ref_axis == 2:
                context = slab_contexts[(j, k - tile[2])]
            elif ref_axis == 1:
                context = slab_contexts[(j - tile[1], k)]
            elif ref_axis == 0:
                context = prev_origin_context
            items.append(((j, k), values, TileHalo.build(planes, context)))

        def key_fn(item) -> str:
            _, values, tile_halo = item
            halo_key = tile_halo.digest() if tile_halo is not None else "-"
            return ExperimentCache.key(
                "volume-tile-halo", f"{config_key}:{halo_key}", values, ""
            )

        def compute_many(pending):
            if slab_spec is not None:
                tasks = [
                    (
                        compressor,
                        error_bound,
                        options,
                        slab_spec,
                        _tile_region((0, off[0], off[1]), values.shape),
                        tile_halo,
                    )
                    for off, values, tile_halo in pending
                ]
                worker, traced = (
                    _compress_tile_halo_shm,
                    _compress_tile_halo_shm_traced,
                )
            else:
                tasks = [
                    (compressor, error_bound, options, values, tile_halo)
                    for _, values, tile_halo in pending
                ]
                worker, traced = _compress_tile_halo, _compress_tile_halo_traced
            wave = slab_index + wave2d
            if tracing_enabled():
                return _run_traced_workers(traced, tasks, pool, wave=wave)
            return pool.map(worker, tasks)

        with obs_span(
            "volume.wave", "volume", wave=slab_index + wave2d, tiles=len(items)
        ):
            wave_results, counters = memoized_map(items, key_fn, compute_many, cache)
        total_counters = _merge_counters(total_counters, counters)
        for (off, _, _), (compressed, tile_faces, context) in zip(
            items, wave_results
        ):
            results[position[off]] = compressed
            slab_faces[off] = tile_faces
            slab_contexts[off] = context

    tiles = [
        VolumeTile(offset=(row_start, off[0], off[1]), compressed=results[idx])
        for idx, off in enumerate(offsets2d)
    ]
    axis0_faces = {
        off: faces[0] for off, faces in slab_faces.items() if 0 in faces
    }
    return tiles, total_counters, axis0_faces, slab_contexts.get((0, 0))


def decompress_volume_stream(
    compressed: CompressedVolume,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(row_start, slab)`` reconstructions in slab order.

    The streaming counterpart of
    :func:`repro.volumes.pipeline.decompress_volume`: at most one slab is
    resident, plus the single boundary row-plane and the entropy contexts
    the halo chain carries forward.  Slabs concatenated along axis 0 are
    bit-identical to the one-shot decode.
    """

    from repro.compressors.halo import TileHalo

    tile_shape = compressed.tile_shape
    shape = compressed.shape
    codec = make_compressor(compressed.compressor, compressed.error_bound)
    by_slab: Dict[int, List[VolumeTile]] = {}
    for vtile in compressed.tiles:
        by_slab.setdefault(vtile.offset[0], []).append(vtile)

    # One boundary row-plane and the previous slab's origin-tile context
    # are the only cross-slab carry.
    prev_plane: Optional[np.ndarray] = None
    prev_origin_context: Optional[object] = None

    for row_start in sorted(by_slab):
        rows = min(tile_shape[0], shape[0] - row_start)
        slab = np.empty((rows, shape[1], shape[2]), dtype=np.float64)
        contexts: Dict[Tuple[int, int], Optional[object]] = {}
        # Scan order within the slab visits every tile after its in-slab
        # low-face neighbours; axis-0 halo planes come from prev_plane.
        for vtile in sorted(by_slab[row_start], key=lambda t: t.offset):
            offset = vtile.offset
            local = (offset[1], offset[2])
            if not compressed.halo:
                values = codec.decompress(vtile.compressed)
                slab[
                    :,
                    offset[1] : offset[1] + values.shape[1],
                    offset[2] : offset[2] + values.shape[2],
                ] = values
                continue
            extent = tuple(
                min(t, s - o) for t, s, o in zip(tile_shape, shape, offset)
            )
            planes: List[Optional[np.ndarray]] = [
                np.ascontiguousarray(
                    prev_plane[
                        offset[1] : offset[1] + extent[1],
                        offset[2] : offset[2] + extent[2],
                    ]
                )
                if offset[0] > 0
                else None,
                np.ascontiguousarray(
                    slab[:, offset[1] - 1, offset[2] : offset[2] + extent[2]]
                )
                if offset[1] > 0
                else None,
                np.ascontiguousarray(
                    slab[:, offset[1] : offset[1] + extent[1], offset[2] - 1]
                )
                if offset[2] > 0
                else None,
            ]
            grid = tuple(o // t for o, t in zip(offset, tile_shape))
            ref_axis = _reference_axis(grid)
            context = None
            if ref_axis == 2:
                context = contexts[(offset[1], offset[2] - tile_shape[2])]
            elif ref_axis == 1:
                context = contexts[(offset[1] - tile_shape[1], offset[2])]
            elif ref_axis == 0:
                context = prev_origin_context
            halo = TileHalo.build(planes, context)
            if getattr(codec, "supports_halo", False):
                values, own_context = codec.decompress_with_context(
                    vtile.compressed, halo=halo
                )
            else:
                values, own_context = codec.decompress(vtile.compressed), None
            contexts[local] = own_context
            slab[
                :,
                offset[1] : offset[1] + values.shape[1],
                offset[2] : offset[2] + values.shape[2],
            ] = values
        prev_plane = slab[-1].copy()
        prev_origin_context = contexts.get((0, 0))
        yield row_start, slab
