"""Tiled compression pipeline for 3D volumes.

The paper's application data is volumetric (Miranda hydrodynamics
snapshots); with the dimension-general block-codec engine the compressors
accept 3D arrays natively, and this module supplies the scale-out layer
around them:

* :func:`shard_volume` cuts a large volume into axis-aligned tiles (edge
  tiles may be smaller — the compressors pad internally), so a volume far
  larger than memory-friendly working sets streams through the codec one
  tile at a time;
* :func:`compress_volume` runs the tiles through a compressor — optionally
  over a :class:`repro.utils.parallel.ParallelConfig` process pool — and
  memoizes per-tile results in the shared
  :class:`repro.core.pipeline.ExperimentCache` (content-hash keyed, so
  repeated tiles such as quiescent far-field regions are compressed once);
* :func:`decompress_volume` reassembles the tiles back into the volume;
* :func:`measure_volume_field` produces the same
  :class:`~repro.core.experiment.CompressionRecord` rows the 2D pipeline
  emits, with the 3D variogram range as the correlation statistic, which
  is what lets :func:`repro.core.pipeline.run_experiment` sweep volume
  datasets transparently;
* :func:`slice_baseline` is the paper's original slice-by-slice procedure,
  kept as the comparison baseline for the native volume path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compressors.base import CompressedField
from repro.compressors.registry import make_compressor
from repro.core.pipeline import ExperimentCache, memoized_map
from repro.obs.metrics import REGISTRY, publish_cache_counters
from repro.obs.trace import (
    active_tracer,
    span as obs_span,
    tracing_enabled,
    worker_capture,
)
from repro.pressio.metrics import CompressionMetrics, error_statistics
from repro.utils.blocking import grid_offsets
from repro.utils.parallel import (
    ParallelConfig,
    SharedArraySession,
    WorkerPool,
    read_shared,
    use_shared_arrays,
    write_shared,
)
from repro.utils.validation import ensure_ndim, ensure_positive

__all__ = [
    "VolumeTile",
    "CompressedVolume",
    "tile_offsets",
    "shard_volume",
    "compress_volume",
    "decompress_volume",
    "volume_metrics",
    "slice_baseline",
    "measure_volume_field",
    "default_volume_cache",
]

#: Default tile edge; 64^3 float64 tiles are 2 MB — large enough that the
#: per-tile container overhead vanishes, small enough to parallelise.
DEFAULT_TILE_SHAPE = (64, 64, 64)

_VOLUME_CACHE = ExperimentCache(max_entries=128)


def default_volume_cache() -> ExperimentCache:
    """The process-wide tile cache used when no cache is passed."""

    return _VOLUME_CACHE


def _publish_volume_cache(registry) -> None:
    publish_cache_counters(registry, "volume-tile", _VOLUME_CACHE.counters())


REGISTRY.register_collector(_publish_volume_cache)


def _record_compress(result: "CompressedVolume", began: float) -> "CompressedVolume":
    """Publish one compress_volume call into the process-wide registry.

    Tile throughput and end-to-end latency of the wave/tile path, by
    compressor — the numbers the serve layer's metrics history and
    ``/debug`` dashboard chart for ingest-heavy workloads.
    """

    labels = {"compressor": result.compressor}
    REGISTRY.counter(
        "repro_volume_tiles_compressed_total",
        len(result.tiles),
        labels,
        help="Tiles processed by compress_volume, by compressor.",
    )
    REGISTRY.observe(
        "repro_volume_compress_seconds",
        time.perf_counter() - began,
        labels,
        help="compress_volume wall time by compressor.",
    )
    return result


@dataclass(frozen=True)
class VolumeTile:
    """One compressed tile and its position in the volume."""

    offset: Tuple[int, int, int]
    compressed: CompressedField


@dataclass(frozen=True)
class CompressedVolume:
    """A tiled compressed volume: the tiles plus bookkeeping.

    ``cache_counters`` reports the tile-memo effectiveness of the
    producing :func:`compress_volume` call (hits / misses / evictions of
    the :class:`~repro.core.pipeline.ExperimentCache` during that call,
    plus the number of in-call duplicate tiles resolved without a cache
    lookup); ``None`` when memoization was disabled.

    ``halo`` marks a halo-aware volume: tiles were compressed against
    their low-face neighbours' reconstructed planes and entropy contexts
    (wavefront order), and :func:`decompress_volume` must replay the same
    chain — tiles of a halo volume are not independently decodable.
    """

    shape: Tuple[int, int, int]
    tile_shape: Tuple[int, int, int]
    compressor: str
    error_bound: float
    tiles: Tuple[VolumeTile, ...]
    cache_counters: Optional[Dict[str, int]] = None
    halo: bool = False

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def original_nbytes(self) -> int:
        return sum(tile.compressed.original_nbytes for tile in self.tiles)

    @property
    def compressed_nbytes(self) -> int:
        return sum(tile.compressed.compressed_nbytes for tile in self.tiles)

    @property
    def compression_ratio(self) -> float:
        compressed = self.compressed_nbytes
        if compressed == 0:
            return float("inf")
        return self.original_nbytes / compressed

    @property
    def metrics(self) -> Dict[str, int]:
        """``cache_counters`` under the unified registry names.

        The canonical observability names for the tile memo (the legacy
        ``cache_counters`` keys stay available as aliases for one
        release); empty when memoization was disabled.
        """

        counters = self.cache_counters or {}
        names = {
            "hits": 'repro_cache_hits_total{cache="volume-tile"}',
            "misses": 'repro_cache_misses_total{cache="volume-tile"}',
            "evictions": 'repro_cache_evictions_total{cache="volume-tile"}',
            "in_call_duplicates": (
                'repro_cache_in_call_duplicates_total{cache="volume-tile"}'
            ),
        }
        return {
            names[key]: value for key, value in counters.items() if key in names
        }


def _check_volume(volume: np.ndarray) -> np.ndarray:
    return ensure_ndim(volume, (3,), "volume")


def _check_tile_shape(tile_shape: Sequence[int]) -> Tuple[int, int, int]:
    tile = tuple(int(t) for t in tile_shape)
    if len(tile) != 3:
        raise ValueError(f"tile_shape must have 3 entries, got {tile_shape}")
    for edge in tile:
        ensure_positive(edge, "tile edge")
    return tile


def tile_offsets(
    shape: Sequence[int], tile_shape: Sequence[int]
) -> List[Tuple[int, int, int]]:
    """Scan-order offsets of the tiles covering ``shape``."""

    tile = _check_tile_shape(tile_shape)
    return grid_offsets(tuple(int(s) for s in shape), tile)


def shard_volume(
    volume: np.ndarray, tile_shape: Sequence[int] = DEFAULT_TILE_SHAPE
) -> List[Tuple[Tuple[int, int, int], np.ndarray]]:
    """Cut a volume into C-contiguous tiles; edge tiles may be smaller."""

    vol = _check_volume(volume)
    tile = _check_tile_shape(tile_shape)
    out: List[Tuple[Tuple[int, int, int], np.ndarray]] = []
    for offset in tile_offsets(vol.shape, tile):
        region = tuple(
            slice(start, start + edge) for start, edge in zip(offset, tile)
        )
        out.append((offset, np.ascontiguousarray(vol[region])))
    return out


def _compress_tile(task) -> CompressedField:
    """Top-level worker so tile jobs pickle for process pools.

    The reconstruction by-product is dropped: it doubles the IPC payload
    and the pipeline decompresses on demand anyway.
    """

    name, error_bound, options, tile = task
    compressor = make_compressor(name, error_bound, **options)
    return replace(compressor.compress(tile), reconstruction=None)


def _compress_tile_halo(task):
    """Halo-mode worker: returns the payload plus what neighbours need.

    Instead of the full reconstruction (2 MB per 64^3 tile of IPC), only
    the three high-index faces — the planes the tile's high neighbours
    will predict from — and the tile's entropy context travel back.
    """

    from repro.compressors.halo import reconstruction_faces

    name, error_bound, options, tile, halo = task
    compressor = make_compressor(name, error_bound, **options)
    if getattr(compressor, "supports_halo", False):
        compressed = compressor.compress(tile, halo=halo, collect_context=True)
    else:
        compressed = compressor.compress(tile)
    faces = reconstruction_faces(compressed.reconstruction)
    context = compressed.entropy_context
    return replace(compressed, reconstruction=None, entropy_context=None), faces, context


def _compress_tile_shm(task) -> CompressedField:
    """Zero-copy variant of :func:`_compress_tile`.

    The task carries a :class:`~repro.utils.parallel.SharedArraySpec`
    descriptor of the whole volume plus this tile's region; the worker
    reads its tile straight out of the shared input segment, so the only
    thing returned through the pickle channel is the compressed payload.
    """

    name, error_bound, options, spec, region = task
    tile = read_shared(spec, region)
    compressor = make_compressor(name, error_bound, **options)
    return replace(compressor.compress(tile), reconstruction=None)


def _compress_tile_halo_shm(task):
    """Zero-copy variant of :func:`_compress_tile_halo`.

    Returns the same documented ``(compressed, faces, context)`` triple;
    only the halo planes and entropy context (small) travel in, only the
    payload, faces and context travel back.
    """

    from repro.compressors.halo import reconstruction_faces

    name, error_bound, options, spec, region, halo = task
    tile = read_shared(spec, region)
    compressor = make_compressor(name, error_bound, **options)
    if getattr(compressor, "supports_halo", False):
        compressed = compressor.compress(tile, halo=halo, collect_context=True)
    else:
        compressed = compressor.compress(tile)
    faces = reconstruction_faces(compressed.reconstruction)
    context = compressed.entropy_context
    return replace(compressed, reconstruction=None, entropy_context=None), faces, context


def _task_tile_shape(task) -> str:
    """Display shape of a compress task, for worker span attributes."""

    payload = task[3]
    if isinstance(payload, np.ndarray):
        return repr(payload.shape)
    region = task[4]
    return repr(tuple(s.stop - s.start for s in region))


def _compress_tile_traced(task):
    """Traced variant of :func:`_compress_tile` (top-level, picklable).

    Returns the documented ``(compressed, span_tuples)`` payload: the
    worker records its own span capture — a fresh tracer installed for
    the duration of the task, so the per-stage codec spans land in it —
    and ships the capture back as picklable tuples for the submitting
    side to adopt under its wave span.
    """

    with worker_capture() as tracer:
        with tracer.span("volume.tile", "volume", shape=_task_tile_shape(task)):
            result = _compress_tile(task)
    return result, tracer.export_tuples()


def _compress_tile_halo_traced(task):
    """Traced variant of :func:`_compress_tile_halo`.

    Returns ``((compressed, faces, context), span_tuples)`` — the halo
    worker's documented triple plus the worker-side span capture.
    """

    with worker_capture() as tracer:
        with tracer.span("volume.tile", "volume", shape=_task_tile_shape(task)):
            result = _compress_tile_halo(task)
    return result, tracer.export_tuples()


def _compress_tile_shm_traced(task):
    """Traced variant of :func:`_compress_tile_shm`.

    Same ``(compressed, span_tuples)`` contract as
    :func:`_compress_tile_traced` — span adoption is independent of how
    the tile bytes crossed the process boundary.
    """

    with worker_capture() as tracer:
        with tracer.span("volume.tile", "volume", shape=_task_tile_shape(task)):
            result = _compress_tile_shm(task)
    return result, tracer.export_tuples()


def _compress_tile_halo_shm_traced(task):
    """Traced variant of :func:`_compress_tile_halo_shm`.

    Returns ``((compressed, faces, context), span_tuples)``.
    """

    with worker_capture() as tracer:
        with tracer.span("volume.tile", "volume", shape=_task_tile_shape(task)):
            result = _compress_tile_halo_shm(task)
    return result, tracer.export_tuples()


def _run_traced_workers(worker, tasks, pool: WorkerPool, wave: int):
    """Run traced tile workers and adopt their span captures.

    Workers return ``(result, span_tuples)``; each capture is merged into
    the active tracer as soon as the batch returns — re-parented under
    the caller's current (wave) span, one display lane per tile — so the
    caller, and the memo cache behind it, only ever see the bare results.
    """

    tracer = active_tracer()
    submit = time.perf_counter()
    payloads = pool.map(worker, tasks)
    results = []
    for index, (result, tuples) in enumerate(payloads):
        if tracer is not None:
            tracer.adopt(
                tuples, lane=f"wave{wave}.tile{index}", submit_time=submit
            )
        results.append(result)
    return results


def _reference_axis(offset: Tuple[int, ...]) -> Optional[int]:
    """Deterministic choice of the context reference neighbour's axis.

    The highest axis with a low neighbour wins (the fastest-varying axis
    — the most recently compressed neighbour in scan order); ``None`` for
    the origin tile.  Encoder and decoder derive the same rule, so the
    choice is never serialised.
    """

    for axis in range(len(offset) - 1, -1, -1):
        if offset[axis] > 0:
            return axis
    return None


def compress_volume(
    volume: np.ndarray,
    compressor: str = "sz",
    error_bound: float = 1e-3,
    *,
    tile_shape: Sequence[int] = DEFAULT_TILE_SHAPE,
    compressor_options: Optional[Dict] = None,
    parallel: Optional[ParallelConfig] = None,
    cache: Union[ExperimentCache, bool, None] = None,
    halo: bool = False,
) -> CompressedVolume:
    """Compress a 3D volume tile by tile.

    ``cache`` selects the per-tile memo: ``None`` (default) uses the
    process-wide volume cache, an :class:`ExperimentCache` instance uses
    that cache, and ``False`` disables memoization.  Tiles are keyed by
    their content hash plus the (compressor, bound, options) configuration,
    so byte-identical tiles — constant or repeated regions — compress once.

    ``halo=True`` turns on halo-aware tiling: tiles are scheduled in
    wavefront order (anti-diagonals of the tile grid — every tile's
    low-face neighbours belong to an earlier wave, tiles within a wave
    stay independent and parallelise as before), and each tile compresses
    against a :class:`~repro.compressors.halo.TileHalo` of its neighbours'
    reconstructed faces and entropy context.  This recovers the cross-tile
    correlation and entropy-coder amortisation that independent tiles
    lose; the tiles are then only decodable through
    :func:`decompress_volume`'s matching wavefront replay.  Memo keys
    include the halo digest, so halo tiles never alias halo-off results.
    """

    vol = _check_volume(volume)
    ensure_positive(error_bound, "error_bound")
    tile = _check_tile_shape(tile_shape)
    options = dict(compressor_options or {})
    if cache is None or cache is True:
        cache = _VOLUME_CACHE
    elif cache is False:
        cache = None

    config_key = f"{compressor}:{error_bound!r}:{sorted(options.items())!r}"
    shards = shard_volume(vol, tile)
    began = time.perf_counter()

    # Zero-copy path: the volume is shared once, and worker tasks carry a
    # (spec, region) descriptor instead of the tile bytes.  The session
    # guarantees the segment is unlinked on every exit path; the pool is
    # reused across waves so halo runs pay process startup once, not once
    # per wave.
    with SharedArraySession() as session, WorkerPool(parallel) as pool:
        vol_spec = session.share(vol) if use_shared_arrays(parallel) else None

        with obs_span(
            "volume.compress",
            "volume",
            compressor=compressor,
            tiles=len(shards),
            halo=halo,
            zero_copy=vol_spec is not None,
        ):
            if halo:
                tiles, cache_counters = _compress_volume_halo(
                    shards, tile, compressor, error_bound, options, config_key,
                    pool, cache, vol_spec,
                )
                return _record_compress(
                    CompressedVolume(
                        shape=tuple(vol.shape),
                        tile_shape=tile,
                        compressor=compressor,
                        error_bound=float(error_bound),
                        tiles=tiles,
                        cache_counters=cache_counters,
                        halo=True,
                    ),
                    began,
                )

            def key_fn(shard) -> str:
                return ExperimentCache.key("volume-tile", config_key, shard[1], "")

            def compute_many(pending) -> List[CompressedField]:
                if vol_spec is not None:
                    tasks = [
                        (
                            compressor,
                            error_bound,
                            options,
                            vol_spec,
                            _tile_region(offset, tile_values.shape),
                        )
                        for offset, tile_values in pending
                    ]
                    worker, traced = _compress_tile_shm, _compress_tile_shm_traced
                else:
                    tasks = [
                        (compressor, error_bound, options, tile_values)
                        for _, tile_values in pending
                    ]
                    worker, traced = _compress_tile, _compress_tile_traced
                if tracing_enabled():
                    return _run_traced_workers(traced, tasks, pool, wave=0)
                return pool.map(worker, tasks)

            # The non-halo grid is one single independent batch — traced as
            # wave 0 so halo-off traces show the same wave/tile hierarchy.
            with obs_span("volume.wave", "volume", wave=0, tiles=len(shards)):
                results, cache_counters = memoized_map(
                    shards, key_fn, compute_many, cache
                )

            tiles = tuple(
                VolumeTile(offset=offset, compressed=results[idx])
                for idx, (offset, _) in enumerate(shards)
            )
            return _record_compress(
                CompressedVolume(
                    shape=tuple(vol.shape),
                    tile_shape=tile,
                    compressor=compressor,
                    error_bound=float(error_bound),
                    tiles=tiles,
                    cache_counters=cache_counters,
                ),
                began,
            )


def _tile_region(offset: Sequence[int], extent: Sequence[int]):
    """The output-array region a tile at ``offset`` with ``extent`` covers."""

    return tuple(
        slice(start, start + length) for start, length in zip(offset, extent)
    )


def _compress_volume_halo(
    shards,
    tile: Tuple[int, int, int],
    compressor: str,
    error_bound: float,
    options: Dict,
    config_key: str,
    pool: WorkerPool,
    cache: Optional[ExperimentCache],
    vol_spec=None,
):
    """Wavefront-ordered halo compression over the sharded tiles.

    ``vol_spec`` (a :class:`~repro.utils.parallel.SharedArraySpec` of the
    whole volume) switches the tile workers to the zero-copy descriptor
    protocol; ``None`` keeps the pickle path.
    """

    from repro.compressors.halo import TileHalo

    by_offset: Dict[Tuple[int, int, int], int] = {
        offset: idx for idx, (offset, _) in enumerate(shards)
    }
    waves: Dict[int, List[int]] = {}
    for idx, (offset, _) in enumerate(shards):
        wave = sum(o // t for o, t in zip(offset, tile))
        waves.setdefault(wave, []).append(idx)

    faces: Dict[Tuple[int, int, int], Dict[int, np.ndarray]] = {}
    contexts: Dict[Tuple[int, int, int], Optional[object]] = {}
    results: List[Optional[CompressedField]] = [None] * len(shards)
    total_counters: Optional[Dict[str, int]] = None

    for wave in sorted(waves):
        indices = waves[wave]
        halos: List[Optional[TileHalo]] = []
        for idx in indices:
            offset, _ = shards[idx]
            planes: List[Optional[np.ndarray]] = []
            for axis in range(3):
                if offset[axis] > 0:
                    neighbour = list(offset)
                    neighbour[axis] -= tile[axis]
                    planes.append(faces[tuple(neighbour)].get(axis))
                else:
                    planes.append(None)
            ref_axis = _reference_axis(tuple(o // t for o, t in zip(offset, tile)))
            context = None
            if ref_axis is not None:
                neighbour = list(offset)
                neighbour[ref_axis] -= tile[ref_axis]
                context = contexts[tuple(neighbour)]
            halos.append(TileHalo.build(planes, context))

        items = [(shards[idx][0], shards[idx][1], halo) for idx, halo in zip(indices, halos)]

        def key_fn(item) -> str:
            _, tile_values, halo = item
            halo_key = halo.digest() if halo is not None else "-"
            return ExperimentCache.key(
                "volume-tile-halo", f"{config_key}:{halo_key}", tile_values, ""
            )

        def compute_many(pending):
            if vol_spec is not None:
                tasks = [
                    (
                        compressor,
                        error_bound,
                        options,
                        vol_spec,
                        _tile_region(offset, tile_values.shape),
                        halo,
                    )
                    for offset, tile_values, halo in pending
                ]
                worker, traced = (
                    _compress_tile_halo_shm,
                    _compress_tile_halo_shm_traced,
                )
            else:
                tasks = [
                    (compressor, error_bound, options, tile_values, halo)
                    for _, tile_values, halo in pending
                ]
                worker, traced = _compress_tile_halo, _compress_tile_halo_traced
            if tracing_enabled():
                return _run_traced_workers(traced, tasks, pool, wave=wave)
            return pool.map(worker, tasks)

        with obs_span("volume.wave", "volume", wave=wave, tiles=len(indices)):
            wave_results, counters = memoized_map(
                items, key_fn, compute_many, cache
            )
        if counters is not None:
            total_counters = total_counters or {}
            for key, value in counters.items():
                total_counters[key] = total_counters.get(key, 0) + value
        for idx, (compressed, tile_faces, context) in zip(indices, wave_results):
            offset, _ = shards[idx]
            results[idx] = compressed
            faces[offset] = tile_faces
            contexts[offset] = context

    tiles = tuple(
        VolumeTile(offset=offset, compressed=results[idx])
        for idx, (offset, _) in enumerate(shards)
    )
    return tiles, total_counters


def _decode_tile_shm(task):
    """Zero-copy decode worker (top-level, picklable).

    The task carries the compressed tile plus a
    :class:`~repro.utils.parallel.SharedArraySpec` of the shared *output*
    volume: halo neighbour planes are read straight out of it (lower
    waves are complete by the wavefront invariant) and the reconstruction
    is written straight back into it.  The documented return payload is
    ``(shape, entropy_context)`` — the only bytes that ride the pickle
    channel.
    """

    from repro.compressors.halo import TileHalo

    name, error_bound, tile_compressed, out_spec, offset, plane_regions, context = task
    codec = make_compressor(name, error_bound)
    if plane_regions is not None:
        planes = [
            read_shared(out_spec, region) if region is not None else None
            for region in plane_regions
        ]
        halo = TileHalo.build(planes, context)
        if getattr(codec, "supports_halo", False):
            values, own_context = codec.decompress_with_context(
                tile_compressed, halo=halo
            )
        else:
            values, own_context = codec.decompress(tile_compressed), None
    else:
        values, own_context = codec.decompress(tile_compressed), None
    write_shared(out_spec, _tile_region(offset, values.shape), values)
    return tuple(values.shape), own_context


def _decode_tile_shm_traced(task):
    """Traced variant of :func:`_decode_tile_shm`.

    Returns ``((shape, context), span_tuples)`` so the submitting side can
    adopt the worker's span capture under its wave span.
    """

    with worker_capture() as tracer:
        with tracer.span("volume.tile.decode", "volume", offset=repr(task[4])):
            result = _decode_tile_shm(task)
    return result, tracer.export_tuples()


def _decode_waves(compressed: CompressedVolume) -> List[List[int]]:
    """Tile indices grouped into anti-diagonal waves (scan order within).

    For a halo volume every in-wave tile's low-face neighbours sit in
    earlier waves (the PR 5 grid-parity invariant), so tiles of one wave
    decode independently; a halo-off volume is a single wave of fully
    independent tiles.
    """

    if not compressed.halo:
        return [list(range(len(compressed.tiles)))]
    waves: Dict[int, List[int]] = {}
    for idx, tile in enumerate(compressed.tiles):
        wave = sum(o // t for o, t in zip(tile.offset, compressed.tile_shape))
        waves.setdefault(wave, []).append(idx)
    return [waves[wave] for wave in sorted(waves)]


def _decompress_volume_parallel(
    compressed: CompressedVolume, parallel: ParallelConfig
) -> np.ndarray:
    """Parallel wavefront decode into a shared output volume.

    Mirrors the compress-side wavefront: tiles of a wave are decoded
    concurrently by workers that write reconstructions directly into one
    shared output segment and read halo planes from it; only entropy
    contexts (small) cross the boundary between waves.  Bit-identical to
    the serial scan-order decode because halo planes and contexts are
    schedule-independent.
    """

    tile_shape = compressed.tile_shape
    contexts: Dict[Tuple[int, int, int], Optional[object]] = {}
    with SharedArraySession() as session, WorkerPool(parallel) as pool:
        out_spec, out_view = session.allocate(compressed.shape, np.float64)
        waves = _decode_waves(compressed)
        with obs_span(
            "volume.decompress",
            "volume",
            compressor=compressed.compressor,
            tiles=compressed.n_tiles,
            halo=compressed.halo,
            zero_copy=True,
        ):
            for wave, indices in enumerate(waves):
                tasks = []
                for idx in indices:
                    tile = compressed.tiles[idx]
                    offset = tile.offset
                    plane_regions = None
                    context = None
                    if compressed.halo:
                        extent = tuple(
                            min(t, s - o)
                            for t, s, o in zip(
                                tile_shape, compressed.shape, offset
                            )
                        )
                        plane_regions = []
                        for axis in range(3):
                            if offset[axis] > 0:
                                plane_regions.append(
                                    tuple(
                                        offset[a] - 1
                                        if a == axis
                                        else slice(
                                            offset[a], offset[a] + extent[a]
                                        )
                                        for a in range(3)
                                    )
                                )
                            else:
                                plane_regions.append(None)
                        ref_axis = _reference_axis(
                            tuple(o // t for o, t in zip(offset, tile_shape))
                        )
                        if ref_axis is not None:
                            neighbour = list(offset)
                            neighbour[ref_axis] -= tile_shape[ref_axis]
                            context = contexts[tuple(neighbour)]
                    tasks.append(
                        (
                            compressed.compressor,
                            compressed.error_bound,
                            tile.compressed,
                            out_spec,
                            offset,
                            plane_regions,
                            context,
                        )
                    )
                with obs_span(
                    "volume.wave", "volume", wave=wave, tiles=len(indices)
                ):
                    if tracing_enabled():
                        results = _run_traced_workers(
                            _decode_tile_shm_traced, tasks, pool, wave=wave
                        )
                    else:
                        results = pool.map(_decode_tile_shm, tasks)
                for idx, (_, own_context) in zip(indices, results):
                    contexts[compressed.tiles[idx].offset] = own_context
        out = out_view.copy()
        del out_view
    return out


def decompress_volume(
    compressed: CompressedVolume,
    *,
    parallel: Optional[ParallelConfig] = None,
) -> np.ndarray:
    """Reassemble the volume from its compressed tiles.

    Halo volumes are decoded in scan order (which visits every tile after
    its low-face neighbours): each tile's halo planes are sliced straight
    from the already-reconstructed output array, and entropy contexts are
    regenerated tile by tile — bit-identical to what the encoder saw, by
    construction.

    ``parallel`` opts into the wavefront decode: tiles of each
    anti-diagonal wave are decoded concurrently by process-pool workers
    sharing one output segment (see :func:`_decompress_volume_parallel`).
    It requires a process pool and working shared memory; thread configs
    and shared-memory-less platforms fall back to the serial path, whose
    output is bit-identical anyway.
    """

    if use_shared_arrays(parallel):
        return _decompress_volume_parallel(compressed, parallel)

    out = np.empty(compressed.shape, dtype=np.float64)
    codec = make_compressor(compressed.compressor, compressed.error_bound)
    if not compressed.halo:
        for tile in compressed.tiles:
            values = codec.decompress(tile.compressed)
            region = tuple(
                slice(start, start + length)
                for start, length in zip(tile.offset, values.shape)
            )
            out[region] = values
        return out

    from repro.compressors.halo import TileHalo

    tile_shape = compressed.tile_shape
    contexts: Dict[Tuple[int, int, int], Optional[object]] = {}
    for tile in compressed.tiles:
        offset = tile.offset
        extent = tuple(
            min(t, s - o) for t, s, o in zip(tile_shape, compressed.shape, offset)
        )
        planes: List[Optional[np.ndarray]] = []
        for axis in range(3):
            if offset[axis] > 0:
                region = tuple(
                    offset[a] - 1
                    if a == axis
                    else slice(offset[a], offset[a] + extent[a])
                    for a in range(3)
                )
                planes.append(np.ascontiguousarray(out[region]))
            else:
                planes.append(None)
        ref_axis = _reference_axis(
            tuple(o // t for o, t in zip(offset, tile_shape))
        )
        context = None
        if ref_axis is not None:
            neighbour = list(offset)
            neighbour[ref_axis] -= tile_shape[ref_axis]
            context = contexts[tuple(neighbour)]
        halo = TileHalo.build(planes, context)
        if getattr(codec, "supports_halo", False):
            values, own_context = codec.decompress_with_context(
                tile.compressed, halo=halo
            )
        else:
            values, own_context = codec.decompress(tile.compressed), None
        contexts[offset] = own_context
        region = tuple(
            slice(start, start + length)
            for start, length in zip(offset, values.shape)
        )
        out[region] = values
    return out


def volume_metrics(
    volume: np.ndarray,
    compressed: CompressedVolume,
    reconstruction: Optional[np.ndarray] = None,
) -> CompressionMetrics:
    """Volume-level :class:`CompressionMetrics` (the tiled analogue of
    :func:`repro.pressio.metrics.evaluate_metrics`)."""

    vol = np.asarray(_check_volume(volume), dtype=np.float64)
    if reconstruction is None:
        reconstruction = decompress_volume(compressed)
    max_abs_error, rmse, value_range, psnr = error_statistics(vol, reconstruction)
    return CompressionMetrics(
        compression_ratio=compressed.compression_ratio,
        bit_rate=8.0 * compressed.compressed_nbytes / vol.size,
        max_abs_error=max_abs_error,
        rmse=rmse,
        psnr=psnr,
        value_range=value_range,
        error_bound=compressed.error_bound,
        bound_satisfied=max_abs_error <= compressed.error_bound * (1.0 + 1e-9),
    )


def slice_baseline(
    volume: np.ndarray,
    compressor: str = "sz",
    error_bound: float = 1e-3,
    *,
    axis: int = 0,
    compressor_options: Optional[Dict] = None,
) -> float:
    """Compression ratio of the paper's slice-by-slice procedure.

    Every plane along ``axis`` is compressed independently as a 2D field;
    the aggregate CR is the comparison baseline for the native volume
    pipeline (which sees cross-slice correlation the baseline cannot).
    """

    vol = _check_volume(volume)
    codec = make_compressor(
        compressor, error_bound, **(compressor_options or {})
    )
    original = 0
    compressed = 0
    for index in range(vol.shape[axis]):
        plane = np.ascontiguousarray(np.take(vol, index, axis=axis))
        result = codec.compress(plane)
        original += result.original_nbytes
        compressed += result.compressed_nbytes
    return original / compressed if compressed else float("inf")


def measure_volume_field(
    volume: np.ndarray,
    *,
    dataset: str,
    field_label: str,
    config=None,
) -> list:
    """Measure one 3D field under every (compressor, bound) of ``config``.

    Returns the same :class:`~repro.core.experiment.CompressionRecord`
    rows :func:`repro.core.experiment.measure_field` produces for 2D
    fields, so volume datasets flow through
    :func:`repro.core.pipeline.run_experiment` and the CSV/reporting layer
    unchanged.  The correlation statistics are the *3D* analogues: the
    global 3D variogram range
    (:func:`repro.stats.variogram3d.estimate_variogram_range_3d`) and —
    when the volume admits complete ``window^3`` cubes — the std of the
    windowed local 3D variogram ranges
    (:func:`repro.stats.variogram3d.std_local_variogram_range_3d`), the
    Fig. 7 statistic for volumes.  The local SVD statistic has no 3D
    analogue here and stays NaN.
    """

    from repro.core.experiment import (
        CompressionRecord,
        CorrelationStatistics,
        ExperimentConfig,
    )
    from repro.stats.variogram3d import (
        estimate_variogram_range_3d,
        std_local_variogram_range_3d,
    )

    vol = np.asarray(_check_volume(volume), dtype=np.float64)
    config = config or ExperimentConfig()

    global_range = float("nan")
    if config.compute_global_range:
        try:
            global_range = float(estimate_variogram_range_3d(vol))
        except (ValueError, RuntimeError):
            global_range = float("nan")
    std_local_range = float("nan")
    if config.compute_local_variogram and min(vol.shape) >= config.window:
        try:
            std_local_range = float(
                std_local_variogram_range_3d(vol, config.window)
            )
        except (ValueError, RuntimeError):
            std_local_range = float("nan")
    statistics = CorrelationStatistics(
        global_variogram_range=global_range,
        std_local_variogram_range=std_local_range,
        field_variance=float(vol.var()),
        field_mean=float(vol.mean()),
    )

    records = []
    for name in config.compressors:
        options = dict(config.compressor_options.get(name, {}))
        for bound in config.error_bounds:
            compressed = compress_volume(
                vol, name, bound, compressor_options=options
            )
            metrics = volume_metrics(vol, compressed)
            records.append(
                CompressionRecord(
                    dataset=dataset,
                    field_label=field_label,
                    compressor=name,
                    error_bound=float(bound),
                    compression_ratio=metrics.compression_ratio,
                    metrics=metrics,
                    statistics=statistics,
                )
            )
    return records
