"""Multi-tenant compression service over the chunked array store.

``repro serve`` exposes every :class:`~repro.store.array_store.ArrayStore`
under a root directory through a small hand-rolled asyncio HTTP/1.1
server (stdlib only — no new runtime deps):

* ``GET /ds`` — list datasets
* ``GET /ds/{name}?region=0:32,0:32`` — decoded region as ``.npy`` bytes
  (``mode=chunks`` returns index records + still-compressed payloads for
  client-side decode instead)
* ``GET /ds/{name}/info`` — store summary + serving counters
* ``GET /ds/{name}/chunk/{i}`` — one raw chunk payload, ETag'd by its
  content hash (``If-None-Match`` → 304)
* ``PUT /ds/{name}`` / ``POST /ds/{name}/append`` — ingestion
* ``POST /ds/{name}/compact`` — reclaim orphaned payload bytes
* ``GET /stats`` / ``GET /healthz`` — gate, cache and request counters

Requests run under a semaphore-bounded concurrency gate with
per-dataset read/write coordination; identical in-flight region reads
coalesce onto one decode, and decoded chunks are shared across requests
through a content-hash-keyed LRU hot cache
(:class:`~repro.serve.cache.HotChunkCache`).

:class:`~repro.serve.client.StoreClient` is the matching stdlib client
(used by ``repro store get --url ...``); its client-side decode mode
rebuilds a :class:`~repro.store.snapshot.StoreSnapshot` over the wire
payload so decoding is bit-identical to a server-side read.
"""

from repro.serve.cache import HotChunkCache
from repro.serve.client import ServeError, StoreClient
from repro.serve.server import ArrayServer, ServerConfig, ThreadedServer

__all__ = [
    "ArrayServer",
    "ServerConfig",
    "ThreadedServer",
    "HotChunkCache",
    "StoreClient",
    "ServeError",
]
