"""The asyncio array server: routing, concurrency gate, coalescing.

Architecture (one event loop, one thread pool):

* Connections are asyncio streams; each parsed request passes through a
  single semaphore-bounded **concurrency gate** (the
  ``gather_with_concurrency`` idiom) before any work happens, so a flood
  of clients degrades to queueing, never to memory blow-up.  Gate
  occupancy is tracked and surfaced in ``/stats`` — the fault tests
  assert it returns to idle even when clients vanish mid-response.
* Store work (chunk decodes, compression) is CPU-bound and runs on a
  small :class:`~concurrent.futures.ThreadPoolExecutor` via
  ``run_in_executor`` so the loop keeps accepting connections.
* Per-dataset **read/write coordination**: reads share the dataset, a
  PUT/append/compact waits for readers to drain and excludes everything
  else.  Cross-*process* writers are handled one level down by the
  snapshot layer's atomic loads (:mod:`repro.store.snapshot`).
* Identical in-flight region reads **coalesce** onto one decode task
  (singleflight): concurrent clients sweeping the same hot regions cost
  one decode per distinct request, not one per client.  Only in-flight
  work is shared — results are not cached beyond the hot-chunk LRU
  (:class:`~repro.serve.cache.HotChunkCache`), which is content-hash
  keyed and therefore needs no invalidation on writes.
"""

from __future__ import annotations

import asyncio
import contextvars
import heapq
import io
import json
import math
import os
import re
import threading
import time
import zlib
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.accesslog import AccessLog
from repro.obs.dash import render_dashboard
from repro.obs.history import MetricsHistory
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    publish_cache_counters,
    render_prometheus,
)
from repro.obs.profile import DEFAULT_HZ, SamplingProfiler
from repro.obs.trace import Tracer, use_request_tracer
from repro.obs.trace import span as obs_span
from repro.serve.cache import HotChunkCache
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    render_response,
)
from repro.store.array_store import ArrayStore
from repro.store.format import StoreCorruptionError, StoreFormatError
from repro.store.region import format_region, parse_region_text
from repro.store.snapshot import StoreSnapshot

__all__ = ["ServerConfig", "ArrayServer", "SlowRequestLog", "ThreadedServer"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _json_finite(value):
    """Replace non-finite floats with ``None`` (strict-JSON safety).

    History quantiles are NaN for idle histograms; browsers' strict
    ``response.json()`` rejects bare ``NaN`` tokens, so the debug
    endpoints null them out instead.
    """

    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_finite(item) for item in value]
    return value


@dataclass
class ServerConfig:
    """Tunables for one :class:`ArrayServer`."""

    root: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, bound port on server.port
    max_concurrency: int = 8
    cache_nbytes: int = 256 * 1024 * 1024
    decode_workers: int = 2
    max_body_nbytes: int = 512 * 1024 * 1024
    max_response_nbytes: int = 512 * 1024 * 1024
    #: JSON-lines access-log path (``None`` disables the log).
    access_log: Optional[str] = None
    #: Rotate the access log before it would exceed this size (``None``
    #: disables rotation).
    access_log_max_bytes: Optional[int] = None
    #: Rotated access-log files kept (``path.1`` … ``path.N``).
    access_log_backups: int = 3
    #: Expose ``GET /metrics`` (Prometheus text exposition).
    metrics: bool = True
    #: Request-latency histogram bucket bounds in seconds (``None`` =
    #: :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`).
    latency_buckets: Optional[Tuple[float, ...]] = None
    #: Expose the ``/debug`` flight-recorder endpoints.
    debug: bool = True
    #: Metrics-history snapshot interval, seconds.
    history_interval: float = 5.0
    #: Metrics-history ring capacity, points.
    history_capacity: int = 720
    #: Slowest span trees retained per route (0 disables capture).
    slow_requests_per_route: int = 8
    #: Upper bound on ``GET /debug/profile?seconds=N``.
    profile_max_seconds: float = 60.0


class SlowRequestLog:
    """Tail-based retention: only the slowest-N entries per route survive.

    Every request *may* be offered; a per-route min-heap keyed on
    duration keeps the ``per_route`` slowest and evicts the fastest of
    the retained set when a slower one arrives.  :meth:`qualifies` is
    the cheap pre-check — callers build the (comparatively expensive)
    span-tree entry only for requests that would actually be retained.
    """

    def __init__(self, per_route: int = 8) -> None:
        if per_route < 1:
            raise ValueError(f"per_route must be >= 1, got {per_route}")
        self.per_route = per_route
        self._lock = threading.Lock()
        self._seq = 0
        self._heaps: Dict[str, List[Tuple[float, int, Dict]]] = {}

    def qualifies(self, route: str, duration: float) -> bool:
        """Would a request of ``duration`` on ``route`` be retained?"""

        with self._lock:
            heap = self._heaps.get(route)
            if heap is None or len(heap) < self.per_route:
                return True
            return duration > heap[0][0]

    def record(self, route: str, duration: float, entry: Dict) -> None:
        with self._lock:
            heap = self._heaps.setdefault(route, [])
            self._seq += 1
            item = (duration, self._seq, entry)
            if len(heap) < self.per_route:
                heapq.heappush(heap, item)
            elif duration > heap[0][0]:
                heapq.heapreplace(heap, item)

    def snapshot(self) -> Dict[str, List[Dict]]:
        """``{route: [entry, ...]}``, slowest first within each route."""

        with self._lock:
            return {
                route: [item[2] for item in sorted(heap, reverse=True)]
                for route, heap in self._heaps.items()
            }


class _DatasetLock:
    """Async readers-writer lock (write-preferring enough for our mix)."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False

    @asynccontextmanager
    async def read(self):
        async with self._cond:
            await self._cond.wait_for(lambda: not self._writer)
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        async with self._cond:
            await self._cond.wait_for(
                lambda: not self._writer and self._readers == 0
            )
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


class ArrayServer:
    """Serve every store under ``config.root`` over HTTP.

    Use :meth:`start` + :meth:`serve_forever` on a running loop (the CLI
    does), or :class:`ThreadedServer` to run one in a background thread
    (tests and benchmarks).
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.cache = HotChunkCache(max_nbytes=config.cache_nbytes)
        self._server: Optional[asyncio.AbstractServer] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._executor = None
        self._locks: Dict[str, _DatasetLock] = {}
        self._inflight: Dict[Tuple, asyncio.Task] = {}
        self._connections: set = set()
        # Counters (mutated on the loop thread, read anywhere — ints are
        # swapped atomically under the GIL).
        self.requests_total = 0
        self.responses_by_status: Dict[int, int] = {}
        self.coalesced_reads = 0
        self.decoded_bytes_served = 0
        self.gate_active = 0
        self.gate_peak = 0
        # Per-server metrics registry (fresh per instance, so parallel
        # test servers never share counters); the plain ints above stay
        # the source of truth and are published via a collector.
        self.registry = MetricsRegistry()
        self.registry.register_collector(self._collect_metrics)
        self._request_seq = 0
        self._access_log: Optional[AccessLog] = (
            AccessLog(
                config.access_log,
                max_bytes=config.access_log_max_bytes,
                backups=config.access_log_backups,
            )
            if config.access_log
            else None
        )
        self._latency_buckets: Tuple[float, ...] = (
            tuple(sorted(config.latency_buckets))
            if config.latency_buckets
            else DEFAULT_LATENCY_BUCKETS
        )
        # Flight recorder: metrics history ticker + slow-request capture
        # + on-demand profiler (one run in flight at a time).
        self.history = MetricsHistory(
            (self.registry, REGISTRY),
            interval=config.history_interval,
            capacity=config.history_capacity,
        )
        self._slow_log: Optional[SlowRequestLog] = (
            SlowRequestLog(config.slow_requests_per_route)
            if config.slow_requests_per_route > 0
            else None
        )
        self._profiling = False

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._gate = asyncio.Semaphore(self.config.max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.decode_workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            # readuntil() needs headroom for the request head; bodies are
            # length-framed and unaffected.
            limit=64 * 1024,
        )
        self.history.start()

    async def close(self) -> None:
        self.history.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._inflight.values()):
            task.cancel()
        # Kick lingering keep-alive connections so their handler tasks
        # finish before the loop goes away.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._access_log is not None:
            self._access_log.close()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(asyncio.current_task())
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body_nbytes
                    )
                except HttpError as exc:
                    head, body = self._error_response(exc.status, exc.message, False)
                    writer.write(head + body)
                    await writer.drain()
                    return
                if request is None:
                    return
                self.requests_total += 1
                request_id = (
                    request.headers.get("x-request-id") or self._make_request_id()
                )
                # Flight recorder: every request gets a private tracer
                # (context-local, so concurrent requests never mix), but
                # the span tree is only exported if the request turns out
                # to be among the slowest-N for its route.
                tracer: Optional[Tracer] = (
                    Tracer(request_id) if self._slow_log is not None else None
                )
                began = time.perf_counter()
                if tracer is not None:
                    with use_request_tracer(tracer):
                        head, body, keep, status = await self._gated_dispatch(
                            request, request_id
                        )
                else:
                    head, body, keep, status = await self._gated_dispatch(
                        request, request_id
                    )
                duration = time.perf_counter() - began
                self._observe_request(
                    request,
                    request_id=request_id,
                    status=status,
                    duration=duration,
                    nbytes=len(body),
                )
                if tracer is not None and self._slow_log is not None:
                    route = self._route_label(request)
                    if self._slow_log.qualifies(route, duration):
                        self._slow_log.record(
                            route,
                            duration,
                            self._slow_entry(
                                request, request_id, status, duration, began,
                                tracer,
                            ),
                        )
                writer.write(head + body)
                await writer.drain()
                if not keep:
                    return
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            TimeoutError,
        ):
            # Peer vanished mid-request or mid-response; the gate slot was
            # already released by _gated_dispatch's finally.
            return
        except asyncio.CancelledError:
            return
        finally:
            self._connections.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError, asyncio.CancelledError):
                pass

    async def _gated_dispatch(
        self, request: Request, request_id: str = ""
    ) -> Tuple[bytes, bytes, bool, int]:
        assert self._gate is not None
        async with self._gate:
            self.gate_active += 1
            self.gate_peak = max(self.gate_peak, self.gate_active)
            try:
                with obs_span(
                    "serve.request",
                    "serve",
                    route=self._route_label(request),
                    request_id=request_id,
                ):
                    status, body, content_type, extra = await self._dispatch(
                        request
                    )
            except HttpError as exc:
                status = exc.status
                head, body = self._error_response(
                    exc.status, exc.message, request.keep_alive, request_id
                )
                return head, body, request.keep_alive and status < 500, status
            except (StoreCorruptionError,) as exc:
                head, body = self._error_response(
                    500, str(exc), request.keep_alive, request_id
                )
                return head, body, request.keep_alive, 500
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                head, body = self._error_response(
                    500,
                    f"{type(exc).__name__}: {exc}",
                    request.keep_alive,
                    request_id,
                )
                return head, body, request.keep_alive, 500
            finally:
                self.gate_active -= 1
        self._count_status(status)
        extra = dict(extra or {})
        if request_id:
            extra.setdefault("x-request-id", request_id)
        head, body = render_response(
            status,
            body,
            content_type=content_type,
            extra_headers=extra,
            keep_alive=request.keep_alive,
        )
        return head, body, request.keep_alive, status

    def _count_status(self, status: int) -> None:
        """Count one response — the legacy dict AND the registry.

        Every response path funnels through here exactly once (the 4xx/5xx
        branches of :meth:`_gated_dispatch` count via
        :meth:`_error_response` only — they used to double-count 500s),
        so error responses can never vanish from, or inflate, the stats.
        """

        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        self.registry.counter(
            "repro_serve_responses_total",
            labels={"class": f"{status // 100}xx"},
            help="Responses sent, by status class.",
        )

    def _error_response(
        self, status: int, message: str, keep_alive: bool, request_id: str = ""
    ) -> Tuple[bytes, bytes]:
        self._count_status(status)
        payload = json.dumps({"error": message, "status": status}).encode("utf-8")
        return render_response(
            status,
            payload,
            content_type="application/json",
            extra_headers={"x-request-id": request_id} if request_id else None,
            keep_alive=keep_alive,
        )

    def _make_request_id(self) -> str:
        """Generate a request id for requests that did not send one.

        A per-server sequence number, hex-encoded with a short prefix —
        deterministic (no RNG to keep seeded), unique within the server's
        lifetime, and cheap.
        """

        self._request_seq += 1
        return f"req-{self._request_seq:08x}"

    @staticmethod
    def _route_label(request: Request) -> str:
        """Low-cardinality route label for latency histograms."""

        segments = [s for s in request.path.split("/") if s]
        if not segments:
            return "other"
        if segments[0] in ("healthz", "stats", "metrics", "debug"):
            return segments[0]
        if segments[0] != "ds":
            return "other"
        if len(segments) == 1:
            return "ls"
        if len(segments) == 2:
            return "put" if request.method == "PUT" else "read"
        if len(segments) >= 3 and segments[2] in (
            "info",
            "append",
            "compact",
            "chunk",
        ):
            return segments[2]
        return "other"

    def _observe_request(
        self,
        request: Request,
        *,
        request_id: str,
        status: int,
        duration: float,
        nbytes: int,
    ) -> None:
        """Per-request observability: latency histogram + access log."""

        self.registry.observe(
            "repro_serve_request_seconds",
            duration,
            labels={"route": self._route_label(request)},
            buckets=self._latency_buckets,
            help="Request latency by route.",
        )
        if self._access_log is not None:
            self._access_log.log(
                request_id=request_id,
                method=request.method,
                path=request.path,
                status=status,
                duration_ms=duration * 1000.0,
                nbytes=nbytes,
            )

    def _slow_entry(
        self,
        request: Request,
        request_id: str,
        status: int,
        duration: float,
        began: float,
        tracer: Tracer,
    ) -> Dict:
        """Materialize one slow-request capture (span tree included).

        Only built for requests that qualified for retention, so the
        export cost is paid per *retained* request, not per request.
        """

        # repro-lint: disable=timing-discipline -- capture timestamp shown to operators, not a duration
        captured = time.time()
        return {
            "request_id": request_id,
            "method": request.method,
            "path": request.path,
            "status": status,
            "duration_ms": round(duration * 1000.0, 3),
            "captured_at": captured,
            "spans": self._span_tree(tracer, began),
        }

    @staticmethod
    def _span_tree(tracer: Tracer, base: float) -> List[Dict]:
        """The tracer's finished spans as a nested JSON-safe tree.

        Timestamps are milliseconds relative to ``base`` (the request's
        arrival), so the tree reads as a waterfall.
        """

        grouped = tracer.span_tree()

        def render(record) -> Dict:
            node = {
                "name": record.name,
                "category": record.category,
                "lane": record.lane,
                "start_ms": round((record.start - base) * 1000.0, 3),
                "duration_ms": round(record.duration * 1000.0, 3),
            }
            if record.args:
                node["args"] = {
                    key: (
                        value
                        if isinstance(value, (str, int, float, bool))
                        or value is None
                        else repr(value)
                    )
                    for key, value in record.args.items()
                }
            children = grouped.get(record.span_id)
            if children:
                node["children"] = [render(child) for child in children]
            return node

        return [render(root) for root in grouped.get(None, [])]

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Publish the live plain-int counters into the registry."""

        publish_cache_counters(registry, "hot-chunk", self.cache.counters())
        registry.set_counter(
            "repro_serve_requests_total",
            self.requests_total,
            help="Requests accepted by this server.",
        )
        registry.set_counter(
            "repro_serve_coalesced_reads_total",
            self.coalesced_reads,
            help="Reads served by joining an identical in-flight read.",
        )
        registry.set_counter(
            "repro_serve_decoded_bytes_total",
            self.decoded_bytes_served,
            help="Decoded payload bytes served by region reads.",
        )
        registry.gauge(
            "repro_serve_gate_active",
            self.gate_active,
            help="Requests currently inside the concurrency gate.",
        )
        registry.gauge(
            "repro_serve_gate_peak",
            self.gate_peak,
            help="Peak concurrent requests inside the gate.",
        )
        registry.gauge(
            "repro_serve_gate_max_concurrency",
            self.config.max_concurrency,
            help="Configured concurrency gate size.",
        )

    # -- routing ---------------------------------------------------------
    async def _dispatch(self, request: Request):
        """Route one request; returns (status, body, content_type, extra)."""

        segments = [s for s in request.path.split("/") if s]
        if segments == ["healthz"]:
            return 200, b'{"status":"ok"}\n', "application/json", None
        if segments == ["stats"]:
            return await self._handle_stats()
        if segments == ["metrics"]:
            if not self.config.metrics:
                raise HttpError(404, "metrics endpoint disabled")
            self._require_method(request, "GET")
            return self._handle_metrics()
        if segments[0] == "debug":
            if not self.config.debug:
                raise HttpError(404, "debug endpoints disabled")
            self._require_method(request, "GET")
            if len(segments) == 1:
                return self._handle_dashboard()
            if segments == ["debug", "vars"]:
                return self._handle_vars(request)
            if segments == ["debug", "requests"]:
                return self._handle_slow_requests()
            if segments == ["debug", "profile"]:
                return await self._handle_profile(request)
            raise HttpError(404, f"no such route: {request.path}")
        if not segments or segments[0] != "ds":
            raise HttpError(404, f"no such route: {request.path}")
        if len(segments) == 1:
            self._require_method(request, "GET")
            return await self._handle_ls()
        name = segments[1]
        if not _NAME_RE.fullmatch(name):
            raise HttpError(400, f"invalid dataset name {name!r}")
        if len(segments) == 2:
            if request.method == "PUT":
                return await self._handle_put(name, request)
            self._require_method(request, "GET")
            return await self._handle_get(name, request)
        if len(segments) == 3 and segments[2] == "info":
            self._require_method(request, "GET")
            return await self._handle_info(name)
        if len(segments) == 3 and segments[2] == "append":
            self._require_method(request, "POST")
            return await self._handle_append(name, request)
        if len(segments) == 3 and segments[2] == "compact":
            self._require_method(request, "POST")
            return await self._handle_compact(name)
        if len(segments) == 4 and segments[2] == "chunk":
            self._require_method(request, "GET")
            return await self._handle_chunk(name, segments[3], request)
        raise HttpError(404, f"no such route: {request.path}")

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.method} not allowed here (use {method})"
            )

    # -- helpers ---------------------------------------------------------
    def _dataset_path(self, name: str) -> str:
        return os.path.join(self.config.root, name)

    def _lock_for(self, name: str) -> _DatasetLock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = _DatasetLock()
        return lock

    async def _in_executor(self, fn, *args):
        # copy_context() carries the request-scoped tracer (and any other
        # contextvars) across the executor hop, so spans recorded inside
        # blocking store work land in the right request's capture.
        context = contextvars.copy_context()
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, lambda: context.run(fn, *args)
        )

    def _open_snapshot(self, name: str) -> StoreSnapshot:
        path = self._dataset_path(name)
        if not os.path.isfile(os.path.join(path, "meta.json")):
            raise HttpError(404, f"no such dataset: {name}")
        try:
            return StoreSnapshot.open(path)
        except StoreCorruptionError:
            raise
        except StoreFormatError as exc:
            raise HttpError(500, f"unreadable dataset {name}: {exc}") from exc

    async def _coalesced(self, key: Tuple, factory):
        """Singleflight: concurrent identical requests share one task.

        Waiters are shielded so one client disconnecting never cancels
        the shared work under the others; the done-callback both retires
        the key and marks a failure's exception as retrieved (every
        waiter re-raises it themselves).
        """

        task = self._inflight.get(key)
        if task is None:
            task = asyncio.get_running_loop().create_task(factory())

            def _done(t: asyncio.Task, key=key) -> None:
                self._inflight.pop(key, None)
                if not t.cancelled():
                    t.exception()

            task.add_done_callback(_done)
            self._inflight[key] = task
        else:
            self.coalesced_reads += 1
        return await asyncio.shield(task)

    # -- handlers --------------------------------------------------------
    async def _handle_ls(self):
        def scan() -> List[str]:
            root = self.config.root
            names = []
            if os.path.isdir(root):
                for entry in sorted(os.listdir(root)):
                    if os.path.isfile(os.path.join(root, entry, "meta.json")):
                        names.append(entry)
            return names

        names = await self._in_executor(scan)
        body = json.dumps({"datasets": names}).encode("utf-8")
        return 200, body, "application/json", None

    async def _handle_stats(self):
        body = json.dumps(self.stats()).encode("utf-8")
        return 200, body, "application/json", None

    def _handle_metrics(self):
        """Prometheus text exposition: per-server + library-layer metrics.

        The per-server registry (requests, latencies, gate, hot-chunk
        cache) and the process-wide :data:`~repro.obs.metrics.REGISTRY`
        (experiment/volume/store caches, store op counters) use disjoint
        metric names, so their concatenation is valid exposition output.
        """

        body = render_prometheus((self.registry, REGISTRY)).encode("utf-8")
        return 200, body, "text/plain; version=0.0.4; charset=utf-8", None

    # -- flight recorder (GET /debug*) -----------------------------------
    def _handle_dashboard(self):
        poll_ms = max(1000, int(self.config.history_interval * 1000))
        body = render_dashboard(
            poll_ms=poll_ms,
            window_seconds=int(
                self.config.history_interval * self.config.history_capacity
            ),
        ).encode("utf-8")
        return 200, body, "text/html; charset=utf-8", None

    def _handle_vars(self, request: Request):
        window: Optional[float] = None
        if "window" in request.query:
            try:
                window = float(request.query["window"])
            except ValueError as exc:
                raise HttpError(
                    400, f"bad window {request.query['window']!r}"
                ) from exc
            if not window > 0:
                raise HttpError(400, "window must be positive seconds")
        self.history.ensure_fresh()
        payload = _json_finite(self.history.series(window))
        body = json.dumps(payload).encode("utf-8")
        return 200, body, "application/json", None

    def _handle_slow_requests(self):
        if self._slow_log is None:
            raise HttpError(404, "slow-request capture disabled")
        payload = {
            "per_route": self._slow_log.per_route,
            "routes": self._slow_log.snapshot(),
        }
        body = json.dumps(payload).encode("utf-8")
        return 200, body, "application/json", None

    async def _handle_profile(self, request: Request):
        """On-demand sampling profile: block this request, sample the rest.

        The profiler thread samples every *other* thread (the loop, the
        decode executor, pool workers) while this handler awaits an
        ``asyncio.sleep`` — so the loop keeps serving and the profile
        shows where concurrent traffic actually spends its time.  One
        run in flight at a time (429 otherwise); duration is capped by
        ``profile_max_seconds``.
        """

        try:
            seconds = float(request.query.get("seconds", "2"))
            hz = float(request.query.get("hz", str(DEFAULT_HZ)))
        except ValueError as exc:
            raise HttpError(400, f"bad profile parameter: {exc}") from exc
        if not 0 < seconds <= self.config.profile_max_seconds:
            raise HttpError(
                400,
                f"seconds must be in (0, {self.config.profile_max_seconds}]",
            )
        if not 0 < hz <= 1000:
            raise HttpError(400, "hz must be in (0, 1000]")
        if self._profiling:
            raise HttpError(429, "a profile run is already in flight")
        self._profiling = True
        try:
            profiler = SamplingProfiler(hz=hz)
            profiler.start()
            try:
                await asyncio.sleep(seconds)
            finally:
                profiler.stop()
        finally:
            self._profiling = False
        document = profiler.speedscope(f"repro serve ({seconds:g}s @ {hz:g}Hz)")
        body = json.dumps(document).encode("utf-8")
        extra = {
            "content-disposition": (
                'attachment; filename="repro-profile.speedscope.json"'
            )
        }
        return 200, body, "application/json", extra

    def stats(self) -> Dict:
        """Gate / cache / request counters (the ``/stats`` payload).

        ``metrics`` carries the same numbers under the unified registry
        names (``repro_serve_*``, ``repro_cache_*{cache="hot-chunk"}``);
        the surrounding legacy keys stay as aliases for one release.
        """

        return {
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(k): v for k, v in sorted(self.responses_by_status.items())
            },
            "coalesced_reads": self.coalesced_reads,
            "decoded_bytes_served": self.decoded_bytes_served,
            "gate": {
                "active": self.gate_active,
                "peak": self.gate_peak,
                "max_concurrency": self.config.max_concurrency,
            },
            "hot_chunk_cache": self.cache.counters(),
            "latency_buckets": list(self._latency_buckets),
            "metrics": self.registry.snapshot(),
        }

    async def _handle_info(self, name: str):
        async with self._lock_for(name).read():
            snapshot = await self._in_executor(self._open_snapshot, name)
            info = snapshot.info()
        info["name"] = name
        info["hot_chunk_cache"] = self.cache.counters()
        body = json.dumps(info).encode("utf-8")
        return 200, body, "application/json", None

    async def _handle_get(self, name: str, request: Request):
        mode = request.query.get("mode", "decoded")
        if mode not in ("decoded", "chunks"):
            raise HttpError(400, f"unknown mode {mode!r} (decoded|chunks)")
        region_text = request.query.get("region", "")
        try:
            parse_region_text(region_text)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc

        key = (name, mode, region_text)
        if mode == "decoded":
            body, extra = await self._coalesced(
                key, lambda: self._read_decoded(name, region_text)
            )
            self.decoded_bytes_served += len(body)
            return 200, body, "application/x-npy", extra
        body, extra = await self._coalesced(
            key, lambda: self._read_chunks(name, region_text)
        )
        return 200, body, "application/x-repro-chunks", extra

    async def _read_decoded(self, name: str, region_text: str):
        async with self._lock_for(name).read():
            snapshot = await self._in_executor(self._open_snapshot, name)
            region = parse_region_text(region_text)
            self._check_region_size(snapshot, region)

            def decode():
                return snapshot.read(region, chunk_cache=self.cache)

            values, report = await self._in_executor(decode)
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(values), allow_pickle=False)
        extra = {
            "x-region": format_region(region),
            "x-chunks-decoded": str(report.chunks_decoded),
            "x-cache-hits": str(report.cache_hits),
            "x-generation": str(snapshot.generation),
        }
        return buffer.getvalue(), extra

    def _check_region_size(self, snapshot: StoreSnapshot, region) -> None:
        try:
            bounds, _ = snapshot.normalize_region(region)
        except (ValueError, IndexError, TypeError) as exc:
            raise HttpError(400, str(exc)) from exc
        except StoreFormatError as exc:
            raise HttpError(409, str(exc)) from exc
        nbytes = int(
            np.prod([stop - start for start, stop in bounds])
        ) * snapshot.dtype.itemsize
        if nbytes > self.config.max_response_nbytes:
            raise HttpError(
                413,
                f"region decodes to {nbytes} bytes, over the "
                f"{self.config.max_response_nbytes} response limit",
            )

    async def _read_chunks(self, name: str, region_text: str):
        """Client-side-decode payload: index records + needed chunk bytes.

        The body is ``u64le header_length || JSON header || payloads``.
        The header carries a meta-lite dict plus ALL index records with
        offsets rebased into the payload section (records outside the
        region point at its end, so accidental access fails loudly as a
        truncated read); the payload section holds each needed byte range
        once, in the order first referenced.  "Needed" is the region's
        intersecting chunks plus their halo dependency closure, so the
        client rebuilds a :class:`StoreSnapshot` over the body and runs
        the exact same decode the server would have.
        """

        async with self._lock_for(name).read():
            snapshot = await self._in_executor(self._open_snapshot, name)
            region = parse_region_text(region_text)
            self._check_region_size(snapshot, region)

            def build():
                bounds, _ = snapshot.normalize_region(region)
                needed: List[int] = []
                seen = set()
                for grid_index in snapshot.intersecting_chunks(bounds):
                    stack = [grid_index]
                    while stack:
                        g = stack.pop()
                        linear = snapshot.linear_index(g)
                        if linear in seen:
                            continue
                        seen.add(linear)
                        needed.append(linear)
                        stack.extend(snapshot.halo_dependencies(g))

                index = snapshot.index
                payloads = bytearray()
                placed: Dict[Tuple[int, int], int] = {}
                with snapshot._open_data() as handle:
                    for linear in needed:
                        record = index[linear]
                        span = (record.offset, record.length)
                        if span in placed:
                            continue
                        handle.seek(record.offset)
                        payload = handle.read(record.length)
                        if len(payload) != record.length:
                            raise StoreCorruptionError(
                                f"truncated chunk payload at offset "
                                f"{record.offset} (+{record.length})"
                            )
                        placed[span] = len(payloads)
                        payloads.extend(payload)

                sentinel = len(payloads)
                records = []
                included = sorted(seen)
                for linear, record in enumerate(index):
                    span = (record.offset, record.length)
                    offset = placed.get(span, sentinel)
                    records.append(
                        [offset, record.length, record.codec, record.checksum,
                         record.flags]
                    )
                meta = snapshot.meta
                header = {
                    "format": "repro-serve-chunks",
                    "version": 1,
                    "region": format_region(region),
                    "meta": {
                        "format": meta["format"],
                        "format_version": meta["format_version"],
                        "shape": meta["shape"],
                        "dtype": meta["dtype"],
                        "chunk_shape": meta["chunk_shape"],
                        "error_bound": meta["error_bound"],
                        "codec": meta["codec"],
                        "compressor_options": meta.get("compressor_options", {}),
                        "halo": meta.get("halo", False),
                        "generation": meta.get("generation", 0),
                        "chunks": [],
                    },
                    "records": records,
                    "included": included,
                }
                header_bytes = json.dumps(header).encode("utf-8")
                body = (
                    len(header_bytes).to_bytes(8, "little")
                    + header_bytes
                    + bytes(payloads)
                )
                return body, len(included)

            body, n_included = await self._in_executor(build)
        extra = {
            "x-region": format_region(region),
            "x-chunks-included": str(n_included),
            "x-generation": str(snapshot.generation),
        }
        return body, extra

    async def _handle_chunk(self, name: str, index_text: str, request: Request):
        try:
            linear = int(index_text)
        except ValueError as exc:
            raise HttpError(400, f"bad chunk index {index_text!r}") from exc
        async with self._lock_for(name).read():
            snapshot = await self._in_executor(self._open_snapshot, name)
            if not 0 <= linear < snapshot.n_chunks:
                raise HttpError(
                    404, f"chunk {linear} out of range (n={snapshot.n_chunks})"
                )
            record = snapshot.index[linear]
            sha1 = snapshot.payload_sha1(linear)
            etag = f'"{sha1}"' if sha1 else f'"crc32-{record.checksum:08x}"'
            if request.headers.get("if-none-match") == etag:
                return 304, b"", "application/octet-stream", {"etag": etag}

            def fetch() -> bytes:
                with snapshot._open_data() as handle:
                    handle.seek(record.offset)
                    payload = handle.read(record.length)
                if len(payload) != record.length:
                    raise StoreCorruptionError(
                        f"truncated chunk payload at offset {record.offset}"
                    )
                if zlib.crc32(payload) != record.checksum:
                    raise StoreCorruptionError(
                        f"chunk {linear} checksum mismatch on disk"
                    )
                return payload

            payload = await self._in_executor(fetch)
        extra = {
            "etag": etag,
            "x-codec": record.codec,
            "x-flags": str(record.flags),
        }
        return 200, payload, "application/octet-stream", extra

    # -- mutation --------------------------------------------------------
    def _parse_array_body(self, request: Request) -> np.ndarray:
        if not request.body:
            raise HttpError(400, "empty body (expected .npy bytes)")
        try:
            return np.load(io.BytesIO(request.body), allow_pickle=False)
        except ValueError as exc:
            raise HttpError(400, f"body is not valid .npy data: {exc}") from exc

    async def _handle_put(self, name: str, request: Request):
        array = self._parse_array_body(request)
        query = request.query
        try:
            error_bound = float(query.get("error_bound", "1e-3"))
            chunk = int(query["chunk"]) if "chunk" in query else None
        except ValueError as exc:
            raise HttpError(400, f"bad query parameter: {exc}") from exc
        codec = query.get("codec", "sz")
        halo = query.get("halo", "0") in ("1", "true", "yes")

        def ingest() -> Dict:
            try:
                store = ArrayStore.create(
                    self._dataset_path(name),
                    chunk_shape=chunk,
                    error_bound=error_bound,
                    codec=codec,
                    halo=halo,
                    overwrite=True,
                )
                store.write(array)
            except (ValueError, StoreFormatError) as exc:
                raise HttpError(400, str(exc)) from exc
            return {
                "name": name,
                "shape": list(store.shape),
                "n_chunks": store.n_chunks,
                "compression_ratio": store.compression_ratio,
                "generation": store.generation,
            }

        async with self._lock_for(name).write():
            summary = await self._in_executor(ingest)
        return 200, json.dumps(summary).encode("utf-8"), "application/json", None

    async def _handle_append(self, name: str, request: Request):
        array = self._parse_array_body(request)
        path = self._dataset_path(name)

        def grow() -> Dict:
            if not os.path.isfile(os.path.join(path, "meta.json")):
                raise HttpError(404, f"no such dataset: {name}")
            store = ArrayStore.open(path)
            try:
                store.append(array)
            except ValueError as exc:
                raise HttpError(400, str(exc)) from exc
            return {
                "name": name,
                "shape": list(store.shape),
                "n_chunks": store.n_chunks,
                "orphaned_nbytes": store.orphaned_nbytes,
                "generation": store.generation,
            }

        async with self._lock_for(name).write():
            summary = await self._in_executor(grow)
        return 200, json.dumps(summary).encode("utf-8"), "application/json", None

    async def _handle_compact(self, name: str):
        path = self._dataset_path(name)

        def run() -> Dict:
            if not os.path.isfile(os.path.join(path, "meta.json")):
                raise HttpError(404, f"no such dataset: {name}")
            store = ArrayStore.open(path)
            report = store.compact()
            report["name"] = name
            report["orphaned_nbytes"] = store.orphaned_nbytes
            return report

        async with self._lock_for(name).write():
            summary = await self._in_executor(run)
        return 200, json.dumps(summary).encode("utf-8"), "application/json", None


async def _run_server(config: ServerConfig, ready, stop: asyncio.Event) -> ArrayServer:
    server = ArrayServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await stop.wait()
    finally:
        await server.close()
    return server


class ThreadedServer:
    """Run an :class:`ArrayServer` on a background thread (tests, bench).

    Context manager: ``with ThreadedServer(config) as ts: ts.url ...``.
    The server object is exposed as ``.server`` for counter assertions;
    its counters are plain ints written on the loop thread.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.server: Optional[ArrayServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def __enter__(self) -> "ThreadedServer":
        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._stop = asyncio.Event()

            def ready(server: ArrayServer) -> None:
                self.server = server
                self._started.set()

            try:
                loop.run_until_complete(_run_server(self.config, ready, self._stop))
            except BaseException as exc:  # noqa: BLE001 — reported to starter
                self._failure = exc
                self._started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30) or self.server is None:
            failure = self._failure
            raise RuntimeError(f"server failed to start: {failure!r}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
